//! Loopback integration tests: a real daemon on an ephemeral port,
//! hammered through the client library.
//!
//! The acceptance scenario: ≥ 8 concurrent submissions across ≥ 2
//! platforms and ≥ 3 algorithms, every dataset generated exactly once
//! (observed through the `GET /metrics` cache counters), and every job
//! completing with a validated result.
//!
//! Run with `--test-threads=1`: each test owns a daemon, and serial
//! execution keeps graph generation times (and therefore poll timeouts)
//! predictable on small CI machines.

use std::time::Duration;

use graphalytics_granula::json::Json;
use graphalytics_service::{Client, GraphStoreConfig, JobMode, Service, ServiceConfig};

fn start_service(workers: usize) -> (Service, Client) {
    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        store: GraphStoreConfig { scale_divisor: 8192, ..GraphStoreConfig::default() },
        seed: 0xB5ED,
        pool_threads: 2,
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(service.addr().to_string());
    (service, client)
}

#[test]
fn concurrent_jobs_share_generated_graphs() {
    let (service, client) = start_service(4);

    // 2 datasets × 2 platforms × 3 algorithms = 12 measured jobs, all
    // submitted up front from parallel client threads.
    let datasets = ["G22", "R1"];
    let platforms = ["native", "spmv"];
    let algorithms = ["bfs", "pr", "wcc"];
    let mut ids = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for dataset in datasets {
            for platform in platforms {
                for algorithm in algorithms {
                    let client = &client;
                    handles.push(scope.spawn(move || {
                        client
                            .submit(platform, dataset, algorithm, JobMode::Measured)
                            .expect("submission accepted")
                    }));
                }
            }
        }
        for handle in handles {
            ids.push(handle.join().unwrap());
        }
    });
    assert_eq!(ids.len(), 12);
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "every submission got a distinct id");

    // Every job finishes and carries a validated (completed) result.
    for id in &ids {
        let record = client.wait(*id, Duration::from_secs(120)).expect("job finishes");
        assert_eq!(
            record.get("state").and_then(Json::as_str),
            Some("completed"),
            "job {id}: {record:?}"
        );
        let result = record.get("result").expect("completed job carries a result");
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("completed"),
            "job {id} validated: {result:?}"
        );
        assert!(result.get("eps").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(result.get("measured_wall_secs").and_then(Json::as_f64).is_some());
    }

    // The cache generated each dataset exactly once: 2 misses, 10 hits.
    let metrics = client.metrics().expect("metrics");
    let store = metrics.get("store").unwrap();
    assert_eq!(store.get("generations").and_then(Json::as_u64), Some(2), "{metrics:?}");
    assert_eq!(store.get("misses").and_then(Json::as_u64), Some(2));
    assert_eq!(store.get("hits").and_then(Json::as_u64), Some(10));
    assert_eq!(store.get("evictions").and_then(Json::as_u64), Some(0));
    let jobs = metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(12));
    assert_eq!(jobs.get("failed").and_then(Json::as_u64), Some(0));

    // The shared-pool gate: every measured execution (and both CSR
    // uploads) must have run on the daemon's single worker pool — if the
    // pool were bypassed (or per-job pools spawned), `runs` would be 0.
    let pool = metrics.get("pool").expect("pool metrics present");
    assert_eq!(pool.get("threads").and_then(Json::as_u64), Some(2));
    assert!(
        pool.get("runs").and_then(Json::as_u64).unwrap() > 0,
        "measured jobs must execute on the shared pool: {metrics:?}"
    );
    assert!(
        pool.get("dispatches").and_then(Json::as_u64).unwrap() > 0,
        "a 2-wide pool must actually dispatch to its worker: {metrics:?}"
    );
    // The HTTP-reported counters and the in-process pool agree.
    let in_process = service.state().pool.stats();
    assert!(in_process.runs >= pool.get("runs").and_then(Json::as_u64).unwrap());

    // EPS/EVPS aggregates cover both platforms.
    let results = metrics.get("results").unwrap();
    assert_eq!(results.get("successful").and_then(Json::as_u64), Some(12));
    assert!(results.get("mean_eps").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(results.get("mean_evps").and_then(Json::as_f64).unwrap() > 0.0);
    let per_platform = results.get("per_platform").and_then(Json::as_arr).unwrap();
    let names: Vec<_> = per_platform
        .iter()
        .map(|p| p.get("platform").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(names, vec!["native", "spmv"]);

    // Both graphs are resident and listed.
    let graphs = client.graphs().expect("graphs");
    let rows = graphs.get("graphs").and_then(Json::as_arr).unwrap();
    let mut resident: Vec<_> =
        rows.iter().map(|g| g.get("dataset").and_then(Json::as_str).unwrap()).collect();
    resident.sort_unstable();
    assert_eq!(resident, vec!["G22", "R1"]);

    // The results database export holds all twelve records.
    let results = client.results().expect("results export");
    assert_eq!(results.as_arr().map(<[Json]>::len), Some(12));

    service.shutdown();
}

#[test]
fn analytic_jobs_skip_the_graph_store() {
    let (service, client) = start_service(2);
    let id = client.submit("pregel", "D300", "pr", JobMode::Analytic).unwrap();
    let record = client.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"));
    let result = record.get("result").unwrap();
    assert_eq!(result.get("status").and_then(Json::as_str), Some("completed"));
    // Analytic runs report the paper-published size and no wall clock.
    assert_eq!(result.get("vertices").and_then(Json::as_u64), Some(4_350_000));
    assert_eq!(result.get("measured_wall_secs"), Some(&Json::Null));
    let store = client.metrics().unwrap().get("store").cloned().unwrap();
    assert_eq!(store.get("generations").and_then(Json::as_u64), Some(0));
    service.shutdown();
}

#[test]
fn benchmark_verdicts_surface_in_job_results() {
    let (service, client) = start_service(2);
    // LCC on the PGX.D-like engine is NA in the paper; the job completes
    // with an `unsupported` verdict rather than failing the request.
    let id = client.submit("pushpull", "R2", "lcc", JobMode::Analytic).unwrap();
    let record = client.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"));
    let result = record.get("result").unwrap();
    assert_eq!(result.get("status").and_then(Json::as_str), Some("unsupported"));
    service.shutdown();
}

#[test]
fn bad_requests_are_rejected_not_fatal() {
    let (service, client) = start_service(1);
    for (platform, dataset, algorithm) in [
        ("quantum", "G22", "bfs"),
        ("native", "R99", "bfs"),
        ("native", "G22", "dfs"),
        ("native", "G22", "sssp"), // unweighted dataset
    ] {
        match client.submit(platform, dataset, algorithm, JobMode::Analytic) {
            Err(graphalytics_service::ClientError::Api { status: 400, .. }) => {}
            other => panic!("{platform}/{dataset}/{algorithm}: expected 400, got {other:?}"),
        }
    }
    // Unknown job id and malformed id.
    match client.job(999) {
        Err(graphalytics_service::ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    match client.request("GET", "/jobs/abc", None) {
        Err(graphalytics_service::ClientError::Api { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }
    // The daemon survived all of it.
    assert_eq!(
        client.health().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );
    service.shutdown();
}

#[test]
fn sharded_job_serves_granula_archive_with_telemetry() {
    let (service, client) = start_service(2);
    // A sharded (shards=2) measured pregel BFS, submitted raw so the
    // shards field reaches the API.
    let body = Json::obj(vec![
        ("platform", Json::str("pregel")),
        ("dataset", Json::str("G22")),
        ("algorithm", Json::str("bfs")),
        ("mode", Json::str("measured")),
        ("shards", Json::Num(2.0)),
    ]);
    let id = client
        .request("POST", "/jobs", Some(&body))
        .expect("submission accepted")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let record = client.wait(id, Duration::from_secs(120)).expect("job finishes");
    assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"));

    // GET /jobs/:id/archive returns the full Granula archive: Job →
    // ExecuteReal → ProcessGraph → Superstep → Shard with counters, plus
    // the monitor's resource samples.
    let archive = client.archive(id).expect("archive served");
    assert_eq!(archive.platform, "pregel");
    assert_eq!(archive.root.name, "Job");
    let process = archive
        .root
        .find("ExecuteReal")
        .expect("ExecuteReal op")
        .find("ProcessGraph")
        .expect("ProcessGraph under ExecuteReal");
    assert!(!process.children.is_empty(), "per-superstep spans archived");
    for step in &process.children {
        assert_eq!(step.name, "Superstep");
        assert!(step.infos.iter().any(|(k, _)| k == "messages"));
        assert!(step.infos.iter().any(|(k, _)| k == "edges_scanned"));
        assert_eq!(step.children.iter().filter(|c| c.name == "Shard").count(), 2);
    }
    let monitor = archive.root.find("Monitor").expect("Monitor op");
    assert!(!monitor.children.is_empty(), "≥1 resource sample attached");
    assert!(monitor.children.iter().any(|s| {
        s.name == "ResourceSample" && s.infos.iter().any(|(k, _)| k == "pool_busy_fraction")
    }));

    // The visualizer renders the served archive.
    let rendered = graphalytics_granula::visualize::render(&archive);
    assert!(rendered.contains("Superstep"), "{rendered}");
    assert!(rendered.contains("Shard"));

    // Jobs without archives (still queued / unknown) 404.
    match client.archive(id + 100) {
        Err(graphalytics_service::ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    // The monitor registry surfaces the run through both formats.
    let metrics = client.metrics().expect("metrics");
    let monitor = metrics.get("monitor").expect("monitor section");
    let histograms = monitor.get("histograms").and_then(Json::as_arr).unwrap();
    let job_seconds = histograms
        .iter()
        .find(|h| h.get("name").and_then(Json::as_str) == Some("job_seconds"))
        .expect("job_seconds histogram");
    assert_eq!(job_seconds.get("count").and_then(Json::as_u64), Some(1));
    assert!(job_seconds.get("p99_secs").and_then(Json::as_f64).unwrap() > 0.0);
    let utilization = monitor.get("utilization").unwrap();
    assert!(utilization.get("busy_secs").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(
        utilization
            .get("per_worker_busy_secs")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2),
        "one entry per pool worker"
    );
    let text = client.metrics_prometheus().expect("prometheus exposition");
    assert!(text.contains("# TYPE job_seconds histogram"), "{text}");
    assert!(text.contains("job_seconds_count 1"));
    assert!(text.contains("# TYPE pool_busy_fraction gauge"));
    assert!(text.contains("jobs_executed_total 1"));

    service.shutdown();
}

#[test]
fn mutations_reject_undeclared_vertices_and_jobs_run_on_mutated_graphs() {
    let (service, client) = start_service(2);

    // Make G22 resident and establish a pre-mutation baseline.
    let id = client.submit("pushpull", "G22", "wcc", JobMode::Measured).unwrap();
    let record = client.wait(id, Duration::from_secs(120)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"));
    let baseline_edges = record
        .get("result")
        .and_then(|r| r.get("edges"))
        .and_then(Json::as_u64)
        .expect("baseline edge count");

    // Satellite: a batch referencing an undeclared vertex is a structured
    // 400 with the offending id in the message — not a worker crash — and
    // leaves the delta log untouched.
    let body = Json::obj(vec![(
        "insert",
        Json::Arr(vec![Json::Arr(vec![Json::Num(1.0e12), Json::Num(0.0)])]),
    )]);
    match client.mutate("G22", &body) {
        Err(graphalytics_service::ClientError::Api { status: 400, message }) => {
            assert!(message.contains("undeclared vertex"), "{message}");
        }
        other => panic!("expected 400, got {other:?}"),
    }
    // Unknown dataset: 404. Malformed rows: 400.
    match client.mutate_generated("R99", 1, 0, 0) {
        Err(graphalytics_service::ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    let bad = Json::obj(vec![("insert", Json::Arr(vec![Json::Num(3.0)]))]);
    match client.mutate("G22", &bad) {
        Err(graphalytics_service::ClientError::Api { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }
    let metrics = client.metrics().unwrap();
    let mutations = metrics.get("mutations").expect("mutations section");
    assert_eq!(mutations.get("applied_batches").and_then(Json::as_u64), Some(0));

    // A server-generated batch applies: net edge growth, counters move.
    let report = client.mutate_generated("G22", 64, 16, 7).expect("batch applies");
    assert_eq!(report.get("inserted").and_then(Json::as_u64), Some(64), "{report:?}");
    assert!(report.get("deleted").and_then(Json::as_u64).unwrap() > 0);
    assert!(report.get("fill_ratio").and_then(Json::as_f64).is_some());

    // Jobs targeting the dataset now run on the materialized
    // post-mutation snapshot — on every platform, with validation against
    // the mutated graph — and report its edge count.
    for platform in ["pushpull", "native"] {
        let id = client.submit(platform, "G22", "wcc", JobMode::Measured).unwrap();
        let record = client.wait(id, Duration::from_secs(120)).unwrap();
        let result = record.get("result").expect("result");
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("completed"),
            "{platform}: {result:?}"
        );
        let edges = result.get("edges").and_then(Json::as_u64).unwrap();
        let deleted = report.get("deleted").and_then(Json::as_u64).unwrap();
        assert_eq!(edges, baseline_edges + 64 - deleted, "{platform}: mutated edge count");
    }

    // The delta-log counters surface through GET /metrics (JSON and
    // Prometheus) and the graph listing flags the mutated entry.
    let metrics = client.metrics().unwrap();
    let mutations = metrics.get("mutations").expect("mutations section");
    assert_eq!(mutations.get("mutated_graphs").and_then(Json::as_u64), Some(1));
    assert_eq!(mutations.get("applied_batches").and_then(Json::as_u64), Some(1));
    assert_eq!(mutations.get("inserted_edges").and_then(Json::as_u64), Some(64));
    assert!(mutations.get("snapshot_builds").and_then(Json::as_u64).unwrap() >= 1);
    let text = client.metrics_prometheus().unwrap();
    assert!(text.contains("mutation_applied_batches 1"), "{text}");
    let graphs = client.graphs().unwrap();
    let rows = graphs.get("graphs").and_then(Json::as_arr).unwrap();
    let g22 = rows
        .iter()
        .find(|g| g.get("dataset").and_then(Json::as_str) == Some("G22"))
        .expect("G22 resident");
    assert_eq!(g22.get("mutated"), Some(&Json::Bool(true)));

    // The daemon survived everything.
    assert_eq!(client.health().unwrap().get("status").and_then(Json::as_str), Some("ok"));
    service.shutdown();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    // Single worker: two heavy head-of-line jobs occupy it while we
    // cancel a job that is still safely queued behind them.
    let (service, client) = start_service(1);
    let first = client.submit("native", "G25", "lcc", JobMode::Measured).unwrap();
    let second = client.submit("native", "G24", "lcc", JobMode::Measured).unwrap();
    let victim = client.submit("native", "G23", "pr", JobMode::Measured).unwrap();
    let cancelled = client.cancel(victim).expect("queued job cancels");
    assert_eq!(cancelled.get("state").and_then(Json::as_str), Some("cancelled"));
    // Cancelling again conflicts.
    match client.cancel(victim) {
        Err(graphalytics_service::ClientError::Api { status: 409, .. }) => {}
        other => panic!("expected 409, got {other:?}"),
    }
    // The blockers still complete, the cancelled one never runs.
    for id in [first, second] {
        let record = client.wait(id, Duration::from_secs(120)).unwrap();
        assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"));
    }
    let jobs = client.metrics().unwrap().get("jobs").cloned().unwrap();
    assert_eq!(jobs.get("cancelled").and_then(Json::as_u64), Some(1));
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(2));
    service.shutdown();
}

/// A daemon whose fault plan injects into every executed job.
fn start_faulty_service(
    workers: usize,
    plan: graphalytics_core::fault::FaultPlan,
) -> (Service, Client) {
    let service = Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        store: GraphStoreConfig { scale_divisor: 8192, ..GraphStoreConfig::default() },
        seed: 0xB5ED,
        pool_threads: 2,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(service.addr().to_string());
    (service, client)
}

/// One monitor counter out of the `GET /metrics` JSON.
fn monitor_counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("monitor")
        .and_then(|m| m.get("counters"))
        .and_then(Json::as_arr)
        .and_then(|rows| {
            rows.iter()
                .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|c| c.get("value").and_then(Json::as_u64))
        })
        .unwrap_or(0)
}

#[test]
fn running_jobs_cancel_at_superstep_boundaries() {
    use graphalytics_core::fault::{FaultKind, FaultPlan, FaultSite, Injection};
    use std::time::Instant;
    // Every job stalls 5 s at its first superstep — a wide window to
    // catch the job mid-run and cancel it.
    let plan = FaultPlan::scripted(vec![Injection::new(
        FaultSite::Superstep,
        0,
        FaultKind::Stall { millis: 5_000 },
    )]);
    let (service, client) = start_faulty_service(1, plan);
    let id = client.submit("native", "G22", "bfs", JobMode::Measured).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let record = client.job(id).unwrap();
        if record.get("state").and_then(Json::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let cancelled_at = Instant::now();
    // Running-cancel is acknowledged (202) with the record still running
    // and the cancellation flagged; the driver aborts at the next
    // superstep boundary.
    let ack = client.cancel(id).expect("running job accepts cancellation");
    assert_eq!(ack.get("state").and_then(Json::as_str), Some("running"));
    assert_eq!(ack.get("cancel_requested"), Some(&Json::Bool(true)));
    let record = client.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("cancelled"), "{record:?}");
    let result = record.get("result").expect("cancelled job keeps its structured result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("cancelled"));
    // Prompt abort: nowhere near the 5 s the stall would have burned.
    assert!(cancelled_at.elapsed() < Duration::from_secs(4), "abort was not prompt");
    let metrics = client.metrics().unwrap();
    let jobs = metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("cancelled").and_then(Json::as_u64), Some(1));
    assert_eq!(monitor_counter(&metrics, "jobs_cancelled_running_total"), 1);
    // The daemon survived and keeps serving.
    assert_eq!(client.health().unwrap().get("status").and_then(Json::as_str), Some("ok"));
    service.shutdown();
}

#[test]
fn deadline_expiry_times_out_the_job() {
    use graphalytics_core::fault::{FaultKind, FaultPlan, FaultSite, Injection};
    // The stall guarantees the run outlives its 400 ms deadline.
    let plan = FaultPlan::scripted(vec![Injection::new(
        FaultSite::Superstep,
        0,
        FaultKind::Stall { millis: 5_000 },
    )]);
    let (service, client) = start_faulty_service(1, plan);
    let id = client
        .submit_with_timeout("native", "G22", "bfs", JobMode::Measured, 1, Some(0.4))
        .unwrap();
    let record = client.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("timed-out"), "{record:?}");
    assert_eq!(record.get("timeout_secs").and_then(Json::as_f64), Some(0.4));
    let result = record.get("result").expect("timed-out job keeps its structured result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("timed-out"));
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("jobs").and_then(|j| j.get("timed_out")), Some(&Json::Num(1.0)));
    assert_eq!(monitor_counter(&metrics, "jobs_timed_out_total"), 1);
    assert_eq!(client.health().unwrap().get("status").and_then(Json::as_str), Some("ok"));
    service.shutdown();
}

#[test]
fn transient_faults_retry_to_completion() {
    use graphalytics_core::fault::{FaultKind, FaultPlan, FaultSite, Injection};
    // `once` = first attempt only: the retry runs fault-free and the job
    // completes as if nothing happened.
    let plan = FaultPlan::scripted(vec![Injection::once(
        FaultSite::Superstep,
        0,
        FaultKind::Transient,
    )]);
    let (service, client) = start_faulty_service(1, plan);
    let id = client.submit("native", "G22", "bfs", JobMode::Measured).unwrap();
    let record = client.wait(id, Duration::from_secs(120)).unwrap();
    assert_eq!(record.get("state").and_then(Json::as_str), Some("completed"), "{record:?}");
    let result = record.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("completed"));
    let metrics = client.metrics().unwrap();
    assert_eq!(monitor_counter(&metrics, "jobs_retried_total"), 1);
    assert_eq!(metrics.get("jobs").and_then(|j| j.get("failed")), Some(&Json::Num(0.0)));
    service.shutdown();
}
