//! # graphalytics-service
//!
//! Benchmark-as-a-service: a long-running daemon that wraps the
//! Graphalytics harness stack behind an HTTP/JSON API. Where the paper's
//! harness (Fig. 1) runs one batch and exits, the service keeps graphs
//! and results resident and executes many jobs concurrently — the
//! architecture the GRAL graph-analytics engine (single-process RAM-only
//! server + `grupload` client) converges on.
//!
//! Four pieces:
//!
//! * [`store`] — the cached graph store: proxy datasets are generated at
//!   most once, kept resident keyed by dataset, and evicted LRU-first by
//!   estimated memory footprint;
//! * [`mutations`] — per-dataset streaming delta logs over the resident
//!   graphs (`POST /graphs/:id/mutations`): batched edge
//!   insertions/deletions with auto-compaction; measured jobs targeting a
//!   mutated dataset run on its materialized post-mutation snapshot;
//! * [`jobs`] — the asynchronous, *bounded* job queue: submit a
//!   `(platform, dataset, algorithm)` job (optionally with a deadline),
//!   poll its state, cancel while queued **or running** (a running job's
//!   cancellation token aborts the driver at the next superstep
//!   boundary); a worker pool drains the queue through the harness
//!   `Driver` into a shared thread-safe `ResultsDatabase`, retrying jobs
//!   that fail on injected transient faults with jittered backoff;
//! * [`http`] + [`api`] + [`server`] — a std-only HTTP/1.1 daemon over
//!   `std::net::TcpListener` serving `POST /jobs`, `GET /jobs/:id`,
//!   `GET /results`, `GET /graphs` and `GET /metrics` (EPS/EVPS
//!   aggregates), serialized via `graphalytics_granula::json`;
//! * [`client`] — the blocking client library behind the `graphctl` CLI
//!   (in `graphalytics-bench`) and the loopback integration tests.
//!
//! ```no_run
//! use graphalytics_service::{Client, JobMode, Service, ServiceConfig};
//! use std::time::Duration;
//!
//! let service = Service::start(ServiceConfig::default()).unwrap();
//! let client = Client::new(service.addr().to_string());
//! let id = client.submit("native", "G22", "bfs", JobMode::Measured).unwrap();
//! let record = client.wait(id, Duration::from_secs(60)).unwrap();
//! assert_eq!(record.get("state").and_then(|s| s.as_str()), Some("completed"));
//! service.shutdown();
//! ```

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod mutations;
pub mod server;
pub mod store;

pub use client::{Client, ClientError, ClientResult, RetryPolicy};
pub use jobs::{JobMode, JobQueue, JobRecord, JobRequest, JobState, SubmitError};
pub use mutations::{BatchReport, MutationMetrics, MutationStore};
pub use server::{Service, ServiceConfig, ServiceState};
pub use store::{GraphStore, GraphStoreConfig, StoreMetrics};
