//! Minimal std-only HTTP/1.1 plumbing.
//!
//! The service speaks just enough HTTP for a JSON API over loopback or a
//! LAN: one request per connection (`Connection: close`), `Content-Length`
//! bodies, no chunked encoding, no TLS. Both the server and the client
//! library use this module, so the wire format is tested in one place.

use std::io::{self, BufRead, Read, Write};

use graphalytics_granula::json::Json;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body — submissions are tiny, so this is a
/// hostile-input guard.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Upper bound on a *response* body read by the client. Far larger than
/// the request cap: `GET /results` exports grow with every recorded job
/// and the client must be able to read what its own server serves.
pub const MAX_RESPONSE_BYTES: usize = 1024 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from `reader`. Returns `Ok(None)` on a clean EOF
    /// before the first byte (client closed without sending a request).
    pub fn read(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
        let line = match read_crlf_line(reader, true)? {
            None => return Ok(None),
            Some(line) => line,
        };
        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
            _ => return Err(bad_data(format!("malformed request line {line:?}"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_data(format!("unsupported protocol {version:?}")));
        }
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers, MAX_BODY_BYTES)?;
        Ok(Some(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        }))
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, if it is valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The request path split into non-empty segments (`/jobs/7` →
    /// `["jobs", "7"]`); any `?query` suffix is dropped.
    pub fn segments(&self) -> Vec<&str> {
        let path = self.path.split('?').next().unwrap_or("");
        path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// The value of one `?key=value` query parameter, if present. No
    /// percent-decoding — the API's parameter values are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// An HTTP response carrying a JSON (or plain-text) body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub body: String,
    /// `Content-Type` header value; [`Response::json`] and
    /// [`Response::error`] set `application/json`, [`Response::text`]
    /// sets `text/plain` (the Prometheus exposition format).
    pub content_type: &'static str,
}

impl Response {
    /// A response with a JSON value as its body.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            body: body.to_string_pretty(),
            content_type: "application/json",
        }
    }

    /// A response with an already-serialized JSON body.
    pub fn raw_json(status: u16, body: String) -> Response {
        Response { status, body, content_type: "application/json" }
    }

    /// A plain-text response (`GET /metrics?format=prometheus`).
    pub fn text(status: u16, body: String) -> Response {
        Response { status, body, content_type: "text/plain; version=0.0.4" }
    }

    /// The standard error shape: `{"error": message}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(status, &Json::obj(vec![("error", Json::str(message.into()))]))
    }

    /// Writes the response, always with `Connection: close`.
    pub fn write(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
        )?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// Reads one response (status + body) — the client side of [`Response`].
pub fn read_response(reader: &mut impl BufRead) -> io::Result<(u16, String)> {
    let line = read_crlf_line(reader, false)?
        .ok_or_else(|| bad_data("connection closed before status line".to_string()))?;
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| bad_data(format!("malformed status line {line:?}")))?,
        _ => return Err(bad_data(format!("malformed status line {line:?}"))),
    };
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers, MAX_RESPONSE_BYTES)?;
    let body = String::from_utf8(body)
        .map_err(|_| bad_data("response body is not UTF-8".to_string()))?;
    Ok((status, body))
}

/// The reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Reads a CRLF- (or bare-LF-) terminated line. `None` on EOF before the
/// first byte when `eof_ok` is set.
fn read_crlf_line(reader: &mut impl BufRead, eof_ok: bool) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader.take(MAX_HEAD_BYTES as u64).read_line(&mut line)?;
    if n == 0 {
        if eof_ok {
            return Ok(None);
        }
        return Err(bad_data("unexpected end of stream".to_string()));
    }
    if !line.ends_with('\n') && line.len() >= MAX_HEAD_BYTES {
        return Err(bad_data("header line too long".to_string()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(reader: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_crlf_line(reader, false)?.unwrap_or_default();
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEAD_BYTES {
            return Err(bad_data("request head too large".to_string()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn read_body(
    reader: &mut impl BufRead,
    headers: &[(String, String)],
    limit: usize,
) -> io::Result<Vec<u8>> {
    let length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>().map_err(|_| bad_data(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > limit {
        return Err(bad_data(format!("body of {length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let wire = "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 14\r\n\r\n{\"dataset\":\"a\"}";
        // 15-byte body declared as 14: only 14 bytes are consumed.
        let mut cursor = Cursor::new(wire.as_bytes());
        let req = Request::read(&mut cursor).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body.len(), 14);
        assert_eq!(req.body_utf8(), Some("{\"dataset\":\"a\""));
    }

    #[test]
    fn parses_get_without_body() {
        let wire = "GET /jobs/7?verbose=1 HTTP/1.1\r\n\r\n";
        let req = Request::read(&mut Cursor::new(wire.as_bytes())).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments(), vec!["jobs", "7"]);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(Request::read(&mut Cursor::new(b"")).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_error() {
        for wire in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(Request::read(&mut Cursor::new(wire.as_bytes())).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let wire = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(Request::read(&mut Cursor::new(wire.as_bytes())).is_err());
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(200, &Json::obj(vec![("ok", Json::Bool(true))]));
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        let (status, body) = read_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(Json::parse(&body).unwrap().get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::error(404, "no such job");
        assert_eq!(resp.status, 404);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("error").and_then(Json::as_str), Some("no such job"));
    }

    #[test]
    fn query_params_parse() {
        let wire = "GET /metrics?format=prometheus&x=1 HTTP/1.1\r\n\r\n";
        let req = Request::read(&mut Cursor::new(wire.as_bytes())).unwrap().unwrap();
        assert_eq!(req.segments(), vec!["metrics"]);
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        let bare = Request::read(&mut Cursor::new(b"GET /metrics HTTP/1.1\r\n\r\n".as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn text_response_content_type() {
        let resp = Response::text(200, "metric 1\n".to_string());
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Content-Type: text/plain"), "{text}");
        assert!(text.ends_with("metric 1\n"));
    }

    #[test]
    fn status_texts() {
        assert_eq!(status_text(202), "Accepted");
        assert_eq!(status_text(409), "Conflict");
        assert_eq!(status_text(599), "Unknown");
    }
}
