//! The cached graph store.
//!
//! Materializing a proxy graph is the most expensive step of a measured
//! job, and the batch harness repeats it for every run. The service
//! instead keeps generated graphs resident, keyed by dataset, so repeated
//! jobs share one instance:
//!
//! * **exactly-once generation** — concurrent requests for the same
//!   dataset block on a per-entry slot while the first request generates;
//! * **LRU eviction** — entries are evicted least-recently-used first when
//!   the estimated resident footprint exceeds the configured capacity;
//! * **observable** — hit/miss/generation/eviction counters feed the
//!   `GET /metrics` and `GET /graphs` endpoints.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use graphalytics_core::datasets::DatasetSpec;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::Csr;
use graphalytics_harness::proxy;

/// Graph store sizing and generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStoreConfig {
    /// Evict least-recently-used graphs once the estimated resident
    /// footprint exceeds this many bytes.
    pub capacity_bytes: u64,
    /// Divide published dataset sizes by this factor when materializing
    /// (see `graphalytics_harness::proxy`).
    pub scale_divisor: u64,
    /// Generation seed (graphs are deterministic per seed).
    pub seed: u64,
}

impl Default for GraphStoreConfig {
    fn default() -> Self {
        GraphStoreConfig { capacity_bytes: 256 << 20, scale_divisor: 8192, seed: 0xB5ED }
    }
}

/// Counter snapshot for the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Requests that found an existing entry (including ones that waited
    /// for an in-flight generation).
    pub hits: u64,
    /// Requests that had to create a new entry.
    pub misses: u64,
    /// Graphs actually generated (equals `misses`: one per new entry).
    pub generations: u64,
    /// Entries dropped by LRU capacity eviction.
    pub evictions: u64,
    /// Estimated bytes of all resident graphs.
    pub resident_bytes: u64,
    /// Number of entries (resident or mid-generation).
    pub entries: u64,
}

/// One row of the `GET /graphs` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    pub dataset: String,
    pub vertices: u64,
    pub edges: u64,
    pub bytes: u64,
}

/// Per-dataset slot. The outer store lock is never held while a graph is
/// generated; the slot mutex serializes generation per dataset instead,
/// so requests for *different* datasets generate in parallel while
/// requests for the *same* dataset wait for the first one.
#[derive(Default)]
struct Slot {
    graph: Mutex<Option<Arc<Csr>>>,
}

struct Entry {
    slot: Arc<Slot>,
    /// Estimated resident bytes; 0 while generation is in flight.
    bytes: u64,
    /// Logical clock of the last request (drives LRU).
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<&'static str, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    generations: u64,
    evictions: u64,
}

/// The shared, thread-safe graph store.
pub struct GraphStore {
    config: GraphStoreConfig,
    /// The daemon's shared execution runtime; edge-list → CSR uploads
    /// run on it instead of single-threaded.
    pool: Arc<WorkerPool>,
    inner: Mutex<Inner>,
}

impl GraphStore {
    pub fn new(config: GraphStoreConfig, pool: Arc<WorkerPool>) -> Self {
        GraphStore { config, pool, inner: Mutex::new(Inner::default()) }
    }

    /// The store's configuration.
    pub fn config(&self) -> &GraphStoreConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the cached graph for `spec`, generating it first if needed.
    pub fn get(&self, spec: &'static DatasetSpec) -> Arc<Csr> {
        let slot = {
            let mut inner = self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(spec.id) {
                entry.last_used = clock;
                let slot = entry.slot.clone();
                inner.hits += 1;
                slot
            } else {
                let slot = Arc::new(Slot::default());
                inner
                    .entries
                    .insert(spec.id, Entry { slot: slot.clone(), bytes: 0, last_used: clock });
                inner.misses += 1;
                slot
            }
        };

        let mut graph = slot.graph.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(csr) = graph.as_ref() {
            return csr.clone();
        }
        // First request for this entry: generate while holding the slot
        // lock so concurrent same-dataset requests wait instead of
        // duplicating the work.
        let csr = Arc::new(
            proxy::materialize_with(spec, self.config.scale_divisor, self.config.seed, &self.pool)
                .to_csr_with(&self.pool)
                .expect("generated proxy graph is valid"),
        );
        let bytes = csr.resident_bytes();
        *graph = Some(csr.clone());
        drop(graph);

        let mut inner = self.lock();
        inner.generations += 1;
        if let Some(entry) = inner.entries.get_mut(spec.id) {
            entry.bytes = bytes;
        }
        self.evict_over_capacity(&mut inner, spec.id);
        csr
    }

    /// Evicts LRU entries until the resident footprint fits the capacity.
    /// The entry that triggered the check and entries still generating
    /// (bytes 0) are exempt — evicting a graph someone is producing or
    /// about to use would only force an immediate regeneration.
    fn evict_over_capacity(&self, inner: &mut Inner, keep: &str) {
        Self::evict_to(inner, self.config.capacity_bytes, keep);
    }

    fn evict_to(inner: &mut Inner, capacity_bytes: u64, keep: &str) {
        loop {
            let total: u64 = inner.entries.values().map(|e| e.bytes).sum();
            if total <= capacity_bytes {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(id, e)| **id != keep && e.bytes > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    inner.entries.remove(id);
                    inner.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> StoreMetrics {
        let inner = self.lock();
        StoreMetrics {
            hits: inner.hits,
            misses: inner.misses,
            generations: inner.generations,
            evictions: inner.evictions,
            resident_bytes: inner.entries.values().map(|e| e.bytes).sum(),
            entries: inner.entries.len() as u64,
        }
    }

    /// The resident graphs, most recently used first. Entries whose
    /// generation is still in flight are omitted rather than waited for —
    /// a listing must never block behind a multi-second materialization
    /// (and must never hold the store lock while touching slot locks).
    pub fn list(&self) -> Vec<GraphInfo> {
        let snapshot: Vec<(&'static str, Arc<Slot>, u64, u64)> = {
            let inner = self.lock();
            inner
                .entries
                .iter()
                .map(|(id, e)| (*id, e.slot.clone(), e.bytes, e.last_used))
                .collect()
        };
        let mut rows: Vec<(u64, GraphInfo)> = snapshot
            .into_iter()
            .filter_map(|(id, slot, bytes, last_used)| {
                // A held slot lock means generation in progress: skip.
                let graph = slot.graph.try_lock().ok()?;
                graph.as_ref().map(|csr| {
                    (
                        last_used,
                        GraphInfo {
                            dataset: id.to_string(),
                            vertices: csr.num_vertices() as u64,
                            edges: csr.num_edges() as u64,
                            bytes,
                        },
                    )
                })
            })
            .collect();
        rows.sort_by_key(|(last_used, _)| std::cmp::Reverse(*last_used));
        rows.into_iter().map(|(_, info)| info).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;

    fn small_store(capacity_bytes: u64) -> GraphStore {
        GraphStore::new(
            GraphStoreConfig { capacity_bytes, scale_divisor: 16384, seed: 7 },
            Arc::new(WorkerPool::new(2)),
        )
    }

    #[test]
    fn generates_once_and_serves_hits() {
        let store = small_store(u64::MAX);
        let spec = dataset("G22").unwrap();
        let a = store.get(spec);
        let b = store.get(spec);
        assert!(Arc::ptr_eq(&a, &b), "same resident instance");
        let m = store.metrics();
        assert_eq!((m.misses, m.generations, m.hits), (1, 1, 1));
        assert_eq!(m.entries, 1);
        assert!(m.resident_bytes > 0);
    }

    #[test]
    fn concurrent_requests_generate_exactly_once() {
        let store = small_store(u64::MAX);
        let spec = dataset("G22").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    let csr = store.get(spec);
                    assert!(csr.num_vertices() > 0);
                });
            }
        });
        let m = store.metrics();
        assert_eq!(m.generations, 1, "{m:?}");
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits, 7);
    }

    #[test]
    fn lru_evicts_oldest_when_over_capacity() {
        // Capacity of one byte: every insertion evicts everything else.
        let store = small_store(1);
        let g22 = dataset("G22").unwrap();
        let r1 = dataset("R1").unwrap();
        store.get(g22);
        assert_eq!(store.metrics().evictions, 0, "sole entry is exempt");
        store.get(r1);
        let m = store.metrics();
        assert_eq!(m.evictions, 1, "{m:?}");
        assert_eq!(m.entries, 1);
        assert_eq!(store.list()[0].dataset, "R1");
        // The evicted dataset regenerates on the next request.
        store.get(g22);
        let m = store.metrics();
        assert_eq!(m.generations, 3);
        assert_eq!(m.hits, 0);
    }

    #[test]
    fn lru_order_follows_use_not_insertion() {
        let store = small_store(u64::MAX);
        let g22 = dataset("G22").unwrap();
        let r1 = dataset("R1").unwrap();
        let r2 = dataset("R2").unwrap();
        store.get(g22);
        store.get(r1);
        store.get(r2);
        store.get(g22); // refresh G22: R1 is now least recently used
        let listing = store.list();
        assert_eq!(listing[0].dataset, "G22");
        // Force eviction down to one entry while keeping G22: victims must
        // go in LRU order (R1 before R2), and the kept entry survives even
        // though the store is still over the target.
        {
            let mut inner = store.lock();
            GraphStore::evict_to(&mut inner, 1, "G22");
            assert!(inner.entries.contains_key("G22"));
            assert_eq!(inner.entries.len(), 1);
            assert_eq!(inner.evictions, 2);
        }
        assert_eq!(store.metrics().entries, 1);
    }

    #[test]
    fn listing_reports_graph_shape() {
        let store = small_store(u64::MAX);
        let spec = dataset("R1").unwrap();
        let csr = store.get(spec);
        let listing = store.list();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].vertices, csr.num_vertices() as u64);
        assert_eq!(listing[0].edges, csr.num_edges() as u64);
        assert_eq!(listing[0].bytes, csr.resident_bytes());
    }
}
