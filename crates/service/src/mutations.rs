//! The resident mutation store.
//!
//! Each dataset in the graph store can accumulate streaming mutations:
//! the first `POST /graphs/:id/mutations` wraps the store's resident CSR
//! in a core [`MutableGraph`] delta log, and later batches apply against
//! it with the default auto-compaction policy (fold the log into a fresh
//! CSR once the fill ratio crosses 0.25). Measured jobs that target a
//! mutated dataset run on the materialized post-mutation snapshot (cached
//! until the next batch invalidates it), and `GET /metrics` exposes the
//! aggregate delta-log counters.
//!
//! Validation is all-or-nothing: a batch referencing an undeclared
//! vertex, creating a self loop, or carrying a non-finite weight is
//! rejected whole (the API maps the failure to a structured 400) and the
//! log is untouched.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{random_batch, Csr, DeltaStats, MutableGraph, MutationBatch};

/// One batch's outcome, echoed by the API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Edges added / removed / weight-updated by this batch.
    pub inserted: u64,
    pub deleted: u64,
    pub updated: u64,
    /// Whether this batch crossed the fill ratio and compacted the log.
    pub compacted: bool,
    /// Delta-log arcs and fill ratio left after the batch.
    pub delta_arcs: u64,
    pub fill_ratio: f64,
    /// Wall seconds spent applying (compaction included).
    pub apply_secs: f64,
}

/// Aggregate counters over every mutated dataset, for `GET /metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MutationMetrics {
    /// Datasets with a live delta log.
    pub mutated_graphs: u64,
    pub applied_batches: u64,
    pub inserted_edges: u64,
    pub deleted_edges: u64,
    pub updated_edges: u64,
    /// Delta-log compactions and their total cost.
    pub compactions: u64,
    pub compact_secs: f64,
    /// Outstanding (un-compacted) delta arcs across all logs.
    pub delta_arcs: u64,
    /// Post-mutation snapshots materialized for jobs.
    pub snapshot_builds: u64,
}

/// Per-dataset delta-log status, for the `GET /graphs` listing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphDeltaStatus {
    pub stats: DeltaStats,
    pub delta_arcs: u64,
    pub fill_ratio: f64,
}

struct Entry {
    graph: MutableGraph,
    /// Materialized post-mutation CSR; `None` until a job needs it,
    /// invalidated by every applied batch.
    snapshot: Option<Arc<Csr>>,
}

#[derive(Default)]
struct State {
    entries: BTreeMap<String, Entry>,
    snapshot_builds: u64,
}

/// The shared, thread-safe mutation store.
pub struct MutationStore {
    /// The daemon's shared execution runtime (compactions and snapshot
    /// materializations run pool-parallel).
    pool: Arc<WorkerPool>,
    inner: Mutex<State>,
}

impl MutationStore {
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        MutationStore { pool, inner: Mutex::new(State::default()) }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies one batch to `dataset`'s delta log, wrapping `base` on
    /// first use. `Err` is a validation failure (undeclared vertex, self
    /// loop, bad weight) and nothing was applied.
    pub fn apply(
        &self,
        dataset: &str,
        base: &Arc<Csr>,
        batch: &MutationBatch,
    ) -> Result<BatchReport, String> {
        let mut inner = self.lock();
        let entry = inner
            .entries
            .entry(dataset.to_string())
            .or_insert_with(|| Entry { graph: MutableGraph::new(base.clone()), snapshot: None });
        Self::apply_to(entry, batch, &self.pool)
    }

    /// Generates a deterministic batch (`insertions` + `deletions` drawn
    /// from the log's current base with `seed`) and applies it. Returns
    /// the batch size alongside the report.
    pub fn apply_generated(
        &self,
        dataset: &str,
        base: &Arc<Csr>,
        insertions: usize,
        deletions: usize,
        seed: u64,
    ) -> Result<(usize, BatchReport), String> {
        let mut inner = self.lock();
        let entry = inner
            .entries
            .entry(dataset.to_string())
            .or_insert_with(|| Entry { graph: MutableGraph::new(base.clone()), snapshot: None });
        let batch = random_batch(entry.graph.base(), insertions, deletions, seed);
        let report = Self::apply_to(entry, &batch, &self.pool)?;
        Ok((batch.len(), report))
    }

    fn apply_to(
        entry: &mut Entry,
        batch: &MutationBatch,
        pool: &WorkerPool,
    ) -> Result<BatchReport, String> {
        let started = Instant::now();
        let outcome = entry.graph.apply(batch, pool).map_err(|e| e.to_string())?;
        entry.snapshot = None;
        Ok(BatchReport {
            inserted: outcome.inserted,
            deleted: outcome.deleted,
            updated: outcome.updated,
            compacted: outcome.compacted,
            delta_arcs: entry.graph.delta_arcs(),
            fill_ratio: entry.graph.fill_ratio(),
            apply_secs: started.elapsed().as_secs_f64(),
        })
    }

    /// The materialized post-mutation graph of `dataset`, if it has ever
    /// been mutated; `None` routes the caller to the unmutated store
    /// graph. Cached until the next batch.
    pub fn snapshot(&self, dataset: &str) -> Option<Arc<Csr>> {
        let mut inner = self.lock();
        let state = &mut *inner;
        let entry = state.entries.get_mut(dataset)?;
        if entry.snapshot.is_none() {
            let csr = entry
                .graph
                .materialize(&self.pool)
                .expect("merged delta-log view is a valid graph");
            entry.snapshot = Some(Arc::new(csr));
            state.snapshot_builds += 1;
        }
        entry.snapshot.clone()
    }

    /// Per-dataset delta-log status, if `dataset` has ever been mutated.
    pub fn status(&self, dataset: &str) -> Option<GraphDeltaStatus> {
        let inner = self.lock();
        inner.entries.get(dataset).map(|entry| GraphDeltaStatus {
            stats: *entry.graph.stats(),
            delta_arcs: entry.graph.delta_arcs(),
            fill_ratio: entry.graph.fill_ratio(),
        })
    }

    /// Aggregate counter snapshot across all mutated datasets.
    pub fn metrics(&self) -> MutationMetrics {
        let inner = self.lock();
        let mut m = MutationMetrics {
            mutated_graphs: inner.entries.len() as u64,
            snapshot_builds: inner.snapshot_builds,
            ..MutationMetrics::default()
        };
        for entry in inner.entries.values() {
            let stats = entry.graph.stats();
            m.applied_batches += stats.applied_batches;
            m.inserted_edges += stats.inserted_edges;
            m.deleted_edges += stats.deleted_edges;
            m.updated_edges += stats.updated_edges;
            m.compactions += stats.compactions;
            m.compact_secs += stats.compact_secs;
            m.delta_arcs += entry.graph.delta_arcs();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::GraphBuilder;

    fn base() -> Arc<Csr> {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            b.add_edge(u, v);
        }
        Arc::new(b.build().unwrap().to_csr())
    }

    #[test]
    fn apply_snapshot_and_metrics_roundtrip() {
        let store = MutationStore::new(Arc::new(WorkerPool::inline()));
        let csr = base();
        assert!(store.snapshot("G22").is_none(), "untouched dataset has no snapshot");
        let mut batch = MutationBatch::new();
        batch.insert(0, 5).delete(2, 3);
        let report = store.apply("G22", &csr, &batch).unwrap();
        assert_eq!((report.inserted, report.deleted, report.updated), (1, 1, 0));
        // On a 5-edge base this one batch crosses the 0.25 fill ratio:
        // the default policy compacts immediately and empties the log.
        assert!(report.compacted);
        assert_eq!(report.delta_arcs, 0);

        let snap = store.snapshot("G22").unwrap();
        assert_eq!(snap.num_edges(), csr.num_edges(), "one insert, one delete");
        let again = store.snapshot("G22").unwrap();
        assert!(Arc::ptr_eq(&snap, &again), "snapshot cached until the next batch");

        let m = store.metrics();
        assert_eq!(m.mutated_graphs, 1);
        assert_eq!(m.applied_batches, 1);
        assert_eq!((m.inserted_edges, m.deleted_edges), (1, 1));
        assert_eq!(m.snapshot_builds, 1);
        assert_eq!(m.compactions, 1);
        assert_eq!(store.status("G22").unwrap().stats.applied_batches, 1);
        assert!(store.status("R1").is_none());

        // The next batch invalidates the cached snapshot.
        let mut second = MutationBatch::new();
        second.delete(0, 1);
        store.apply("G22", &csr, &second).unwrap();
        let rebuilt = store.snapshot("G22").unwrap();
        assert!(!Arc::ptr_eq(&snap, &rebuilt));
        assert_eq!(rebuilt.num_edges(), csr.num_edges() - 1);
        assert_eq!(store.metrics().snapshot_builds, 2);
    }

    #[test]
    fn invalid_batches_reject_without_applying() {
        let store = MutationStore::new(Arc::new(WorkerPool::inline()));
        let csr = base();
        let mut batch = MutationBatch::new();
        batch.insert(0, 99);
        let err = store.apply("G22", &csr, &batch).unwrap_err();
        assert!(err.contains("undeclared vertex"), "{err}");
        assert_eq!(store.status("G22").unwrap().stats.applied_batches, 0);
        assert_eq!(store.snapshot("G22").unwrap().num_edges(), csr.num_edges());
    }

    #[test]
    fn generated_batches_are_deterministic() {
        let a = MutationStore::new(Arc::new(WorkerPool::inline()));
        let b = MutationStore::new(Arc::new(WorkerPool::inline()));
        let csr = base();
        let (len_a, report_a) = a.apply_generated("G22", &csr, 3, 2, 42).unwrap();
        let (len_b, report_b) = b.apply_generated("G22", &csr, 3, 2, 42).unwrap();
        assert_eq!(len_a, len_b);
        assert_eq!(report_a.inserted, report_b.inserted);
        assert_eq!(report_a.deleted, report_b.deleted);
        let (snap_a, snap_b) = (a.snapshot("G22").unwrap(), b.snapshot("G22").unwrap());
        assert_eq!(snap_a.num_edges(), snap_b.num_edges());
    }
}
