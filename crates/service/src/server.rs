//! The daemon: TCP accept loop, worker pool, shared state.
//!
//! [`Service::start`] binds a `TcpListener` (port 0 gives an ephemeral
//! port), spawns the accept loop and a configurable pool of job workers,
//! and returns a [`ServiceHandle`] for address discovery and graceful
//! shutdown. The architecture mirrors GRAL's single-process, RAM-only
//! server: all state — cached graphs, the job table, the results
//! database — lives in one [`ServiceState`] shared across threads.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::fault::{Backoff, CancelToken, FaultPlan, FaultScript};
use graphalytics_core::pool::WorkerPool;
use graphalytics_engines::platform_by_name;
use graphalytics_granula::{MetricsRegistry, PerformanceArchive};
use graphalytics_harness::{Driver, JobResult, JobSpec, JobStatus, ResultsDatabase, RunMode};

use crate::api;
use crate::http::{Request, Response};
use crate::jobs::{JobMode, JobQueue, JobRequest, JobState};
use crate::mutations::MutationStore;
use crate::store::{GraphStore, GraphStoreConfig};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 selects an ephemeral port.
    pub addr: String,
    /// Job worker threads (concurrent benchmark executions).
    pub workers: usize,
    pub store: GraphStoreConfig,
    /// Driver seed (noise streams and proxy generation).
    pub seed: u64,
    /// Width of the **single** execution pool all job workers share for
    /// real engine execution and proxy CSR builds (`0` = host default).
    /// Sharing one pool keeps `workers` concurrent jobs from each
    /// spawning their own thread set and oversubscribing the host; the
    /// pool serializes their parallel sections instead.
    pub pool_threads: u32,
    /// Maximum open (queued + running) jobs. A full queue rejects new
    /// submissions with a structured 429 rather than buffering without
    /// bound — multi-tenant backpressure instead of OOM-by-queue.
    pub queue_capacity: usize,
    /// Optional fault-injection plan applied to every executed job
    /// (chaos testing). `None` — the default — compiles the fault plane
    /// down to a no-op checkpoint per superstep.
    pub fault_plan: Option<FaultPlan>,
    /// Total execution attempts for a job that fails on an *injected
    /// transient* fault (first run + retries). `1` disables retries.
    pub retry_attempts: u32,
    /// Base delay of the jittered exponential backoff between retries.
    pub retry_base_millis: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: GraphStoreConfig::default(),
            seed: 0xB5ED,
            pool_threads: 0,
            queue_capacity: 256,
            fault_plan: None,
            retry_attempts: 3,
            retry_base_millis: 50,
        }
    }
}

/// Everything the API and the workers share.
pub struct ServiceState {
    pub store: GraphStore,
    /// Per-dataset streaming delta logs over the store's resident graphs
    /// (`POST /graphs/:id/mutations`); measured jobs that target a
    /// mutated dataset run on its materialized snapshot.
    pub mutations: MutationStore,
    pub queue: JobQueue,
    pub results: ResultsDatabase,
    /// The daemon-wide execution runtime: one pool, shared by every job
    /// worker (and the store's CSR builds) for the process lifetime.
    pub pool: Arc<WorkerPool>,
    /// The Granula monitor's metrics registry: job-latency histograms and
    /// run counters, exported by `GET /metrics` (JSON or Prometheus).
    pub metrics: MetricsRegistry,
    pub seed: u64,
    /// Fault-injection plan for chaos runs; `None` keeps the plane off.
    fault_plan: Option<FaultPlan>,
    retry_attempts: u32,
    retry_base_millis: u64,
    started: Instant,
    /// Finished jobs' Granula archives, keyed by job id — served whole by
    /// `GET /jobs/:id/archive` (the queue's job copies never carry them).
    archives: std::sync::Mutex<std::collections::BTreeMap<u64, PerformanceArchive>>,
}

impl ServiceState {
    pub fn new(config: &ServiceConfig) -> Self {
        let width = if config.pool_threads == 0 {
            graphalytics_core::pool::default_threads()
        } else {
            config.pool_threads
        };
        let pool = Arc::new(WorkerPool::new(width));
        // The daemon's pool always reports live utilization through
        // GET /metrics; the clock sampling it needs is opt-in.
        pool.enable_telemetry();
        ServiceState {
            store: GraphStore::new(config.store, pool.clone()),
            mutations: MutationStore::new(pool.clone()),
            queue: JobQueue::bounded(config.queue_capacity),
            results: ResultsDatabase::new(),
            pool,
            metrics: MetricsRegistry::new(),
            seed: config.seed,
            fault_plan: config.fault_plan.clone(),
            retry_attempts: config.retry_attempts.max(1),
            retry_base_millis: config.retry_base_millis,
            started: Instant::now(),
            archives: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Seconds since the daemon started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The Granula archive of a finished job, if one exists.
    pub fn archive(&self, id: u64) -> Option<PerformanceArchive> {
        self.archives.lock().unwrap().get(&id).cloned()
    }

    /// Files a finished job's archive under its id.
    pub fn store_archive(&self, id: u64, archive: PerformanceArchive) {
        self.archives.lock().unwrap().insert(id, archive);
    }

    /// Executes one validated job request through the harness driver's
    /// phased lifecycle (measured mode: upload → execute×repetitions →
    /// validate → delete, with the cached store graph). `Err` is a
    /// request-level failure (the driver never ran); benchmark verdicts
    /// (oom, unsupported, cancelled, timed-out, faulted, …) come back
    /// inside the `JobResult`. The `token` wires `DELETE /jobs/:id` into
    /// the run: cancelling it aborts the driver at the next superstep
    /// boundary. `attempt` seeds the fault plan so retries of a
    /// transient-faulted job draw a fresh (but still deterministic)
    /// injection script.
    pub fn execute(
        &self,
        id: u64,
        request: &JobRequest,
        token: &CancelToken,
        attempt: u32,
    ) -> Result<JobResult, String> {
        let dataset = graphalytics_core::datasets::dataset(&request.dataset)
            .ok_or_else(|| format!("unknown dataset {}", request.dataset))?;
        let platform = platform_by_name(&request.platform)
            .ok_or_else(|| format!("unknown platform {}", request.platform))?;
        let faults = self
            .fault_plan
            .as_ref()
            .map(|plan| plan.script_for(id, attempt))
            .unwrap_or_else(FaultScript::empty);
        let driver = Driver {
            seed: self.seed,
            pool: self.pool.clone(),
            cancel: token.clone(),
            faults,
            ..Driver::default()
        };
        let spec = JobSpec {
            dataset,
            algorithm: request.algorithm,
            cluster: ClusterSpec::single_machine(),
            run_index: 0,
            repetitions: request.repetitions.max(1),
            shards: request.shards.max(1),
            mutations: None,
            timeout_secs: request.timeout_millis.map(|ms| ms as f64 / 1000.0),
        };
        let result = match request.mode {
            JobMode::Analytic => driver.run(platform.as_ref(), &spec, RunMode::Analytic),
            JobMode::Measured => {
                // A dataset with a live delta log serves its materialized
                // post-mutation snapshot: jobs answer for the graph as
                // mutated, and validation references match it.
                let csr = self
                    .mutations
                    .snapshot(dataset.id)
                    .unwrap_or_else(|| self.store.get(dataset));
                driver.run(platform.as_ref(), &spec, RunMode::Measured { csr: &csr })
            }
        };
        Ok(result)
    }
}

/// A running daemon. Dropping the handle shuts the daemon down.
pub struct Service {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Service {
    /// Binds, spawns the accept loop and the worker pool, and returns.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServiceState::new(&config));
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for _ in 0..config.workers.max(1) {
            let state = state.clone();
            threads.push(std::thread::spawn(move || worker_loop(&state)));
        }
        {
            let state = state.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || accept_loop(listener, &state, &stop)));
        }
        Ok(Service { addr, state, stop, threads })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Stops accepting connections, drains workers, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.queue.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn worker_loop(state: &ServiceState) {
    while let Some((id, request, token)) = state.queue.next_job() {
        let started = Instant::now();
        let backoff = Backoff::new(
            Duration::from_millis(state.retry_base_millis),
            Duration::from_secs(2),
            state.seed ^ id,
        );
        let mut attempt: u32 = 0;
        let outcome = loop {
            // A panicking engine must cost one job, not a pool thread:
            // an unwinding worker would leave the job `running` forever
            // and silently shrink the pool until the daemon stops
            // executing. Panics are terminal — never retried.
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                state.execute(id, &request, &token, attempt)
            }))
            .unwrap_or_else(|panic| Err(panic_message(&panic)));
            match run {
                // Only *injected transient* faults are retried, with
                // jittered exponential backoff and a bounded attempt
                // budget; a cancelled token ends the job immediately.
                Ok(ref result)
                    if result.status.is_transient_fault()
                        && attempt + 1 < state.retry_attempts
                        && !token.is_cancelled() =>
                {
                    state.metrics.counter("jobs_retried_total").inc();
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                }
                other => break other,
            }
        };
        let wall = started.elapsed().as_secs_f64();
        state.metrics.histogram("job_seconds").observe_secs(wall);
        state
            .metrics
            .histogram(&format!("job_seconds_{}", request.platform))
            .observe_secs(wall);
        match outcome {
            Ok(mut result) => match result.status {
                JobStatus::Cancelled => {
                    state.metrics.counter("jobs_cancelled_running_total").inc();
                    state.queue.finish(id, JobState::Cancelled, Some(result));
                }
                JobStatus::TimedOut => {
                    state.metrics.counter("jobs_timed_out_total").inc();
                    state.queue.finish(id, JobState::TimedOut, Some(result));
                }
                JobStatus::Faulted { transient, ref message } => {
                    // Structured terminal failure: retries exhausted (or
                    // the fault was permanent). The record keeps the
                    // result so clients can see which injection fired.
                    state.metrics.counter("jobs_faulted_total").inc();
                    let class = if transient { "transient" } else { "permanent" };
                    let detail = format!("injected {class} fault: {message}");
                    state.queue.finish(id, JobState::Failed(detail), Some(result));
                }
                _ => {
                    // Completed and benchmark verdicts (oom, unsupported,
                    // sla-violation, validation-failed) all land in the
                    // results database; only `completed` is a success.
                    state.metrics.counter("jobs_executed_total").inc();
                    // The archive lives once, keyed by job id for
                    // `GET /jobs/:id/archive` — the queue's and the
                    // results database's copies never carry it.
                    if let Some(archive) = result.archive.take() {
                        state.store_archive(id, archive);
                    }
                    state.results.insert(result.clone());
                    state.queue.finish(id, JobState::Completed, Some(result));
                }
            },
            Err(message) => {
                state.metrics.counter("jobs_panicked_total").inc();
                state.queue.finish(id, JobState::Failed(message), None);
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    let detail = panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("(non-string panic payload)");
    format!("job panicked: {detail}")
}

fn accept_loop(listener: TcpListener, state: &Arc<ServiceState>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        // Connections are short-lived (one request, `Connection: close`),
        // so thread-per-connection keeps the daemon dependency-free
        // without an accept backlog.
        std::thread::spawn(move || handle_connection(&state, stream));
    }
}

fn handle_connection(state: &ServiceState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(&stream);
    let response = match Request::read(&mut reader) {
        Ok(Some(request)) => api::handle(state, &request),
        Ok(None) => return,
        Err(e) => Response::error(400, e.to_string()),
    };
    let mut writer = BufWriter::new(&stream);
    // The client may already be gone; nothing useful to do about it.
    let _ = response.write(&mut writer);
}
