//! The client library (`grupload` analog): a thin, blocking HTTP client
//! for the service API, used by the `graphctl` CLI and the loopback
//! integration tests.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use graphalytics_granula::json::Json;

use crate::http::read_response;
use crate::jobs::JobMode;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered, but not with what the protocol promises.
    Protocol(String),
    /// The server rejected the request (4xx/5xx) with an error message.
    Api { status: u16, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Api { status, message } => write!(f, "server error {status}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking API client. One TCP connection per call (the server closes
/// after each response), so the client itself is stateless and cheap.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`"127.0.0.1:8077"` or anything
    /// `TcpStream::connect` accepts).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One raw round trip: status code + body text, no JSON expectations
    /// (the Prometheus exposition endpoint serves plain text).
    pub fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> ClientResult<(u16, String)> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let mut writer = BufWriter::new(&stream);
        let payload = body.map(Json::to_string_compact).unwrap_or_default();
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        )?;
        writer.flush()?;
        let mut reader = BufReader::new(&stream);
        Ok(read_response(&mut reader)?)
    }

    /// One round trip. 4xx/5xx responses become [`ClientError::Api`] with
    /// the server's `error` message.
    pub fn request(&self, method: &str, path: &str, body: Option<&Json>) -> ClientResult<Json> {
        let (status, text) = self.request_raw(method, path, body)?;
        let json = if text.is_empty() {
            Json::Null
        } else {
            Json::parse(&text)
                .map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))?
        };
        if status >= 400 {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("(no error message)")
                .to_string();
            return Err(ClientError::Api { status, message });
        }
        Ok(json)
    }

    /// Submits a single-repetition job and returns its id.
    pub fn submit(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: &str,
        mode: JobMode,
    ) -> ClientResult<u64> {
        self.submit_repeated(platform, dataset, algorithm, mode, 1)
    }

    /// Submits a job whose execute phase repeats `repetitions` times on
    /// the uploaded graph (the benchmark's mean-of-N) and returns its id.
    pub fn submit_repeated(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: &str,
        mode: JobMode,
        repetitions: u32,
    ) -> ClientResult<u64> {
        let body = Json::obj(vec![
            ("platform", Json::str(platform)),
            ("dataset", Json::str(dataset)),
            ("algorithm", Json::str(algorithm)),
            ("mode", Json::str(mode.as_str())),
            ("repetitions", Json::Num(repetitions as f64)),
        ]);
        let response = self.request("POST", "/jobs", Some(&body))?;
        response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submission response carries no id".to_string()))
    }

    /// One job's current record.
    pub fn job(&self, id: u64) -> ClientResult<Json> {
        self.request("GET", &format!("/jobs/{id}"), None)
    }

    /// Polls until the job reaches a terminal state or `timeout` elapses.
    /// Polling backs off exponentially (10 ms doubling to a 1 s ceiling):
    /// every poll is a fresh connection and a server thread, so waiting on
    /// an hours-long job must not hammer the daemon 100× a second.
    pub fn wait(&self, id: u64, timeout: Duration) -> ClientResult<Json> {
        let deadline = Instant::now() + timeout;
        let mut interval = Duration::from_millis(10);
        loop {
            let record = self.job(id)?;
            match record.get("state").and_then(Json::as_str) {
                Some("queued" | "running") => {}
                Some(_) => return Ok(record),
                None => {
                    return Err(ClientError::Protocol("job record carries no state".to_string()))
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Protocol(format!(
                    "job {id} still not finished after {timeout:?}"
                )));
            }
            std::thread::sleep(interval);
            interval = (interval * 2).min(Duration::from_secs(1));
        }
    }

    /// Cancels a queued job.
    pub fn cancel(&self, id: u64) -> ClientResult<Json> {
        self.request("DELETE", &format!("/jobs/{id}"), None)
    }

    /// All jobs.
    pub fn jobs(&self) -> ClientResult<Json> {
        self.request("GET", "/jobs", None)
    }

    /// The results database export.
    pub fn results(&self) -> ClientResult<Json> {
        self.request("GET", "/results", None)
    }

    /// The resident graph listing.
    pub fn graphs(&self) -> ClientResult<Json> {
        self.request("GET", "/graphs", None)
    }

    /// Applies one mutation batch to a resident graph's delta log. The
    /// body follows `POST /graphs/:id/mutations`: explicit `insert` /
    /// `delete` edge rows, or a `generate` shorthand (see
    /// [`Client::mutate_generated`]).
    pub fn mutate(&self, dataset: &str, body: &Json) -> ClientResult<Json> {
        self.request("POST", &format!("/graphs/{dataset}/mutations"), Some(body))
    }

    /// Applies one server-generated mutation batch (`insertions` new
    /// edges, `deletions` removed edges, drawn deterministically from
    /// `seed`) to a resident graph's delta log.
    pub fn mutate_generated(
        &self,
        dataset: &str,
        insertions: u64,
        deletions: u64,
        seed: u64,
    ) -> ClientResult<Json> {
        let body = Json::obj(vec![(
            "generate",
            Json::obj(vec![
                ("insert", Json::Num(insertions as f64)),
                ("delete", Json::Num(deletions as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        )]);
        self.mutate(dataset, &body)
    }

    /// Service metrics.
    pub fn metrics(&self) -> ClientResult<Json> {
        self.request("GET", "/metrics", None)
    }

    /// Service metrics in the Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> ClientResult<String> {
        let (status, text) = self.request_raw("GET", "/metrics?format=prometheus", None)?;
        if status >= 400 {
            return Err(ClientError::Api { status, message: text });
        }
        Ok(text)
    }

    /// A finished job's full Granula archive.
    pub fn archive(&self, id: u64) -> ClientResult<graphalytics_granula::PerformanceArchive> {
        let json = self.request("GET", &format!("/jobs/{id}/archive"), None)?;
        graphalytics_granula::PerformanceArchive::from_json(&json)
            .map_err(|e| ClientError::Protocol(format!("bad archive body: {e}")))
    }

    /// Liveness probe.
    pub fn health(&self) -> ClientResult<Json> {
        self.request("GET", "/health", None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failure_is_io_error() {
        // Reserved port 1 on loopback: nothing listens there.
        let client = Client::new("127.0.0.1:1");
        match client.health() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_forms() {
        let e = ClientError::Api { status: 400, message: "unknown dataset R99".into() };
        assert_eq!(e.to_string(), "server error 400: unknown dataset R99");
        let e = ClientError::Protocol("no id".into());
        assert!(e.to_string().contains("no id"));
    }
}
