//! The client library (`grupload` analog): a thin, blocking HTTP client
//! for the service API, used by the `graphctl` CLI and the loopback
//! integration tests.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use graphalytics_core::fault::Backoff;
use graphalytics_granula::json::Json;

use crate::http::read_response;
use crate::jobs::JobMode;

/// Client-side retry of *transient transport* failures: connect refusals
/// and, for idempotent `GET`s, mid-response read failures. Retries use
/// jittered exponential backoff seeded deterministically, so test runs
/// are reproducible. `POST`/`DELETE` bodies that already reached the
/// server are never replayed (no double submission).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts per call (1 = no retry).
    pub attempts: u32,
    /// Base delay of the jittered exponential backoff.
    pub base: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, base: Duration::from_millis(25), seed: 0xC11E }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered, but not with what the protocol promises.
    Protocol(String),
    /// The server rejected the request (4xx/5xx) with an error message.
    Api { status: u16, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Api { status, message } => write!(f, "server error {status}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking API client. One TCP connection per call (the server closes
/// after each response), so the client itself is stateless and cheap.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    retry: RetryPolicy,
}

impl Client {
    /// A client for `addr` (`"127.0.0.1:8077"` or anything
    /// `TcpStream::connect` accepts), with the default retry policy.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), retry: RetryPolicy::default() }
    }

    /// Replaces the transport retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One raw round trip: status code + body text, no JSON expectations
    /// (the Prometheus exposition endpoint serves plain text). Transient
    /// transport failures are retried per the client's [`RetryPolicy`]:
    /// connect failures for every method (the request never left this
    /// process), post-connect failures only for `GET` (anything else may
    /// have already mutated server state and must not be replayed).
    pub fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> ClientResult<(u16, String)> {
        let payload = body.map(Json::to_string_compact).unwrap_or_default();
        let attempts = self.retry.attempts.max(1);
        let backoff = Backoff::new(self.retry.base, Duration::from_secs(1), self.retry.seed);
        let mut attempt = 0u32;
        loop {
            let connected = std::cell::Cell::new(false);
            let result = self.attempt_raw(method, path, &payload, &connected);
            match result {
                Ok(response) => return Ok(response),
                Err(e) => {
                    let retryable = !connected.get() || method == "GET";
                    if !retryable || attempt + 1 >= attempts {
                        return Err(e.into());
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn attempt_raw(
        &self,
        method: &str,
        path: &str,
        payload: &str,
        connected: &std::cell::Cell<bool>,
    ) -> std::io::Result<(u16, String)> {
        let stream = TcpStream::connect(&self.addr)?;
        connected.set(true);
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let mut writer = BufWriter::new(&stream);
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        )?;
        writer.flush()?;
        let mut reader = BufReader::new(&stream);
        read_response(&mut reader)
    }

    /// One round trip. 4xx/5xx responses become [`ClientError::Api`] with
    /// the server's `error` message.
    pub fn request(&self, method: &str, path: &str, body: Option<&Json>) -> ClientResult<Json> {
        let (status, text) = self.request_raw(method, path, body)?;
        let json = if text.is_empty() {
            Json::Null
        } else {
            Json::parse(&text)
                .map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))?
        };
        if status >= 400 {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("(no error message)")
                .to_string();
            return Err(ClientError::Api { status, message });
        }
        Ok(json)
    }

    /// Submits a single-repetition job and returns its id.
    pub fn submit(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: &str,
        mode: JobMode,
    ) -> ClientResult<u64> {
        self.submit_repeated(platform, dataset, algorithm, mode, 1)
    }

    /// Submits a job whose execute phase repeats `repetitions` times on
    /// the uploaded graph (the benchmark's mean-of-N) and returns its id.
    pub fn submit_repeated(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: &str,
        mode: JobMode,
        repetitions: u32,
    ) -> ClientResult<u64> {
        self.submit_with_timeout(platform, dataset, algorithm, mode, repetitions, None)
    }

    /// Submits a job with an optional per-job deadline: a run still going
    /// after `timeout_secs` is aborted at the next superstep boundary and
    /// lands in the `timed-out` terminal state.
    pub fn submit_with_timeout(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: &str,
        mode: JobMode,
        repetitions: u32,
        timeout_secs: Option<f64>,
    ) -> ClientResult<u64> {
        let mut fields = vec![
            ("platform", Json::str(platform)),
            ("dataset", Json::str(dataset)),
            ("algorithm", Json::str(algorithm)),
            ("mode", Json::str(mode.as_str())),
            ("repetitions", Json::Num(repetitions as f64)),
        ];
        if let Some(secs) = timeout_secs {
            fields.push(("timeout_secs", Json::Num(secs)));
        }
        let body = Json::obj(fields);
        let response = self.request("POST", "/jobs", Some(&body))?;
        response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submission response carries no id".to_string()))
    }

    /// One job's current record.
    pub fn job(&self, id: u64) -> ClientResult<Json> {
        self.request("GET", &format!("/jobs/{id}"), None)
    }

    /// Polls until the job reaches a terminal state or `timeout` elapses.
    /// Polling backs off exponentially (10 ms doubling to a 1 s ceiling):
    /// every poll is a fresh connection and a server thread, so waiting on
    /// an hours-long job must not hammer the daemon 100× a second.
    pub fn wait(&self, id: u64, timeout: Duration) -> ClientResult<Json> {
        let deadline = Instant::now() + timeout;
        let mut interval = Duration::from_millis(10);
        loop {
            let record = self.job(id)?;
            match record.get("state").and_then(Json::as_str) {
                Some("queued" | "running") => {}
                Some(_) => return Ok(record),
                None => {
                    return Err(ClientError::Protocol("job record carries no state".to_string()))
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Protocol(format!(
                    "job {id} still not finished after {timeout:?}"
                )));
            }
            std::thread::sleep(interval);
            interval = (interval * 2).min(Duration::from_secs(1));
        }
    }

    /// Cancels a queued or running job. A queued job cancels immediately;
    /// a running one has its token signalled and reaches the `cancelled`
    /// terminal state at its next superstep boundary ([`Client::wait`]).
    pub fn cancel(&self, id: u64) -> ClientResult<Json> {
        self.request("DELETE", &format!("/jobs/{id}"), None)
    }

    /// All jobs.
    pub fn jobs(&self) -> ClientResult<Json> {
        self.request("GET", "/jobs", None)
    }

    /// The results database export.
    pub fn results(&self) -> ClientResult<Json> {
        self.request("GET", "/results", None)
    }

    /// The resident graph listing.
    pub fn graphs(&self) -> ClientResult<Json> {
        self.request("GET", "/graphs", None)
    }

    /// Applies one mutation batch to a resident graph's delta log. The
    /// body follows `POST /graphs/:id/mutations`: explicit `insert` /
    /// `delete` edge rows, or a `generate` shorthand (see
    /// [`Client::mutate_generated`]).
    pub fn mutate(&self, dataset: &str, body: &Json) -> ClientResult<Json> {
        self.request("POST", &format!("/graphs/{dataset}/mutations"), Some(body))
    }

    /// Applies one server-generated mutation batch (`insertions` new
    /// edges, `deletions` removed edges, drawn deterministically from
    /// `seed`) to a resident graph's delta log.
    pub fn mutate_generated(
        &self,
        dataset: &str,
        insertions: u64,
        deletions: u64,
        seed: u64,
    ) -> ClientResult<Json> {
        let body = Json::obj(vec![(
            "generate",
            Json::obj(vec![
                ("insert", Json::Num(insertions as f64)),
                ("delete", Json::Num(deletions as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        )]);
        self.mutate(dataset, &body)
    }

    /// Service metrics.
    pub fn metrics(&self) -> ClientResult<Json> {
        self.request("GET", "/metrics", None)
    }

    /// Service metrics in the Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> ClientResult<String> {
        let (status, text) = self.request_raw("GET", "/metrics?format=prometheus", None)?;
        if status >= 400 {
            return Err(ClientError::Api { status, message: text });
        }
        Ok(text)
    }

    /// A finished job's full Granula archive.
    pub fn archive(&self, id: u64) -> ClientResult<graphalytics_granula::PerformanceArchive> {
        let json = self.request("GET", &format!("/jobs/{id}/archive"), None)?;
        graphalytics_granula::PerformanceArchive::from_json(&json)
            .map_err(|e| ClientError::Protocol(format!("bad archive body: {e}")))
    }

    /// Liveness probe.
    pub fn health(&self) -> ClientResult<Json> {
        self.request("GET", "/health", None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failure_is_io_error() {
        // Reserved port 1 on loopback: nothing listens there. Retries are
        // exhausted (bounded) and the terminal error is still Io.
        let client = Client::new("127.0.0.1:1");
        match client.health() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        // A no-retry policy fails fast with the same error class.
        let client = Client::new("127.0.0.1:1").with_retry(RetryPolicy::none());
        match client.health() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn get_retries_after_dropped_connection() {
        use std::io::{Read as _, Write as _};
        // A listener that slams the first connection shut (transient
        // transport failure) and serves a real response on the second:
        // an idempotent GET must transparently retry and succeed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = r#"{"status":"ok"}"#;
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            );
            stream.write_all(response.as_bytes()).unwrap();
        });
        let client = Client::new(addr.to_string());
        let health = client.health().expect("second attempt succeeds");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        server.join().unwrap();
    }

    #[test]
    fn error_display_forms() {
        let e = ClientError::Api { status: 400, message: "unknown dataset R99".into() };
        assert_eq!(e.to_string(), "server error 400: unknown dataset R99");
        let e = ClientError::Protocol("no id".into());
        assert!(e.to_string().contains("no id"));
    }
}
