//! The HTTP/JSON API surface.
//!
//! | method & path        | purpose                                        |
//! |----------------------|------------------------------------------------|
//! | `GET /`              | endpoint index                                 |
//! | `GET /health`        | liveness probe                                 |
//! | `POST /jobs`         | submit a job (202 + id; optional               |
//! |                      | `timeout_secs` deadline; 429 when the bounded  |
//! |                      | queue is full)                                 |
//! | `GET /jobs`          | list all jobs                                  |
//! | `GET /jobs/:id`      | one job, with its result when finished         |
//! | `GET /jobs/:id/archive` | a finished job's full Granula archive       |
//! | `DELETE /jobs/:id`   | cancel a queued (200) or running (202) job —   |
//! |                      | a running job aborts at the next superstep     |
//! |                      | boundary via its cancellation token            |
//! | `GET /results`       | the full results database (JSON export)        |
//! | `GET /graphs`        | resident graph store entries + configuration   |
//! | `POST /graphs/:id/mutations` | apply a streaming mutation batch to a  |
//! |                      | resident graph's delta log (explicit           |
//! |                      | insert/delete rows or a `generate` shorthand)  |
//! | `GET /metrics`       | job/store/mutation counters, EPS / EVPS        |
//! |                      | aggregates, and monitor telemetry              |
//! |                      | (`?format=prometheus` for the text format)     |
//!
//! Requests are validated before they reach the queue: unknown platforms,
//! datasets and algorithms are 400s, not worker crashes — backed by the
//! `Result`-based selection paths in the harness.

use graphalytics_core::Algorithm;
use graphalytics_granula::json::Json;
use graphalytics_harness::results::result_json;

use crate::http::{Request, Response};
use crate::jobs::{CancelError, JobMode, JobRecord, JobRequest, JobState, SubmitError};
use crate::server::ServiceState;

/// Routes one request.
pub fn handle(state: &ServiceState, request: &Request) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["health"]) => Response::json(200, &Json::obj(vec![("status", Json::str("ok"))])),
        ("POST", ["jobs"]) => submit(state, request),
        ("GET", ["jobs"]) => list_jobs(state),
        ("GET", ["jobs", id]) => get_job(state, id),
        ("GET", ["jobs", id, "archive"]) => get_archive(state, id),
        ("DELETE", ["jobs", id]) => cancel_job(state, id),
        ("GET", ["results"]) => Response::raw_json(200, state.results.to_json()),
        ("GET", ["graphs"]) => graphs(state),
        ("POST", ["graphs", id, "mutations"]) => mutate_graph(state, id, request),
        ("GET", ["metrics"]) => metrics(state, request),
        ("GET" | "POST" | "DELETE", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, format!("method {} not allowed", request.method)),
    }
}

fn index() -> Response {
    Response::json(
        200,
        &Json::obj(vec![
            ("service", Json::str("graphalytics-service")),
            (
                "endpoints",
                Json::Arr(
                    [
                        "GET /health",
                        "POST /jobs",
                        "GET /jobs",
                        "GET /jobs/:id",
                        "GET /jobs/:id/archive",
                        "DELETE /jobs/:id",
                        "GET /results",
                        "GET /graphs",
                        "POST /graphs/:id/mutations",
                        "GET /metrics",
                        "GET /metrics?format=prometheus",
                    ]
                    .iter()
                    .map(|e| Json::str(*e))
                    .collect(),
                ),
            ),
        ]),
    )
}

/// Parses and validates a submission body into a [`JobRequest`].
fn parse_submission(body: &str) -> Result<JobRequest, String> {
    let json = Json::parse(body).map_err(|e| e.to_string())?;
    let field = |name: &str| -> Result<&str, String> {
        json.get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{name}`"))
    };
    let platform = field("platform")?;
    if graphalytics_engines::platform_by_name(platform).is_none() {
        return Err(format!("unknown platform {platform}"));
    }
    let dataset_key = field("dataset")?;
    let dataset = graphalytics_core::datasets::dataset(dataset_key)
        .ok_or_else(|| format!("unknown dataset {dataset_key}"))?;
    let acronym = field("algorithm")?;
    let algorithm = Algorithm::from_acronym(acronym)
        .ok_or_else(|| format!("unknown algorithm {acronym}"))?;
    if algorithm.needs_weights() && !dataset.weighted {
        return Err(format!(
            "algorithm {acronym} needs edge weights but dataset {} is unweighted",
            dataset.id
        ));
    }
    let mode = match json.get("mode") {
        None => JobMode::default(),
        Some(value) => value
            .as_str()
            .and_then(JobMode::from_str_opt)
            .ok_or_else(|| "field `mode` must be \"measured\" or \"analytic\"".to_string())?,
    };
    let repetitions = match json.get("repetitions") {
        None => 1,
        Some(value) => {
            let n = value
                .as_u64()
                .ok_or_else(|| "field `repetitions` must be a positive integer".to_string())?;
            if n == 0 || n > crate::jobs::MAX_REPETITIONS as u64 {
                return Err(format!(
                    "field `repetitions` must be in 1..={}",
                    crate::jobs::MAX_REPETITIONS
                ));
            }
            n as u32
        }
    };
    let shards = match json.get("shards") {
        None => 1,
        Some(value) => {
            let n = value
                .as_u64()
                .ok_or_else(|| "field `shards` must be a positive integer".to_string())?;
            if n == 0 || n > crate::jobs::MAX_SHARDS as u64 {
                return Err(format!(
                    "field `shards` must be in 1..={}",
                    crate::jobs::MAX_SHARDS
                ));
            }
            n as u32
        }
    };
    let timeout_millis = match json.get("timeout_secs") {
        None => None,
        Some(value) => {
            let secs = value
                .as_f64()
                .ok_or_else(|| "field `timeout_secs` must be a number".to_string())?;
            if !secs.is_finite() || secs <= 0.0 || secs > 86_400.0 {
                return Err(
                    "field `timeout_secs` must be a positive number of seconds (≤ 86400)"
                        .to_string(),
                );
            }
            Some((secs * 1000.0).ceil() as u64)
        }
    };
    Ok(JobRequest {
        platform: platform.to_string(),
        dataset: dataset.id.to_string(),
        algorithm,
        mode,
        repetitions,
        shards,
        timeout_millis,
    })
}

fn submit(state: &ServiceState, request: &Request) -> Response {
    let Some(body) = request.body_utf8() else {
        return Response::error(400, "request body is not UTF-8");
    };
    match parse_submission(body) {
        Ok(job) => match state.queue.submit(job) {
            Ok(id) => Response::json(
                202,
                &Json::obj(vec![
                    ("id", Json::Num(id as f64)),
                    ("state", Json::str("queued")),
                ]),
            ),
            // Bounded-queue backpressure: a full queue is a structured
            // 429, not an unbounded buffer — the client retries later.
            Err(SubmitError::QueueFull { capacity }) => {
                state.metrics.counter("jobs_rejected_total").inc();
                Response::error(
                    429,
                    format!("job queue is full ({capacity} open jobs); retry later"),
                )
            }
        },
        Err(message) => Response::error(400, message),
    }
}

/// One job as JSON: identity, request, state, and the benchmark result
/// once the driver has run.
pub fn job_json(record: &JobRecord) -> Json {
    let mut fields = vec![
        ("id".to_string(), Json::Num(record.id as f64)),
        ("platform".to_string(), Json::str(&record.request.platform)),
        ("dataset".to_string(), Json::str(&record.request.dataset)),
        ("algorithm".to_string(), Json::str(record.request.algorithm.acronym())),
        ("mode".to_string(), Json::str(record.request.mode.as_str())),
        ("repetitions".to_string(), Json::Num(record.request.repetitions as f64)),
        ("shards".to_string(), Json::Num(record.request.shards as f64)),
        ("state".to_string(), Json::str(record.state.as_str())),
    ];
    if let Some(millis) = record.request.timeout_millis {
        fields.push(("timeout_secs".to_string(), Json::Num(millis as f64 / 1000.0)));
    }
    if record.cancel_requested {
        fields.push(("cancel_requested".to_string(), Json::Bool(true)));
    }
    if let JobState::Failed(message) = &record.state {
        fields.push(("error".to_string(), Json::str(message)));
    }
    if let Some(result) = &record.result {
        fields.push(("result".to_string(), result_json(result)));
    }
    Json::Obj(fields)
}

fn list_jobs(state: &ServiceState) -> Response {
    let jobs: Vec<Json> = state.queue.list().iter().map(job_json).collect();
    Response::json(200, &Json::obj(vec![("jobs", Json::Arr(jobs))]))
}

fn parse_id(raw: &str) -> Result<u64, Response> {
    raw.parse::<u64>().map_err(|_| Response::error(400, format!("malformed job id {raw:?}")))
}

fn get_job(state: &ServiceState, raw_id: &str) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match state.queue.get(id) {
        Some(record) => Response::json(200, &job_json(&record)),
        None => Response::error(404, format!("no job {id}")),
    }
}

fn cancel_job(state: &ServiceState, raw_id: &str) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match state.queue.cancel(id) {
        // A queued job cancels immediately (200). A running job gets its
        // token signalled and aborts at the next superstep boundary — the
        // 202 acknowledges the request; poll `GET /jobs/:id` for the
        // `cancelled` terminal state.
        Ok(record) if record.state == JobState::Running => {
            Response::json(202, &job_json(&record))
        }
        Ok(record) => Response::json(200, &job_json(&record)),
        Err(CancelError::NotFound) => Response::error(404, format!("no job {id}")),
        Err(CancelError::NotCancellable(job_state)) => {
            Response::error(409, format!("job {id} is {job_state}, already terminal"))
        }
    }
}

fn graphs(state: &ServiceState) -> Response {
    let config = state.store.config();
    let rows: Vec<Json> = state
        .store
        .list()
        .iter()
        .map(|info| {
            let mut fields = vec![
                ("dataset", Json::str(&info.dataset)),
                ("vertices", Json::Num(info.vertices as f64)),
                ("edges", Json::Num(info.edges as f64)),
                ("bytes", Json::Num(info.bytes as f64)),
            ];
            if let Some(delta) = state.mutations.status(&info.dataset) {
                fields.push(("mutated", Json::Bool(true)));
                fields.push(("applied_batches", Json::Num(delta.stats.applied_batches as f64)));
                fields.push(("delta_arcs", Json::Num(delta.delta_arcs as f64)));
                fields.push(("fill_ratio", Json::Num(delta.fill_ratio)));
            }
            Json::obj(fields)
        })
        .collect();
    Response::json(
        200,
        &Json::obj(vec![
            ("graphs", Json::Arr(rows)),
            ("capacity_bytes", Json::Num(config.capacity_bytes as f64)),
            ("scale_divisor", Json::Num(config.scale_divisor as f64)),
        ]),
    )
}

/// Parses an explicit mutation body: `insert` rows of `[src, dst]` or
/// `[src, dst, weight]`, `delete` rows of `[src, dst]`.
fn parse_mutation_batch(json: &Json) -> Result<graphalytics_core::MutationBatch, String> {
    let mut batch = graphalytics_core::MutationBatch::new();
    let vertex = |cell: &Json, field: &str| -> Result<u64, String> {
        cell.as_u64()
            .ok_or_else(|| format!("field `{field}` rows must hold non-negative vertex ids"))
    };
    if let Some(rows) = json.get("insert") {
        let rows = rows
            .as_arr()
            .ok_or_else(|| "field `insert` must be an array of edge rows".to_string())?;
        for row in rows {
            let cells = row
                .as_arr()
                .ok_or_else(|| "field `insert` rows must be arrays".to_string())?;
            match cells {
                [src, dst] => {
                    batch.insert(vertex(src, "insert")?, vertex(dst, "insert")?);
                }
                [src, dst, weight] => {
                    let w = weight
                        .as_f64()
                        .ok_or_else(|| "field `insert` weights must be numbers".to_string())?;
                    batch.insert_weighted(vertex(src, "insert")?, vertex(dst, "insert")?, w);
                }
                _ => {
                    return Err(
                        "field `insert` rows must be [src, dst] or [src, dst, weight]".to_string()
                    )
                }
            }
        }
    }
    if let Some(rows) = json.get("delete") {
        let rows = rows
            .as_arr()
            .ok_or_else(|| "field `delete` must be an array of [src, dst] rows".to_string())?;
        for row in rows {
            match row.as_arr() {
                Some([src, dst]) => {
                    batch.delete(vertex(src, "delete")?, vertex(dst, "delete")?);
                }
                _ => return Err("field `delete` rows must be [src, dst]".to_string()),
            }
        }
    }
    Ok(batch)
}

/// `POST /graphs/:id/mutations`: applies one batch (explicit rows or the
/// `generate: {insert, delete, seed}` shorthand) to the dataset's delta
/// log. Validation failures — undeclared vertices, self loops, bad
/// weights, malformed rows — are structured 400s and leave the log
/// untouched; the graph is generated into the store first if it was not
/// yet resident.
fn mutate_graph(state: &ServiceState, raw_id: &str, request: &Request) -> Response {
    let Some(dataset) = graphalytics_core::datasets::dataset(raw_id) else {
        return Response::error(404, format!("unknown dataset {raw_id}"));
    };
    let Some(body) = request.body_utf8() else {
        return Response::error(400, "request body is not UTF-8");
    };
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(e) => return Response::error(400, e.to_string()),
    };
    let base = state.store.get(dataset);
    let applied = if let Some(generate) = json.get("generate") {
        if json.get("insert").is_some() || json.get("delete").is_some() {
            return Response::error(
                400,
                "`generate` excludes explicit `insert`/`delete` arrays",
            );
        }
        let count = |name: &str| -> Result<u64, Response> {
            match generate.get(name) {
                None => Ok(0),
                Some(value) => value.as_u64().ok_or_else(|| {
                    Response::error(
                        400,
                        format!("field `generate.{name}` must be a non-negative integer"),
                    )
                }),
            }
        };
        let (insertions, deletions) = match (count("insert"), count("delete")) {
            (Ok(i), Ok(d)) => (i as usize, d as usize),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        let seed = generate.get("seed").and_then(Json::as_u64).unwrap_or(0);
        state.mutations.apply_generated(dataset.id, &base, insertions, deletions, seed)
    } else {
        match parse_mutation_batch(&json) {
            Ok(batch) if batch.is_empty() => {
                return Response::error(
                    400,
                    "mutation batch is empty (no `insert`, `delete`, or `generate`)",
                )
            }
            Ok(batch) => {
                let len = batch.len();
                state.mutations.apply(dataset.id, &base, &batch).map(|report| (len, report))
            }
            Err(message) => return Response::error(400, message),
        }
    };
    match applied {
        Ok((batch_len, report)) => Response::json(
            200,
            &Json::obj(vec![
                ("dataset", Json::str(dataset.id)),
                ("batch_len", Json::Num(batch_len as f64)),
                ("inserted", Json::Num(report.inserted as f64)),
                ("deleted", Json::Num(report.deleted as f64)),
                ("updated", Json::Num(report.updated as f64)),
                ("compacted", Json::Bool(report.compacted)),
                ("delta_arcs", Json::Num(report.delta_arcs as f64)),
                ("fill_ratio", Json::Num(report.fill_ratio)),
                ("apply_secs", Json::Num(report.apply_secs)),
            ]),
        ),
        Err(message) => Response::error(400, message),
    }
}

fn get_archive(state: &ServiceState, raw_id: &str) -> Response {
    let id = match parse_id(raw_id) {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match state.archive(id) {
        Some(archive) => Response::json(200, &archive.to_json_value()),
        None => match state.queue.get(id) {
            Some(record) => Response::error(
                404,
                format!("job {id} is {}, no archive recorded", record.state.as_str()),
            ),
            None => Response::error(404, format!("no job {id}")),
        },
    }
}

/// Copies the worker pool's live utilization (and daemon uptime) into the
/// monitor registry, so both exposition formats serve current values.
fn refresh_pool_gauges(state: &ServiceState) {
    let u = state.pool.utilization();
    state.metrics.gauge("pool_busy_fraction").set(u.busy_fraction());
    state.metrics.gauge("pool_busy_secs").set(u.busy_secs);
    state.metrics.gauge("pool_uptime_secs").set(u.uptime_secs);
    state.metrics.gauge("pool_dispatch_wait_secs").set(u.dispatch_wait_secs);
    state.metrics.gauge("pool_dispatch_wakeups").set(u.dispatch_wakeups as f64);
    for (i, busy) in u.per_worker_busy_secs.iter().enumerate() {
        state.metrics.gauge(&format!("pool_worker_{i}_busy_secs")).set(*busy);
    }
    state.metrics.gauge("service_uptime_secs").set(state.uptime_secs());
}

/// The Granula-monitor section of `GET /metrics`: live pool utilization
/// plus the registry's counters and latency histograms (with estimated
/// p50/p95/p99).
fn monitor_json(state: &ServiceState) -> Json {
    let u = state.pool.utilization();
    let snapshot = state.metrics.snapshot();
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    let counters: Vec<Json> = snapshot
        .counters
        .iter()
        .map(|(name, v)| {
            Json::obj(vec![("name", Json::str(name)), ("value", Json::Num(*v as f64))])
        })
        .collect();
    let histograms: Vec<Json> = snapshot
        .histograms
        .iter()
        .map(|(name, h)| {
            Json::obj(vec![
                ("name", Json::str(name)),
                ("count", Json::Num(h.count as f64)),
                ("sum_secs", Json::Num(h.sum_secs)),
                ("mean_secs", opt(h.mean_secs())),
                ("p50_secs", opt(h.p50())),
                ("p95_secs", opt(h.p95())),
                ("p99_secs", opt(h.p99())),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "utilization",
            Json::obj(vec![
                ("busy_fraction", Json::Num(u.busy_fraction())),
                ("busy_secs", Json::Num(u.busy_secs)),
                ("uptime_secs", Json::Num(u.uptime_secs)),
                ("dispatch_wait_secs", Json::Num(u.dispatch_wait_secs)),
                ("dispatch_wakeups", Json::Num(u.dispatch_wakeups as f64)),
                ("mean_dispatch_wait_secs", opt(u.mean_dispatch_wait_secs())),
                (
                    "per_worker_busy_secs",
                    Json::Arr(u.per_worker_busy_secs.iter().map(|&b| Json::Num(b)).collect()),
                ),
            ]),
        ),
        ("counters", Json::Arr(counters)),
        ("histograms", Json::Arr(histograms)),
    ])
}

/// The delta-log section of `GET /metrics`: aggregate mutation counters
/// over every resident graph with a live delta log.
fn mutations_json(state: &ServiceState) -> Json {
    let m = state.mutations.metrics();
    Json::obj(vec![
        ("mutated_graphs", Json::Num(m.mutated_graphs as f64)),
        ("applied_batches", Json::Num(m.applied_batches as f64)),
        ("inserted_edges", Json::Num(m.inserted_edges as f64)),
        ("deleted_edges", Json::Num(m.deleted_edges as f64)),
        ("updated_edges", Json::Num(m.updated_edges as f64)),
        ("compactions", Json::Num(m.compactions as f64)),
        ("compact_secs", Json::Num(m.compact_secs)),
        ("delta_arcs", Json::Num(m.delta_arcs as f64)),
        ("snapshot_builds", Json::Num(m.snapshot_builds as f64)),
    ])
}

/// Copies the mutation-store counters into the monitor registry so the
/// Prometheus exposition carries the delta-log gauges too.
fn refresh_mutation_gauges(state: &ServiceState) {
    let m = state.mutations.metrics();
    state.metrics.gauge("mutation_applied_batches").set(m.applied_batches as f64);
    state.metrics.gauge("mutation_inserted_edges").set(m.inserted_edges as f64);
    state.metrics.gauge("mutation_deleted_edges").set(m.deleted_edges as f64);
    state.metrics.gauge("mutation_compactions").set(m.compactions as f64);
    state.metrics.gauge("mutation_delta_arcs").set(m.delta_arcs as f64);
}

fn metrics(state: &ServiceState, request: &Request) -> Response {
    match request.query_param("format") {
        Some("prometheus") => {
            refresh_pool_gauges(state);
            refresh_mutation_gauges(state);
            return Response::text(200, state.metrics.snapshot().to_prometheus());
        }
        Some(other) => {
            return Response::error(400, format!("unknown metrics format {other:?}"));
        }
        None => {}
    }
    let counts = state.queue.counts();
    let store = state.store.metrics();
    let pool = state.pool.stats();
    Response::json(
        200,
        &Json::obj(vec![
            ("uptime_secs", Json::Num(state.uptime_secs())),
            (
                "pool",
                Json::obj(vec![
                    ("threads", Json::Num(state.pool.threads() as f64)),
                    ("runs", Json::Num(pool.runs as f64)),
                    ("dispatches", Json::Num(pool.dispatches as f64)),
                ]),
            ),
            ("monitor", monitor_json(state)),
            (
                "jobs",
                Json::obj(vec![
                    ("submitted", Json::Num(counts.submitted() as f64)),
                    ("queued", Json::Num(counts.queued as f64)),
                    ("running", Json::Num(counts.running as f64)),
                    ("completed", Json::Num(counts.completed as f64)),
                    ("failed", Json::Num(counts.failed as f64)),
                    ("cancelled", Json::Num(counts.cancelled as f64)),
                    ("timed_out", Json::Num(counts.timed_out as f64)),
                    ("queue_capacity", Json::Num(state.queue.capacity() as f64)),
                    (
                        "queue_open",
                        Json::Num((counts.queued + counts.running) as f64),
                    ),
                ]),
            ),
            (
                "store",
                Json::obj(vec![
                    ("hits", Json::Num(store.hits as f64)),
                    ("misses", Json::Num(store.misses as f64)),
                    ("generations", Json::Num(store.generations as f64)),
                    ("evictions", Json::Num(store.evictions as f64)),
                    ("resident_bytes", Json::Num(store.resident_bytes as f64)),
                    ("entries", Json::Num(store.entries as f64)),
                ]),
            ),
            ("mutations", mutations_json(state)),
            ("results", results_aggregates(state)),
        ]),
    )
}

/// EPS / EVPS aggregates over successful results, overall and per
/// platform (the paper's throughput metrics, served live). Computed with
/// a no-clone fold: `/metrics` is the polled endpoint and must not copy
/// every stored result (and its archive) per call.
fn results_aggregates(state: &ServiceState) -> Json {
    #[derive(Default)]
    struct Agg {
        count: u64,
        successful: u64,
        eps_sum: f64,
        evps_sum: f64,
        /// Sharded-execution traffic over successful runs.
        sharded_jobs: u64,
        inter_shard_messages: u64,
        inter_shard_bytes: u64,
        /// platform → (jobs, Σeps, Σevps); BTreeMap for sorted output.
        per_platform: std::collections::BTreeMap<String, (u64, f64, f64)>,
    }
    let agg = state.results.fold(Agg::default(), |mut agg, r| {
        agg.count += 1;
        if r.status.is_success() {
            agg.successful += 1;
            let (eps, evps) = (r.eps(), r.evps());
            agg.eps_sum += eps;
            agg.evps_sum += evps;
            if r.shards > 1 {
                agg.sharded_jobs += 1;
            }
            agg.inter_shard_messages += r.counters.inter_shard_messages;
            agg.inter_shard_bytes += r.counters.inter_shard_bytes;
            let row = agg.per_platform.entry(r.platform.clone()).or_default();
            row.0 += 1;
            row.1 += eps;
            row.2 += evps;
        }
        agg
    });
    let mean = |sum: f64| -> Json {
        if agg.successful == 0 {
            Json::Null
        } else {
            Json::Num(sum / agg.successful as f64)
        }
    };
    let per_platform: Vec<Json> = agg
        .per_platform
        .iter()
        .map(|(name, (jobs, eps_sum, evps_sum))| {
            Json::obj(vec![
                ("platform", Json::str(name)),
                ("jobs", Json::Num(*jobs as f64)),
                ("mean_eps", Json::Num(eps_sum / *jobs as f64)),
                ("mean_evps", Json::Num(evps_sum / *jobs as f64)),
            ])
        })
        .collect();
    let success_rate =
        if agg.count == 0 { 1.0 } else { agg.successful as f64 / agg.count as f64 };
    Json::obj(vec![
        ("count", Json::Num(agg.count as f64)),
        ("successful", Json::Num(agg.successful as f64)),
        ("success_rate", Json::Num(success_rate)),
        ("mean_eps", mean(agg.eps_sum)),
        ("mean_evps", mean(agg.evps_sum)),
        (
            "sharded",
            Json::obj(vec![
                ("jobs", Json::Num(agg.sharded_jobs as f64)),
                ("inter_shard_messages", Json::Num(agg.inter_shard_messages as f64)),
                ("inter_shard_bytes", Json::Num(agg.inter_shard_bytes as f64)),
            ]),
        ),
        ("per_platform", Json::Arr(per_platform)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServiceConfig, ServiceState};

    fn state() -> ServiceState {
        ServiceState::new(&ServiceConfig::default())
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), headers: vec![], body: vec![] }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn index_and_health() {
        let state = state();
        let resp = handle(&state, &get("/"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("POST /jobs"));
        let resp = handle(&state, &get("/health"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn submission_validation() {
        let state = state();
        let cases = [
            ("not json at all", "JSON parse error"),
            (r#"{"dataset":"G22","algorithm":"bfs"}"#, "missing or non-string field `platform`"),
            (r#"{"platform":"quantum","dataset":"G22","algorithm":"bfs"}"#, "unknown platform"),
            (r#"{"platform":"native","dataset":"R99","algorithm":"bfs"}"#, "unknown dataset"),
            (r#"{"platform":"native","dataset":"G22","algorithm":"dfs"}"#, "unknown algorithm"),
            (r#"{"platform":"native","dataset":"G22","algorithm":"sssp"}"#, "needs edge weights"),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","mode":"warp"}"#,
                "field `mode` must be",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","repetitions":0}"#,
                "field `repetitions` must be in 1..=",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","repetitions":"x"}"#,
                "field `repetitions` must be a positive integer",
            ),
            (
                r#"{"platform":"pregel","dataset":"G22","algorithm":"bfs","shards":0}"#,
                "field `shards` must be in 1..=",
            ),
            (
                r#"{"platform":"pregel","dataset":"G22","algorithm":"bfs","shards":65}"#,
                "field `shards` must be in 1..=",
            ),
            (
                r#"{"platform":"pregel","dataset":"G22","algorithm":"bfs","shards":"two"}"#,
                "field `shards` must be a positive integer",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","timeout_secs":"soon"}"#,
                "field `timeout_secs` must be a number",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","timeout_secs":0}"#,
                "field `timeout_secs` must be a positive number",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","timeout_secs":-2.5}"#,
                "field `timeout_secs` must be a positive number",
            ),
            (
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","timeout_secs":90000}"#,
                "field `timeout_secs` must be a positive number",
            ),
        ];
        for (body, expected) in cases {
            let resp = handle(&state, &post("/jobs", body));
            assert_eq!(resp.status, 400, "{body}");
            assert!(resp.body.contains(expected), "{body} → {}", resp.body);
        }
        assert_eq!(state.queue.counts().submitted(), 0, "nothing reached the queue");
    }

    #[test]
    fn accepted_submission_is_queued() {
        let state = state();
        let resp = handle(
            &state,
            &post("/jobs", r#"{"platform":"GraphMat","dataset":"graph500-22","algorithm":"pr"}"#),
        );
        assert_eq!(resp.status, 202);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("id").and_then(Json::as_u64), Some(1));
        // Paper analogue and dataset name normalize to model name and id.
        let record = state.queue.get(1).unwrap();
        assert_eq!(record.request.dataset, "G22");
        assert_eq!(record.request.mode, JobMode::Measured);
        assert_eq!(record.request.repetitions, 1, "defaulted");
        let listed = handle(&state, &get("/jobs"));
        assert!(listed.body.contains("\"pr\""));
        // Explicit repetitions are carried through.
        let resp = handle(
            &state,
            &post(
                "/jobs",
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","repetitions":5}"#,
            ),
        );
        assert_eq!(resp.status, 202);
        assert_eq!(state.queue.get(2).unwrap().request.repetitions, 5);
        assert_eq!(state.queue.get(2).unwrap().request.shards, 1, "defaulted");
        // Explicit shards are carried through and echoed in the job view.
        let resp = handle(
            &state,
            &post(
                "/jobs",
                r#"{"platform":"pregel","dataset":"G22","algorithm":"bfs","shards":4}"#,
            ),
        );
        assert_eq!(resp.status, 202);
        assert_eq!(state.queue.get(3).unwrap().request.shards, 4);
        let view = handle(&state, &get("/jobs/3"));
        let body = Json::parse(&view.body).unwrap();
        assert_eq!(body.get("shards").and_then(Json::as_u64), Some(4));
        // A deadline is parsed to millisecond precision and echoed back.
        let resp = handle(
            &state,
            &post(
                "/jobs",
                r#"{"platform":"native","dataset":"G22","algorithm":"bfs","timeout_secs":1.5}"#,
            ),
        );
        assert_eq!(resp.status, 202);
        assert_eq!(state.queue.get(4).unwrap().request.timeout_millis, Some(1500));
        let view = handle(&state, &get("/jobs/4"));
        let body = Json::parse(&view.body).unwrap();
        assert_eq!(body.get("timeout_secs").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn full_queue_rejects_with_429() {
        let config = ServiceConfig { queue_capacity: 1, ..ServiceConfig::default() };
        let state = ServiceState::new(&config);
        let body = r#"{"platform":"native","dataset":"G22","algorithm":"bfs"}"#;
        assert_eq!(handle(&state, &post("/jobs", body)).status, 202);
        let resp = handle(&state, &post("/jobs", body));
        assert_eq!(resp.status, 429);
        assert!(resp.body.contains("queue is full"), "{}", resp.body);
        let metrics = handle(&state, &get("/metrics"));
        let json = Json::parse(&metrics.body).unwrap();
        let jobs = json.get("jobs").unwrap();
        assert_eq!(jobs.get("queue_capacity").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("queue_open").and_then(Json::as_u64), Some(1));
        // Cancelling the queued job frees the slot for the next submit.
        let del = Request {
            method: "DELETE".into(),
            path: "/jobs/1".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(handle(&state, &del).status, 200);
        assert_eq!(handle(&state, &post("/jobs", body)).status, 202);
    }

    #[test]
    fn job_lookup_and_cancel_errors() {
        let state = state();
        assert_eq!(handle(&state, &get("/jobs/1")).status, 404);
        assert_eq!(handle(&state, &get("/jobs/one")).status, 400);
        let del =
            Request { method: "DELETE".into(), path: "/jobs/9".into(), headers: vec![], body: vec![] };
        assert_eq!(handle(&state, &del).status, 404);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        let patch =
            Request { method: "PATCH".into(), path: "/jobs".into(), headers: vec![], body: vec![] };
        assert_eq!(handle(&state, &patch).status, 405);
    }

    #[test]
    fn metrics_shape_when_empty() {
        let state = state();
        let resp = handle(&state, &get("/metrics"));
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("jobs").and_then(|j| j.get("submitted")), Some(&Json::Num(0.0)));
        assert_eq!(body.get("store").and_then(|s| s.get("generations")), Some(&Json::Num(0.0)));
        let results = body.get("results").unwrap();
        assert_eq!(results.get("mean_eps"), Some(&Json::Null));
        assert_eq!(results.get("success_rate"), Some(&Json::Num(1.0)));
        let sharded = results.get("sharded").unwrap();
        assert_eq!(sharded.get("jobs"), Some(&Json::Num(0.0)));
        assert_eq!(sharded.get("inter_shard_messages"), Some(&Json::Num(0.0)));
    }

    #[test]
    fn metrics_aggregate_inter_shard_traffic() {
        // A sharded job executed in-process shows up in the /metrics
        // inter-shard aggregates.
        let state = state();
        let request = crate::jobs::JobRequest {
            platform: "pregel".into(),
            dataset: "G22".into(),
            algorithm: Algorithm::Bfs,
            mode: crate::jobs::JobMode::Measured,
            repetitions: 1,
            shards: 2,
            timeout_millis: None,
        };
        let token = graphalytics_core::fault::CancelToken::new();
        let result = state.execute(1, &request, &token, 0).unwrap();
        assert!(result.status.is_success(), "{:?}", result.status);
        state.results.insert(result);
        let resp = handle(&state, &get("/metrics"));
        let body = Json::parse(&resp.body).unwrap();
        let sharded = body.get("results").and_then(|r| r.get("sharded")).unwrap();
        assert_eq!(sharded.get("jobs"), Some(&Json::Num(1.0)));
        assert!(sharded.get("inter_shard_messages").and_then(Json::as_u64).unwrap() > 0);
        assert!(sharded.get("inter_shard_bytes").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn metrics_monitor_section_and_prometheus_format() {
        let state = state();
        state.metrics.histogram("job_seconds").observe_secs(0.25);
        state.metrics.counter("jobs_executed_total").inc();
        let resp = handle(&state, &get("/metrics"));
        let body = Json::parse(&resp.body).unwrap();
        let monitor = body.get("monitor").expect("monitor section");
        let utilization = monitor.get("utilization").unwrap();
        assert!(utilization.get("busy_fraction").is_some());
        assert!(utilization.get("per_worker_busy_secs").is_some());
        let histograms = monitor.get("histograms").unwrap();
        let Json::Arr(rows) = histograms else { panic!("histograms is an array") };
        let job_seconds = rows
            .iter()
            .find(|h| h.get("name").and_then(Json::as_str) == Some("job_seconds"))
            .expect("job_seconds histogram");
        assert_eq!(job_seconds.get("count"), Some(&Json::Num(1.0)));
        assert!(job_seconds.get("p95_secs").and_then(Json::as_f64).unwrap() > 0.0);

        let resp = handle(&state, &get("/metrics?format=prometheus"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        assert!(resp.body.contains("# TYPE jobs_executed_total counter"), "{}", resp.body);
        assert!(resp.body.contains("# TYPE job_seconds histogram"));
        assert!(resp.body.contains("job_seconds_count 1"));
        assert!(resp.body.contains("# TYPE pool_busy_fraction gauge"));
        assert!(resp.body.contains("pool_worker_0_busy_secs"));

        let resp = handle(&state, &get("/metrics?format=xml"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn archive_endpoint_serves_stored_archives() {
        let state = state();
        assert_eq!(handle(&state, &get("/jobs/1/archive")).status, 404);
        assert_eq!(handle(&state, &get("/jobs/one/archive")).status, 400);
        // A queued job exists but has no archive yet: 404 with the state.
        handle(
            &state,
            &post("/jobs", r#"{"platform":"native","dataset":"G22","algorithm":"bfs"}"#),
        );
        let resp = handle(&state, &get("/jobs/1/archive"));
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("queued"), "{}", resp.body);
        // Once an archive is filed under the id, it is served whole.
        let mut archiver = graphalytics_granula::Archiver::new("native", "bfs@G22");
        archiver.begin("ProcessGraph");
        archiver.end();
        state.store_archive(1, archiver.finish());
        let resp = handle(&state, &get("/jobs/1/archive"));
        assert_eq!(resp.status, 200);
        let archive =
            graphalytics_granula::PerformanceArchive::parse(&resp.body).expect("parses back");
        assert_eq!(archive.platform, "native");
        assert!(archive.root.find("ProcessGraph").is_some());
    }

    #[test]
    fn graphs_listing_shape() {
        let state = state();
        let resp = handle(&state, &get("/graphs"));
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("graphs"), Some(&Json::Arr(vec![])));
        assert!(body.get("scale_divisor").and_then(Json::as_u64).unwrap() > 0);
    }
}
