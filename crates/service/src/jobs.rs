//! The asynchronous job queue.
//!
//! A job is one `(platform, dataset, algorithm, mode)` benchmark request.
//! Submission is non-blocking: the queue assigns an id and a worker pool
//! (see `server`) executes jobs through the existing harness
//! [`Driver`](graphalytics_harness::Driver), recording into the shared
//! results database. Clients poll job state and can cancel while queued.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use graphalytics_core::Algorithm;
use graphalytics_harness::JobResult;

/// How the driver obtains counters for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobMode {
    /// Materialize (or reuse from the store) a proxy graph and execute
    /// for real, with output validation.
    #[default]
    Measured,
    /// Analytic counter estimation at the published dataset size.
    Analytic,
}

impl JobMode {
    pub fn as_str(self) -> &'static str {
        match self {
            JobMode::Measured => "measured",
            JobMode::Analytic => "analytic",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<JobMode> {
        match s {
            "measured" => Some(JobMode::Measured),
            "analytic" => Some(JobMode::Analytic),
            _ => None,
        }
    }
}

/// A validated job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Engine model name or paper analogue (`"spmv"`, `"GraphMat"`).
    pub platform: String,
    /// Registry dataset id or name (`"G22"`, `"graph500-22"`).
    pub dataset: String,
    pub algorithm: Algorithm,
    pub mode: JobMode,
    /// Execute-phase repetitions on the uploaded graph (the benchmark's
    /// mean-of-N; validated to `1..=MAX_REPETITIONS` at the API).
    pub repetitions: u32,
    /// Execution shards for measured runs (validated to
    /// `1..=MAX_SHARDS` at the API; platforms without a sharded run path
    /// report such jobs as unsupported).
    pub shards: u32,
}

/// Upper bound the API accepts for per-job repetitions.
pub const MAX_REPETITIONS: u32 = 100;

/// Upper bound the API accepts for per-job execution shards.
pub const MAX_SHARDS: u32 = 64;

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    /// The driver ran to completion; the benchmark-level verdict
    /// (completed / unsupported / oom / …) lives in the attached result.
    Completed,
    /// The request could not be executed at all.
    Failed(String),
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job as tracked by the queue.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    pub request: JobRequest,
    pub state: JobState,
    /// Present once the state is `Completed`.
    pub result: Option<JobResult>,
}

/// Why a cancellation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    NotFound,
    /// The job already left the queue; carries the state it was in.
    NotCancellable(&'static str),
}

/// Job counts by state, for the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
}

impl JobCounts {
    pub fn submitted(&self) -> u64 {
        self.queued + self.running + self.completed + self.failed + self.cancelled
    }
}

#[derive(Default)]
struct QueueInner {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
}

/// The thread-safe job queue.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    stopping: AtomicBool,
}

impl JobQueue {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a request and returns its job id.
    pub fn submit(&self, request: JobRequest) -> u64 {
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(id, JobRecord { id, request, state: JobState::Queued, result: None });
        inner.pending.push_back(id);
        drop(inner);
        self.ready.notify_one();
        id
    }

    /// A snapshot of one job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Snapshots of all jobs, in submission order.
    pub fn list(&self) -> Vec<JobRecord> {
        let inner = self.lock();
        let mut jobs: Vec<JobRecord> = inner.jobs.values().cloned().collect();
        jobs.sort_by_key(|j| j.id);
        jobs
    }

    /// Cancels a job that is still queued.
    pub fn cancel(&self, id: u64) -> Result<JobRecord, CancelError> {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id).ok_or(CancelError::NotFound)?;
        if record.state != JobState::Queued {
            return Err(CancelError::NotCancellable(record.state.as_str()));
        }
        record.state = JobState::Cancelled;
        let record = record.clone();
        // The id stays in `pending`; `next_job` skips cancelled entries.
        Ok(record)
    }

    /// Job counts by state.
    pub fn counts(&self) -> JobCounts {
        let inner = self.lock();
        let mut counts = JobCounts::default();
        for job in inner.jobs.values() {
            match job.state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Completed => counts.completed += 1,
                JobState::Failed(_) => counts.failed += 1,
                JobState::Cancelled => counts.cancelled += 1,
            }
        }
        counts
    }

    /// Blocks until a job is available (marking it `Running`) or the queue
    /// shuts down (`None`). Worker-pool entry point. After `shutdown` the
    /// backlog is *abandoned*, not drained: a daemon being stopped must
    /// not first execute hours of queued benchmarks.
    pub fn next_job(&self) -> Option<(u64, JobRequest)> {
        let mut inner = self.lock();
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return None;
            }
            while let Some(id) = inner.pending.pop_front() {
                if let Some(record) = inner.jobs.get_mut(&id) {
                    if record.state == JobState::Queued {
                        record.state = JobState::Running;
                        return Some((id, record.request.clone()));
                    }
                    // Cancelled while queued: skip.
                }
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records the outcome of a running job.
    pub fn finish(&self, id: u64, state: JobState, result: Option<JobResult>) {
        debug_assert!(state.is_terminal());
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.state = state;
            record.result = result;
        }
    }

    /// Wakes all workers and makes every subsequent `next_job` return
    /// `None`; still-queued jobs are never dispatched.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(alg: Algorithm) -> JobRequest {
        JobRequest {
            platform: "native".into(),
            dataset: "G22".into(),
            algorithm: alg,
            mode: JobMode::Measured,
            repetitions: 1,
            shards: 1,
        }
    }

    #[test]
    fn submit_assigns_sequential_ids() {
        let q = JobQueue::new();
        assert_eq!(q.submit(request(Algorithm::Bfs)), 1);
        assert_eq!(q.submit(request(Algorithm::Wcc)), 2);
        assert_eq!(q.counts().queued, 2);
        assert_eq!(q.list().len(), 2);
        assert_eq!(q.get(1).unwrap().state, JobState::Queued);
        assert!(q.get(99).is_none());
    }

    #[test]
    fn fifo_dispatch_and_finish() {
        let q = JobQueue::new();
        let a = q.submit(request(Algorithm::Bfs));
        let b = q.submit(request(Algorithm::Wcc));
        let (id1, req1) = q.next_job().unwrap();
        assert_eq!((id1, req1.algorithm), (a, Algorithm::Bfs));
        assert_eq!(q.get(a).unwrap().state, JobState::Running);
        q.finish(a, JobState::Completed, None);
        assert_eq!(q.get(a).unwrap().state, JobState::Completed);
        let (id2, _) = q.next_job().unwrap();
        assert_eq!(id2, b);
        q.finish(b, JobState::Failed("boom".into()), None);
        let counts = q.counts();
        assert_eq!((counts.completed, counts.failed, counts.submitted()), (1, 1, 2));
    }

    #[test]
    fn cancel_only_while_queued() {
        let q = JobQueue::new();
        let a = q.submit(request(Algorithm::Bfs));
        let b = q.submit(request(Algorithm::Wcc));
        // Cancel a queued job: it never dispatches.
        assert_eq!(q.cancel(b).map(|r| r.state).ok(), Some(JobState::Cancelled));
        assert_eq!(q.cancel(b).err(), Some(CancelError::NotCancellable("cancelled")));
        assert_eq!(q.cancel(42).err(), Some(CancelError::NotFound));
        let (id, _) = q.next_job().unwrap();
        assert_eq!(id, a);
        // Running jobs cannot be cancelled.
        assert_eq!(q.cancel(a).err(), Some(CancelError::NotCancellable("running")));
        // The cancelled job is skipped: the next dispatch is a later one.
        let c = q.submit(request(Algorithm::PageRank));
        let (id, _) = q.next_job().unwrap();
        assert_eq!(id, c, "cancelled job is never dispatched");
    }

    #[test]
    fn workers_block_until_submission() {
        let q = JobQueue::new();
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.next_job());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.submit(request(Algorithm::PageRank));
            let (id, req) = consumer.join().unwrap().unwrap();
            assert_eq!(id, 1);
            assert_eq!(req.algorithm, Algorithm::PageRank);
        });
    }

    #[test]
    fn shutdown_abandons_queued_backlog() {
        let q = JobQueue::new();
        q.submit(request(Algorithm::Bfs));
        q.submit(request(Algorithm::Wcc));
        q.shutdown();
        assert!(q.next_job().is_none(), "backlog must not be drained after shutdown");
        assert_eq!(q.counts().queued, 2, "abandoned jobs stay queued");
    }

    #[test]
    fn shutdown_releases_blocked_workers() {
        let q = JobQueue::new();
        std::thread::scope(|scope| {
            let w1 = scope.spawn(|| q.next_job());
            let w2 = scope.spawn(|| q.next_job());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.shutdown();
            assert!(w1.join().unwrap().is_none());
            assert!(w2.join().unwrap().is_none());
        });
    }

    #[test]
    fn mode_and_state_strings() {
        assert_eq!(JobMode::Measured.as_str(), "measured");
        assert_eq!(JobMode::from_str_opt("analytic"), Some(JobMode::Analytic));
        assert_eq!(JobMode::from_str_opt("nope"), None);
        assert!(JobState::Failed("x".into()).is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert_eq!(JobState::Queued.as_str(), "queued");
    }
}
