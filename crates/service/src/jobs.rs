//! The asynchronous job queue.
//!
//! A job is one `(platform, dataset, algorithm, mode)` benchmark request.
//! Submission is non-blocking: the queue assigns an id and a worker pool
//! (see `server`) executes jobs through the existing harness
//! [`Driver`](graphalytics_harness::Driver), recording into the shared
//! results database. Clients poll job state and can cancel while queued.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use graphalytics_core::fault::CancelToken;
use graphalytics_core::Algorithm;
use graphalytics_harness::JobResult;

/// How the driver obtains counters for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobMode {
    /// Materialize (or reuse from the store) a proxy graph and execute
    /// for real, with output validation.
    #[default]
    Measured,
    /// Analytic counter estimation at the published dataset size.
    Analytic,
}

impl JobMode {
    pub fn as_str(self) -> &'static str {
        match self {
            JobMode::Measured => "measured",
            JobMode::Analytic => "analytic",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<JobMode> {
        match s {
            "measured" => Some(JobMode::Measured),
            "analytic" => Some(JobMode::Analytic),
            _ => None,
        }
    }
}

/// A validated job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Engine model name or paper analogue (`"spmv"`, `"GraphMat"`).
    pub platform: String,
    /// Registry dataset id or name (`"G22"`, `"graph500-22"`).
    pub dataset: String,
    pub algorithm: Algorithm,
    pub mode: JobMode,
    /// Execute-phase repetitions on the uploaded graph (the benchmark's
    /// mean-of-N; validated to `1..=MAX_REPETITIONS` at the API).
    pub repetitions: u32,
    /// Execution shards for measured runs (validated to
    /// `1..=MAX_SHARDS` at the API; platforms without a sharded run path
    /// report such jobs as unsupported).
    pub shards: u32,
    /// Optional per-job deadline in milliseconds (from the submission's
    /// `"timeout_secs"`). The worker arms it on the job's cancel token;
    /// a run past the deadline terminates as `timed-out`.
    pub timeout_millis: Option<u64>,
}

/// Upper bound the API accepts for per-job repetitions.
pub const MAX_REPETITIONS: u32 = 100;

/// Upper bound the API accepts for per-job execution shards.
pub const MAX_SHARDS: u32 = 64;

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    /// The driver ran to completion; the benchmark-level verdict
    /// (completed / unsupported / oom / …) lives in the attached result.
    Completed,
    /// The request could not be executed at all.
    Failed(String),
    /// Cancelled: either while still queued, or — via the job's
    /// [`CancelToken`] — while running, in which case the driver aborted
    /// at the next superstep boundary.
    Cancelled,
    /// The job's deadline passed while running; the driver aborted at
    /// the next superstep boundary.
    TimedOut,
}

impl JobState {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
        }
    }

    /// True once the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job as tracked by the queue.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    pub request: JobRequest,
    pub state: JobState,
    /// Present once the state is `Completed`.
    pub result: Option<JobResult>,
    /// A cancel arrived while the job was running; the token is signalled
    /// and the job will terminate at its next checkpoint.
    pub cancel_requested: bool,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — structured backpressure; the
    /// API maps this to `429 Too Many Requests`.
    QueueFull { capacity: usize },
}

/// Why a cancellation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    NotFound,
    /// The job already left the queue; carries the state it was in.
    NotCancellable(&'static str),
}

/// Job counts by state, for the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub timed_out: u64,
}

impl JobCounts {
    pub fn submitted(&self) -> u64 {
        self.queued
            + self.running
            + self.completed
            + self.failed
            + self.cancelled
            + self.timed_out
    }
}

#[derive(Default)]
struct QueueInner {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    /// Cancel tokens of currently running jobs, so `cancel` can signal a
    /// worker mid-run. Inserted by `next_job`, removed by `finish`.
    tokens: HashMap<u64, CancelToken>,
}

/// The thread-safe job queue, bounded to `capacity` open
/// (queued + running) jobs.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    stopping: AtomicBool,
    capacity: usize,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::bounded(usize::MAX)
    }
}

impl JobQueue {
    /// An effectively unbounded queue (unit tests, ad-hoc embedding).
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue refusing submissions beyond `capacity` open jobs.
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::default(),
            ready: Condvar::new(),
            stopping: AtomicBool::new(false),
            capacity: capacity.max(1),
        }
    }

    /// The configured admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a request and returns its job id, or structured
    /// backpressure when the bounded queue is full (open = queued +
    /// running; terminal jobs never count against the bound).
    pub fn submit(&self, request: JobRequest) -> Result<u64, SubmitError> {
        let mut inner = self.lock();
        let open = inner
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .count();
        if open >= self.capacity {
            return Err(SubmitError::QueueFull { capacity: self.capacity });
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(
            id,
            JobRecord { id, request, state: JobState::Queued, result: None, cancel_requested: false },
        );
        inner.pending.push_back(id);
        drop(inner);
        self.ready.notify_one();
        Ok(id)
    }

    /// A snapshot of one job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Snapshots of all jobs, in submission order.
    pub fn list(&self) -> Vec<JobRecord> {
        let inner = self.lock();
        let mut jobs: Vec<JobRecord> = inner.jobs.values().cloned().collect();
        jobs.sort_by_key(|j| j.id);
        jobs
    }

    /// Cancels a queued or running job. Queued jobs flip to `Cancelled`
    /// immediately (they never dispatch). Running jobs have their
    /// [`CancelToken`] signalled — the worker observes it at the next
    /// superstep boundary and finishes the job as `Cancelled`; until then
    /// the returned record reports `running` with `cancel_requested`.
    /// Terminal jobs are [`CancelError::NotCancellable`].
    pub fn cancel(&self, id: u64) -> Result<JobRecord, CancelError> {
        let mut inner = self.lock();
        let record = inner.jobs.get_mut(&id).ok_or(CancelError::NotFound)?;
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
                let record = record.clone();
                // The id stays in `pending`; `next_job` skips cancelled
                // entries.
                Ok(record)
            }
            JobState::Running => {
                record.cancel_requested = true;
                let record = record.clone();
                if let Some(token) = inner.tokens.get(&id) {
                    token.cancel();
                }
                Ok(record)
            }
            _ => Err(CancelError::NotCancellable(record.state.as_str())),
        }
    }

    /// Job counts by state.
    pub fn counts(&self) -> JobCounts {
        let inner = self.lock();
        let mut counts = JobCounts::default();
        for job in inner.jobs.values() {
            match job.state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Completed => counts.completed += 1,
                JobState::Failed(_) => counts.failed += 1,
                JobState::Cancelled => counts.cancelled += 1,
                JobState::TimedOut => counts.timed_out += 1,
            }
        }
        counts
    }

    /// Blocks until a job is available (marking it `Running`) or the queue
    /// shuts down (`None`). Worker-pool entry point. After `shutdown` the
    /// backlog is *abandoned*, not drained: a daemon being stopped must
    /// not first execute hours of queued benchmarks.
    pub fn next_job(&self) -> Option<(u64, JobRequest, CancelToken)> {
        let mut inner = self.lock();
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return None;
            }
            while let Some(id) = inner.pending.pop_front() {
                if let Some(record) = inner.jobs.get_mut(&id) {
                    if record.state == JobState::Queued {
                        record.state = JobState::Running;
                        let request = record.request.clone();
                        let token = CancelToken::new();
                        inner.tokens.insert(id, token.clone());
                        return Some((id, request, token));
                    }
                    // Cancelled while queued: skip.
                }
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records the outcome of a running job.
    pub fn finish(&self, id: u64, state: JobState, result: Option<JobResult>) {
        debug_assert!(state.is_terminal());
        let mut inner = self.lock();
        inner.tokens.remove(&id);
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.state = state;
            record.result = result;
        }
    }

    /// Wakes all workers and makes every subsequent `next_job` return
    /// `None`; still-queued jobs are never dispatched.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(alg: Algorithm) -> JobRequest {
        JobRequest {
            platform: "native".into(),
            dataset: "G22".into(),
            algorithm: alg,
            mode: JobMode::Measured,
            repetitions: 1,
            shards: 1,
            timeout_millis: None,
        }
    }

    #[test]
    fn submit_assigns_sequential_ids() {
        let q = JobQueue::new();
        assert_eq!(q.submit(request(Algorithm::Bfs)), Ok(1));
        assert_eq!(q.submit(request(Algorithm::Wcc)), Ok(2));
        assert_eq!(q.counts().queued, 2);
        assert_eq!(q.list().len(), 2);
        assert_eq!(q.get(1).unwrap().state, JobState::Queued);
        assert!(q.get(99).is_none());
    }

    #[test]
    fn fifo_dispatch_and_finish() {
        let q = JobQueue::new();
        let a = q.submit(request(Algorithm::Bfs)).unwrap();
        let b = q.submit(request(Algorithm::Wcc)).unwrap();
        let (id1, req1, _) = q.next_job().unwrap();
        assert_eq!((id1, req1.algorithm), (a, Algorithm::Bfs));
        assert_eq!(q.get(a).unwrap().state, JobState::Running);
        q.finish(a, JobState::Completed, None);
        assert_eq!(q.get(a).unwrap().state, JobState::Completed);
        let (id2, _, _) = q.next_job().unwrap();
        assert_eq!(id2, b);
        q.finish(b, JobState::Failed("boom".into()), None);
        let counts = q.counts();
        assert_eq!((counts.completed, counts.failed, counts.submitted()), (1, 1, 2));
    }

    #[test]
    fn cancel_queued_and_running() {
        let q = JobQueue::new();
        let a = q.submit(request(Algorithm::Bfs)).unwrap();
        let b = q.submit(request(Algorithm::Wcc)).unwrap();
        // Cancel a queued job: it never dispatches.
        assert_eq!(q.cancel(b).map(|r| r.state).ok(), Some(JobState::Cancelled));
        assert_eq!(q.cancel(b).err(), Some(CancelError::NotCancellable("cancelled")));
        assert_eq!(q.cancel(42).err(), Some(CancelError::NotFound));
        let (id, _, token) = q.next_job().unwrap();
        assert_eq!(id, a);
        // Cancelling a running job signals its token; the record stays
        // `running` (with cancel_requested) until the worker observes it.
        assert!(!token.is_cancelled());
        let record = q.cancel(a).unwrap();
        assert_eq!(record.state, JobState::Running);
        assert!(record.cancel_requested);
        assert!(token.is_cancelled(), "running cancel must signal the token");
        // The worker observes the token and reports the terminal state.
        q.finish(a, JobState::Cancelled, None);
        assert_eq!(q.cancel(a).err(), Some(CancelError::NotCancellable("cancelled")));
        // The queued-cancelled job is skipped: the next dispatch is a
        // later one.
        let c = q.submit(request(Algorithm::PageRank)).unwrap();
        let (id, _, _) = q.next_job().unwrap();
        assert_eq!(id, c, "cancelled job is never dispatched");
    }

    #[test]
    fn bounded_queue_backpressure() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.submit(request(Algorithm::Bfs)).unwrap();
        q.submit(request(Algorithm::Wcc)).unwrap();
        assert_eq!(
            q.submit(request(Algorithm::PageRank)),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        // Dispatching does not free a slot (running still counts)...
        let (id, _, _) = q.next_job().unwrap();
        assert!(q.submit(request(Algorithm::PageRank)).is_err());
        // ...finishing does.
        q.finish(id, JobState::Completed, None);
        assert!(q.submit(request(Algorithm::PageRank)).is_ok());
    }

    #[test]
    fn workers_block_until_submission() {
        let q = JobQueue::new();
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.next_job());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.submit(request(Algorithm::PageRank)).unwrap();
            let (id, req, _) = consumer.join().unwrap().unwrap();
            assert_eq!(id, 1);
            assert_eq!(req.algorithm, Algorithm::PageRank);
        });
    }

    #[test]
    fn shutdown_abandons_queued_backlog() {
        let q = JobQueue::new();
        q.submit(request(Algorithm::Bfs)).unwrap();
        q.submit(request(Algorithm::Wcc)).unwrap();
        q.shutdown();
        assert!(q.next_job().is_none(), "backlog must not be drained after shutdown");
        assert_eq!(q.counts().queued, 2, "abandoned jobs stay queued");
    }

    #[test]
    fn shutdown_releases_blocked_workers() {
        let q = JobQueue::new();
        std::thread::scope(|scope| {
            let w1 = scope.spawn(|| q.next_job());
            let w2 = scope.spawn(|| q.next_job());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.shutdown();
            assert!(w1.join().unwrap().is_none());
            assert!(w2.join().unwrap().is_none());
        });
    }

    #[test]
    fn mode_and_state_strings() {
        assert_eq!(JobMode::Measured.as_str(), "measured");
        assert_eq!(JobMode::from_str_opt("analytic"), Some(JobMode::Analytic));
        assert_eq!(JobMode::from_str_opt("nope"), None);
        assert!(JobState::Failed("x".into()).is_terminal());
        assert!(JobState::TimedOut.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert_eq!(JobState::Queued.as_str(), "queued");
        assert_eq!(JobState::TimedOut.as_str(), "timed-out");
    }
}
