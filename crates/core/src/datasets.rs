//! The Graphalytics dataset registry (Tables 3 and 4 of the paper).
//!
//! Each entry records the paper-published size (`|V|`, `|E|`, scale, class)
//! plus *structural traits* — degree-distribution family, pseudo-diameter,
//! BFS reachability from the prescribed root, component count, clustering —
//! that drive two things downstream:
//!
//! 1. **proxy generation** — the real-world graphs of Table 3 are not
//!    redistributable, so the harness regenerates structure-matched
//!    synthetic stand-ins from the [`ProxyRecipe`] at a configurable
//!    fraction of the published size (see DESIGN.md, substitution table);
//! 2. **analytic work estimation** — paper-scale experiments estimate
//!    algorithm work (edges scanned, supersteps, message volume) from these
//!    traits instead of executing billion-edge graphs.
//!
//! Trait values for real graphs are estimates assembled from the paper
//! (e.g. Section 4.1 notes BFS on R2 covers ~10% of vertices) and from the
//! public SNAP/KONECT descriptions of the original datasets; they are
//! documented per-dataset below and in EXPERIMENTS.md.

use crate::params::SourceSelection;
use crate::scale::{class_of, scale_of, SizeClass};

/// Degree-distribution families used by the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeDistribution {
    /// Kronecker/R-MAT power law (Graph500): extreme hubs, many low-degree
    /// vertices.
    PowerLaw,
    /// Facebook-like social degree distribution (Datagen): skewed but
    /// bounded, no extreme hubs.
    Social,
    /// Dense, comparatively uniform (e.g. the gaming match graphs).
    NearUniform,
}

/// Structural traits of a dataset, as used by proxies and by the analytic
/// performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphTraits {
    pub degree_distribution: DegreeDistribution,
    /// BFS pseudo-diameter from the prescribed root.
    pub pseudo_diameter: u32,
    /// Fraction of vertices the benchmark BFS reaches from its root.
    pub reachable_fraction: f64,
    /// Approximate number of weakly connected components, as a fraction of
    /// |V| (0.0 = single giant component).
    pub component_fraction: f64,
    /// Average local clustering coefficient.
    pub avg_clustering: f64,
    /// Max-degree / mean-degree skew proxy (drives replication factors and
    /// LCC cost in the models).
    pub degree_skew: f64,
}

/// Recipe for regenerating a structure-matched synthetic stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProxyRecipe {
    /// Graph500 Kronecker generator at the given scale/edge factor.
    Graph500 { scale: u32, edge_factor: u32 },
    /// R-MAT with explicit seed probabilities (used for real-graph proxies
    /// whose skew differs from the Graph500 defaults).
    Rmat { a: f64, b: f64, c: f64 },
    /// LDBC Datagen social network with a target clustering coefficient
    /// (`None` = Datagen's natural clustering).
    Datagen { target_cc: Option<f64> },
}

/// One dataset of the benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Table identifier, e.g. `R1(2XS)` → `"R1"`, `D300(L)` → `"D300"`.
    pub id: &'static str,
    /// Dataset name as in the paper, e.g. `wiki-talk`, `datagen-300`.
    pub name: &'static str,
    /// Published vertex count.
    pub vertices: u64,
    /// Published edge count.
    pub edges: u64,
    pub directed: bool,
    pub weighted: bool,
    /// Application domain (Table 3) or `Synthetic`.
    pub domain: Domain,
    pub traits_: GraphTraits,
    pub recipe: ProxyRecipe,
    /// Root selection for BFS/SSSP.
    pub source: SourceSelection,
    /// PageRank iterations prescribed for this dataset.
    pub pagerank_iterations: u32,
    /// CDLP iterations prescribed for this dataset.
    pub cdlp_iterations: u32,
}

/// Application domain of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    Knowledge,
    Gaming,
    Social,
    Synthetic,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Domain::Knowledge => "Knowledge",
            Domain::Gaming => "Gaming",
            Domain::Social => "Social",
            Domain::Synthetic => "Synthetic",
        };
        f.write_str(s)
    }
}

impl DatasetSpec {
    /// Benchmark scale, `log10(|V| + |E|)` rounded to one decimal.
    pub fn scale(&self) -> f64 {
        scale_of(self.vertices, self.edges)
    }

    /// T-shirt size class.
    pub fn class(&self) -> SizeClass {
        class_of(self.vertices, self.edges)
    }

    /// `id(CLASS)` display form used in the paper, e.g. `R4(S)`.
    pub fn display_id(&self) -> String {
        format!("{}({})", self.id, self.class())
    }

    /// True when this is one of the real-world datasets (Table 3).
    pub fn is_real(&self) -> bool {
        self.domain != Domain::Synthetic
    }

    /// Mean degree `|E| / |V|` of the published sizes.
    pub fn mean_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }
}

macro_rules! traits_ {
    ($dist:ident, diam: $d:expr, reach: $r:expr, comp: $c:expr, cc: $cc:expr, skew: $s:expr) => {
        GraphTraits {
            degree_distribution: DegreeDistribution::$dist,
            pseudo_diameter: $d,
            reachable_fraction: $r,
            component_fraction: $c,
            avg_clustering: $cc,
            degree_skew: $s,
        }
    };
}

/// The six real-world datasets of Table 3.
///
/// Trait notes: R2's 10% BFS coverage comes from Section 4.1 of the paper
/// (it explains OpenG's queue-based BFS win); R1/R3 are weakly connected
/// sparse knowledge graphs; R4 is a dense match graph; R5/R6 are
/// billion-edge social graphs with a giant component.
pub const REAL_DATASETS: [DatasetSpec; 6] = [
    DatasetSpec {
        id: "R1",
        name: "wiki-talk",
        vertices: 2_390_000,
        edges: 5_020_000,
        directed: true,
        weighted: false,
        domain: Domain::Knowledge,
        traits_: traits_!(PowerLaw, diam: 9, reach: 0.10, comp: 0.40, cc: 0.05, skew: 2.4e4),
        recipe: ProxyRecipe::Rmat { a: 0.62, b: 0.19, c: 0.19 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "R2",
        name: "kgs",
        vertices: 830_000,
        edges: 17_900_000,
        directed: false,
        weighted: false,
        domain: Domain::Gaming,
        traits_: traits_!(NearUniform, diam: 8, reach: 0.10, comp: 0.55, cc: 0.25, skew: 4.0e2),
        recipe: ProxyRecipe::Rmat { a: 0.45, b: 0.22, c: 0.22 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "R3",
        name: "cit-patents",
        vertices: 3_770_000,
        edges: 16_500_000,
        directed: true,
        weighted: false,
        domain: Domain::Knowledge,
        traits_: traits_!(NearUniform, diam: 22, reach: 0.05, comp: 0.01, cc: 0.08, skew: 1.6e2),
        recipe: ProxyRecipe::Rmat { a: 0.40, b: 0.25, c: 0.25 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "R4",
        name: "dota-league",
        vertices: 610_000,
        edges: 50_900_000,
        directed: false,
        weighted: true,
        domain: Domain::Gaming,
        traits_: traits_!(NearUniform, diam: 4, reach: 1.0, comp: 0.0, cc: 0.45, skew: 6.0e1),
        recipe: ProxyRecipe::Rmat { a: 0.35, b: 0.25, c: 0.25 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "R5",
        name: "com-friendster",
        vertices: 65_600_000,
        edges: 1_810_000_000,
        directed: false,
        weighted: false,
        domain: Domain::Social,
        traits_: traits_!(Social, diam: 21, reach: 0.99, comp: 0.0, cc: 0.16, skew: 1.9e2),
        recipe: ProxyRecipe::Datagen { target_cc: None },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "R6",
        name: "twitter_mpi",
        vertices: 52_600_000,
        edges: 1_970_000_000,
        directed: true,
        weighted: false,
        domain: Domain::Social,
        traits_: traits_!(PowerLaw, diam: 15, reach: 0.85, comp: 0.02, cc: 0.07, skew: 8.0e4),
        recipe: ProxyRecipe::Rmat { a: 0.52, b: 0.23, c: 0.19 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
];

/// The ten synthetic datasets of Table 4 (five Datagen, five Graph500).
pub const SYNTHETIC_DATASETS: [DatasetSpec; 10] = [
    DatasetSpec {
        id: "D100",
        name: "datagen-100",
        vertices: 1_670_000,
        edges: 102_000_000,
        directed: false,
        weighted: true,
        domain: Domain::Synthetic,
        traits_: traits_!(Social, diam: 8, reach: 1.0, comp: 0.0, cc: 0.10, skew: 2.0e1),
        recipe: ProxyRecipe::Datagen { target_cc: None },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "D100'",
        name: "datagen-100-cc0.05",
        vertices: 1_670_000,
        edges: 103_000_000,
        directed: false,
        weighted: true,
        domain: Domain::Synthetic,
        traits_: traits_!(Social, diam: 8, reach: 1.0, comp: 0.0, cc: 0.05, skew: 2.0e1),
        recipe: ProxyRecipe::Datagen { target_cc: Some(0.05) },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "D100\"",
        name: "datagen-100-cc0.15",
        vertices: 1_670_000,
        edges: 103_000_000,
        directed: false,
        weighted: true,
        domain: Domain::Synthetic,
        traits_: traits_!(Social, diam: 8, reach: 1.0, comp: 0.0, cc: 0.15, skew: 2.0e1),
        recipe: ProxyRecipe::Datagen { target_cc: Some(0.15) },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "D300",
        name: "datagen-300",
        vertices: 4_350_000,
        edges: 304_000_000,
        directed: false,
        weighted: true,
        domain: Domain::Synthetic,
        traits_: traits_!(Social, diam: 9, reach: 1.0, comp: 0.0, cc: 0.10, skew: 2.0e1),
        recipe: ProxyRecipe::Datagen { target_cc: None },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "D1000",
        name: "datagen-1000",
        vertices: 12_800_000,
        edges: 1_010_000_000,
        directed: false,
        weighted: true,
        domain: Domain::Synthetic,
        traits_: traits_!(Social, diam: 9, reach: 1.0, comp: 0.0, cc: 0.10, skew: 2.0e1),
        recipe: ProxyRecipe::Datagen { target_cc: None },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "G22",
        name: "graph500-22",
        vertices: 2_400_000,
        edges: 64_200_000,
        directed: false,
        weighted: false,
        domain: Domain::Synthetic,
        traits_: traits_!(PowerLaw, diam: 7, reach: 0.98, comp: 0.02, cc: 0.18, skew: 4.0e3),
        recipe: ProxyRecipe::Graph500 { scale: 22, edge_factor: 16 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "G23",
        name: "graph500-23",
        vertices: 4_610_000,
        edges: 129_000_000,
        directed: false,
        weighted: false,
        domain: Domain::Synthetic,
        traits_: traits_!(PowerLaw, diam: 7, reach: 0.98, comp: 0.02, cc: 0.16, skew: 6.5e3),
        recipe: ProxyRecipe::Graph500 { scale: 23, edge_factor: 16 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "G24",
        name: "graph500-24",
        vertices: 8_870_000,
        edges: 260_000_000,
        directed: false,
        weighted: false,
        domain: Domain::Synthetic,
        traits_: traits_!(PowerLaw, diam: 7, reach: 0.98, comp: 0.02, cc: 0.15, skew: 1.1e4),
        recipe: ProxyRecipe::Graph500 { scale: 24, edge_factor: 16 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "G25",
        name: "graph500-25",
        vertices: 17_100_000,
        edges: 524_000_000,
        directed: false,
        weighted: false,
        domain: Domain::Synthetic,
        traits_: traits_!(PowerLaw, diam: 8, reach: 0.98, comp: 0.02, cc: 0.13, skew: 1.8e4),
        recipe: ProxyRecipe::Graph500 { scale: 25, edge_factor: 16 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
    DatasetSpec {
        id: "G26",
        name: "graph500-26",
        vertices: 32_800_000,
        edges: 1_050_000_000,
        directed: false,
        weighted: false,
        domain: Domain::Synthetic,
        traits_: traits_!(PowerLaw, diam: 8, reach: 0.98, comp: 0.02, cc: 0.12, skew: 3.0e4),
        recipe: ProxyRecipe::Graph500 { scale: 26, edge_factor: 16 },
        source: SourceSelection::MaxOutDegree,
        pagerank_iterations: 10,
        cdlp_iterations: 10,
    },
];

/// All sixteen datasets, real first, in table order.
pub fn all_datasets() -> Vec<&'static DatasetSpec> {
    REAL_DATASETS.iter().chain(SYNTHETIC_DATASETS.iter()).collect()
}

/// Looks a dataset up by id (`"R4"`) or by name (`"dota-league"`).
pub fn dataset(key: &str) -> Option<&'static DatasetSpec> {
    all_datasets().into_iter().find(|d| d.id == key || d.name == key)
}

/// Datasets with scale class at most `max`, in ascending scale order —
/// the "all datasets up to class L" selection of the baseline experiments.
pub fn datasets_up_to(max: SizeClass) -> Vec<&'static DatasetSpec> {
    let mut v: Vec<_> = all_datasets().into_iter().filter(|d| d.class() <= max).collect();
    v.sort_by(|a, b| a.scale().total_cmp(&b.scale()).then(a.id.cmp(b.id)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_tables() {
        // Spot checks from Table 3.
        let r1 = dataset("R1").unwrap();
        assert_eq!(r1.scale(), 6.9);
        assert_eq!(r1.class(), SizeClass::Xxs);
        assert_eq!(r1.display_id(), "R1(2XS)");
        let r4 = dataset("dota-league").unwrap();
        assert_eq!(r4.scale(), 7.7);
        assert_eq!(r4.class(), SizeClass::S);
        assert!(r4.weighted);
        let r5 = dataset("R5").unwrap();
        assert_eq!(r5.scale(), 9.3);
        assert_eq!(r5.class(), SizeClass::Xl);
        // Table 4.
        let d300 = dataset("D300").unwrap();
        assert_eq!(d300.scale(), 8.5);
        assert_eq!(d300.class(), SizeClass::L);
        let g22 = dataset("G22").unwrap();
        assert_eq!(g22.scale(), 7.8);
        assert_eq!(g22.class(), SizeClass::S);
        let d1000 = dataset("D1000").unwrap();
        assert_eq!(d1000.class(), SizeClass::Xl);
        let g26 = dataset("G26").unwrap();
        assert_eq!(g26.scale(), 9.0);
    }

    #[test]
    fn sixteen_unique_datasets() {
        let all = all_datasets();
        assert_eq!(all.len(), 16);
        let mut ids: Vec<_> = all.iter().map(|d| d.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn up_to_class_l_excludes_xl() {
        let sel = datasets_up_to(SizeClass::L);
        assert!(sel.iter().all(|d| d.class() <= SizeClass::L));
        assert!(sel.iter().any(|d| d.id == "D300"));
        assert!(!sel.iter().any(|d| d.id == "D1000"));
        assert!(!sel.iter().any(|d| d.id == "R5"));
        // Ascending scale order.
        for w in sel.windows(2) {
            assert!(w[0].scale() <= w[1].scale());
        }
    }

    #[test]
    fn lookup_by_both_keys() {
        assert!(dataset("G25").is_some());
        assert!(dataset("graph500-25").is_some());
        assert!(dataset("nope").is_none());
    }

    #[test]
    fn traits_are_sane() {
        for d in all_datasets() {
            let t = d.traits_;
            assert!(t.reachable_fraction > 0.0 && t.reachable_fraction <= 1.0, "{}", d.id);
            assert!(t.avg_clustering >= 0.0 && t.avg_clustering <= 1.0, "{}", d.id);
            assert!(t.pseudo_diameter >= 1, "{}", d.id);
            assert!(t.degree_skew >= 1.0, "{}", d.id);
            assert!(d.mean_degree() > 1.0, "{}", d.id);
        }
    }
}
