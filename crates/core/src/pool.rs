//! The shared execution runtime: a persistent, deterministic worker pool.
//!
//! Everything parallel in the workspace — the CSR build, edge-file
//! parsing, and all six platform engines — runs through a [`WorkerPool`].
//! The pool spawns its OS threads **once** and parks them between calls,
//! so a superstep costs a condvar wake-up instead of `threads` fresh
//! `clone(2)` syscalls. Both "Experimental Analysis of Distributed Graph
//! Systems" (Ammar & Özsu) and "Revisiting Graph Analytics Benchmark"
//! call out per-iteration runtime overhead as a distortion in
//! cross-platform comparisons; a persistent pool removes it here.
//!
//! Determinism contract:
//!
//! * work over `0..n` is split by [`split_ranges`] into **contiguous
//!   static ranges** — no work stealing, no racy chunk hand-out;
//! * task results are returned **in range order**, so callers that merge
//!   worker outputs sequentially observe a thread-count-independent
//!   order;
//! * the partitioning depends only on `(threads, n)`, never on timing.
//!
//! Combined with per-vertex aggregation in the algorithms this makes
//! engine outputs bit-identical across thread counts (asserted by the
//! cross-engine equivalence tests).
//!
//! Three backends share the same `run` semantics:
//!
//! * **inline** (`threads == 1`): the task runs on the caller, no
//!   synchronization at all;
//! * **persistent** (the default for `threads > 1`): parked workers,
//!   woken per call; the caller executes range 0 itself;
//! * **spawning** ([`WorkerPool::spawning`]): fresh scoped threads on
//!   every call — the pre-pool behaviour, kept only as a benchmarking
//!   baseline (see `repro_bench`) and for the legacy
//!   `run_partitioned` shim in the engines crate.
//!
//! Nested `run` calls (a pool task calling back into the same or another
//! pool) execute inline on the calling worker instead of deadlocking on
//! the dispatch lock; the ranges are identical, so results are too.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Splits `0..n` into contiguous ranges for `threads` workers, never
/// more workers than elements (but at least one range, possibly empty).
pub fn split_ranges(threads: u32, n: usize) -> Vec<Range<usize>> {
    let workers = (threads.max(1) as usize).min(n.max(1));
    let chunk = n.div_ceil(workers);
    (0..workers).map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n)).collect()
}

/// Shared mutable pointer for disjoint-range parallel access.
///
/// Pool tasks own non-overlapping index ranges, so per-index mutation
/// through this wrapper is race-free. Used by the parallel CSR build and
/// the Pregel engine's per-vertex state updates.
pub struct SharedSlice<T>(*mut T);

unsafe impl<T: Send> Sync for SharedSlice<T> {}
unsafe impl<T: Send> Send for SharedSlice<T> {}

// Copying the base pointer shares access; every use site still carries
// the disjoint-range proof obligation of `at`/`slice_mut`. Needed so the
// sharded engine runtimes can hand one slice to several shard drivers.
impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wraps a base pointer (typically `vec.as_mut_ptr()`).
    pub fn new(ptr: *mut T) -> Self {
        SharedSlice(ptr)
    }

    /// # Safety
    /// Caller guarantees index `i` is in bounds and accessed by at most
    /// one thread at a time (disjoint ranges), which is what makes
    /// handing out `&mut` through a shared reference sound here.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn at(&self, i: usize) -> &mut T {
        unsafe { &mut *self.0.add(i) }
    }

    /// # Safety
    /// As [`SharedSlice::at`], for the whole subslice
    /// `offset..offset + len`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

/// Usage counters, exposed through the service `/metrics` endpoint so
/// the shared-pool path is observable (and testable) end to end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `run` calls (including inline ones).
    pub runs: u64,
    /// `run` calls that dispatched work to parked workers.
    pub dispatches: u64,
}

/// Utilization telemetry for the Granula monitor: how busy each worker
/// has been since the pool started and how long parked workers took to
/// wake after a dispatch. Collected with relaxed atomics on the
/// coarse per-`run` path (two clock reads per worker per call), and
/// only after [`WorkerPool::enable_telemetry`] — clock reads on every
/// `run` measurably tax upload-style workloads that issue many short
/// pool calls, so the default is a single relaxed flag load and no
/// timing. Strictly data-plane passive either way.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolUtilization {
    /// Busy seconds per worker slot; slot 0 is the calling thread (it
    /// executes range 0 of every dispatch and all inline runs).
    pub per_worker_busy_secs: Vec<f64>,
    /// Sum of `per_worker_busy_secs`.
    pub busy_secs: f64,
    /// Total time parked workers spent between a job being posted and
    /// picking it up.
    pub dispatch_wait_secs: f64,
    /// Worker wake-ups contributing to `dispatch_wait_secs`.
    pub dispatch_wakeups: u64,
    /// Seconds since the pool was constructed.
    pub uptime_secs: f64,
}

impl PoolUtilization {
    /// Mean busy fraction across all worker slots over the pool's
    /// lifetime, in `[0, 1]`.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self.uptime_secs * self.per_worker_busy_secs.len() as f64;
        if capacity > 0.0 {
            (self.busy_secs / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Mean wake latency per dispatch wake-up, if any happened.
    pub fn mean_dispatch_wait_secs(&self) -> Option<f64> {
        if self.dispatch_wakeups == 0 {
            None
        } else {
            Some(self.dispatch_wait_secs / self.dispatch_wakeups as f64)
        }
    }
}

/// Shared telemetry accumulators (see [`PoolUtilization`]).
#[derive(Debug)]
struct PoolTelemetry {
    enabled: AtomicBool,
    busy_nanos: Vec<AtomicU64>,
    dispatch_wait_nanos: AtomicU64,
    dispatch_wakeups: AtomicU64,
}

impl PoolTelemetry {
    fn new(threads: u32) -> Arc<PoolTelemetry> {
        Arc::new(PoolTelemetry {
            enabled: AtomicBool::new(false),
            busy_nanos: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            dispatch_wait_nanos: AtomicU64::new(0),
            dispatch_wakeups: AtomicU64::new(0),
        })
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start of a busy interval, if timing is on.
    #[inline]
    fn begin(&self) -> Option<Instant> {
        self.enabled().then(Instant::now)
    }

    fn add_busy(&self, worker: usize, started: Option<Instant>) {
        if let Some(t) = started {
            self.busy_nanos[worker].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

thread_local! {
    /// Set while this thread is executing a pool task; makes nested
    /// `run` calls execute inline instead of deadlocking.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// One dispatched job: a lifetime-erased task plus the number of
/// participating workers this round.
struct Job {
    /// Erased `&call` from `Persistent::dispatch`; valid until the
    /// dispatcher observes `remaining == 0` and clears the job.
    task: &'static (dyn Fn(usize) + Sync),
    workers: usize,
    /// When the job was posted (telemetry on only); workers measure
    /// their wake latency against this for
    /// [`PoolUtilization::dispatch_wait_secs`].
    posted_at: Option<Instant>,
}

struct State {
    job: Option<Job>,
    /// Incremented per dispatched job; workers use it to detect new work.
    epoch: u64,
    /// Participating workers (excluding the caller) still running.
    remaining: usize,
    /// First worker panic of the current job, rethrown by the caller.
    panicked: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Persistent {
    shared: Arc<Shared>,
    /// Serializes whole `run` calls: concurrent callers (e.g. service
    /// jobs sharing one pool) queue here instead of oversubscribing.
    dispatch: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

enum Backend {
    Inline,
    Spawning,
    Persistent(Persistent),
}

/// A deterministic worker pool (see the module docs for the contract).
pub struct WorkerPool {
    threads: u32,
    backend: Backend,
    runs: AtomicU64,
    dispatches: AtomicU64,
    telemetry: Arc<PoolTelemetry>,
    started: Instant,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match self.backend {
            Backend::Inline => "inline",
            Backend::Spawning => "spawning",
            Backend::Persistent(_) => "persistent",
        };
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("backend", &backend)
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers. `threads <= 1` builds the inline
    /// (sequential) pool; otherwise `threads - 1` OS threads are spawned
    /// and parked — the calling thread itself executes range 0 of every
    /// dispatch.
    pub fn new(threads: u32) -> WorkerPool {
        let threads = threads.max(1);
        if threads == 1 {
            return WorkerPool::inline();
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let telemetry = PoolTelemetry::new(threads);
        let handles = (1..threads as usize)
            .map(|w| {
                let shared = shared.clone();
                let telemetry = telemetry.clone();
                std::thread::Builder::new()
                    .name(format!("galy-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w, &telemetry))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            threads,
            backend: Backend::Persistent(Persistent {
                shared,
                dispatch: Mutex::new(()),
                handles,
            }),
            runs: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            telemetry,
            started: Instant::now(),
        }
    }

    /// The sequential pool: every `run` executes inline with a single
    /// range. Spawns nothing; construction is free.
    pub fn inline() -> WorkerPool {
        WorkerPool {
            threads: 1,
            backend: Backend::Inline,
            runs: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            telemetry: PoolTelemetry::new(1),
            started: Instant::now(),
        }
    }

    /// The pre-pool baseline: spawns fresh scoped threads on **every**
    /// `run` call. Identical results and partitioning to [`WorkerPool::new`];
    /// kept so `repro_bench` can quantify what persistence buys.
    pub fn spawning(threads: u32) -> WorkerPool {
        let threads = threads.max(1);
        WorkerPool {
            threads,
            backend: Backend::Spawning,
            runs: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            telemetry: PoolTelemetry::new(threads),
            started: Instant::now(),
        }
    }

    /// The process-wide shared pool, sized from available parallelism
    /// (capped at 8). [`Default`]-constructed harness drivers use this so
    /// ad-hoc drivers never spawn private pools.
    pub fn shared() -> Arc<WorkerPool> {
        static SHARED: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        SHARED.get_or_init(|| Arc::new(WorkerPool::new(default_threads()))).clone()
    }

    /// Worker count (including the calling thread).
    #[inline]
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The contiguous static partition of `0..n` this pool uses; exposed
    /// so multi-pass builders can pre-compute per-chunk state.
    pub fn split(&self, n: usize) -> Vec<Range<usize>> {
        split_ranges(self.threads, n)
    }

    /// Usage counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            runs: self.runs.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
        }
    }

    /// Turns on per-`run` clock sampling for [`WorkerPool::utilization`].
    /// Off by default: the service daemon and monitored harness runs
    /// enable it; pure benchmarking pools skip the clock reads entirely.
    pub fn enable_telemetry(&self) {
        self.telemetry.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether [`WorkerPool::enable_telemetry`] has been called.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Utilization telemetry since construction (per-worker busy time,
    /// dispatch wake latency). Zeros unless
    /// [`WorkerPool::enable_telemetry`] was called; see
    /// [`PoolUtilization`].
    pub fn utilization(&self) -> PoolUtilization {
        let per_worker_busy_secs: Vec<f64> = self
            .telemetry
            .busy_nanos
            .iter()
            .map(|n| n.load(Ordering::Relaxed) as f64 / 1e9)
            .collect();
        let busy_secs = per_worker_busy_secs.iter().sum();
        PoolUtilization {
            per_worker_busy_secs,
            busy_secs,
            dispatch_wait_secs: self.telemetry.dispatch_wait_nanos.load(Ordering::Relaxed)
                as f64
                / 1e9,
            dispatch_wakeups: self.telemetry.dispatch_wakeups.load(Ordering::Relaxed),
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Splits `0..n` into up to `threads` contiguous ranges and runs
    /// `task` on each concurrently; returns results in range order.
    ///
    /// `task` receives `(worker_index, range)`. With one range (one
    /// thread or tiny `n`) — or when called from within a pool task —
    /// everything runs inline on the caller.
    ///
    /// A panicking task poisons nothing: remaining workers finish their
    /// ranges, then the first panic is resumed on the caller.
    pub fn run<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        self.runs.fetch_add(1, Ordering::Relaxed);
        let ranges = split_ranges(self.threads, n);
        let nested = IN_POOL_TASK.with(|f| f.get());
        if ranges.len() == 1 || matches!(self.backend, Backend::Inline) || nested {
            let t = self.telemetry.begin();
            let out = ranges.into_iter().enumerate().map(|(w, r)| task(w, r)).collect();
            self.telemetry.add_busy(0, t);
            return out;
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Inline => unreachable!("handled above"),
            Backend::Spawning => run_spawning(ranges, &task),
            Backend::Persistent(p) => p.dispatch(ranges, &task, &self.telemetry),
        }
    }
}

/// Default pool width: available parallelism, capped at 8 (benchmark
/// kernels stop scaling well before wide SMT counts).
pub fn default_threads() -> u32 {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(8) as u32)
}

/// The old `run_partitioned` behaviour: one fresh scoped thread per range.
fn run_spawning<R, F>(ranges: Vec<Range<usize>>, task: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..ranges.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((w, slot), range) in slots.iter_mut().enumerate().zip(ranges) {
            scope.spawn(move || {
                IN_POOL_TASK.with(|f| f.set(true));
                *slot = Some(task(w, range));
                IN_POOL_TASK.with(|f| f.set(false));
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every worker ran")).collect()
}

impl Persistent {
    fn dispatch<R, F>(
        &self,
        ranges: Vec<Range<usize>>,
        task: &F,
        telemetry: &PoolTelemetry,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let workers = ranges.len();
        let mut slots: Vec<Option<R>> = (0..workers).map(|_| None).collect();
        let slot_base = SharedSlice::new(slots.as_mut_ptr());
        let ranges_ref = &ranges;
        let call = move |w: usize| {
            let value = task(w, ranges_ref[w].clone());
            // SAFETY: worker w is the only writer of slot w.
            unsafe { *slot_base.at(w) = Some(value) };
        };

        let guard = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut state = self.shared.lock();
            // SAFETY: the erased borrow of `call` is only dereferenced by
            // workers counted in `remaining`; we wait for `remaining == 0`
            // and clear the job before `call` goes out of scope.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    &call,
                )
            };
            state.job = Some(Job { task: erased, workers, posted_at: telemetry.begin() });
            state.epoch += 1;
            state.remaining = workers - 1; // caller runs range 0 itself
            state.panicked = None;
        }
        self.shared.work_ready.notify_all();

        IN_POOL_TASK.with(|f| f.set(true));
        let caller_t = telemetry.begin();
        let caller_result = catch_unwind(AssertUnwindSafe(|| call(0)));
        telemetry.add_busy(0, caller_t);
        IN_POOL_TASK.with(|f| f.set(false));

        let worker_panic = {
            let mut state = self.shared.lock();
            while state.remaining > 0 {
                state = self.shared.work_done.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            state.job = None;
            state.panicked.take()
        };
        drop(guard);

        if let Err(panic) = caller_result {
            resume_unwind(panic);
        }
        if let Some(panic) = worker_panic {
            resume_unwind(panic);
        }
        slots.into_iter().map(|s| s.expect("every worker ran")).collect()
    }
}

fn worker_loop(shared: &Shared, w: usize, telemetry: &PoolTelemetry) {
    IN_POOL_TASK.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    match &state.job {
                        // Participate only when this round has a range
                        // for us; narrower jobs use the low indices.
                        Some(job) if w < job.workers => {
                            if let Some(posted) = job.posted_at {
                                let wait = posted.elapsed().as_nanos() as u64;
                                telemetry
                                    .dispatch_wait_nanos
                                    .fetch_add(wait, Ordering::Relaxed);
                                telemetry.dispatch_wakeups.fetch_add(1, Ordering::Relaxed);
                            }
                            break job.task;
                        }
                        _ => {}
                    }
                }
                state = shared.work_ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let busy_t = telemetry.begin();
        let result = catch_unwind(AssertUnwindSafe(|| task(w)));
        telemetry.add_busy(w, busy_t);
        let mut state = shared.lock();
        if let Err(panic) = result {
            state.panicked.get_or_insert(panic);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.work_done.notify_one();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Backend::Persistent(p) = &mut self.backend {
            p.shared.lock().shutdown = true;
            p.shared.work_ready.notify_all();
            for handle in p.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Sorts `data` by a total key on the pool: chunks sort in parallel, a
/// k-way merge (ties resolved by chunk order, i.e. original position)
/// reassembles them. Identical output for every thread count as long as
/// `key` is a total order.
pub fn par_sort_by_key<T, K, F>(pool: &WorkerPool, data: &mut Vec<T>, key: F)
where
    T: Copy + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let ranges = pool.split(n);
    if ranges.len() <= 1 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }
    let mut src = std::mem::take(data);
    {
        let base = SharedSlice::new(src.as_mut_ptr());
        pool.run(n, |_, range| {
            // SAFETY: chunk ranges are disjoint.
            let chunk = unsafe { base.slice_mut(range.start, range.len()) };
            chunk.sort_unstable_by_key(|a| key(a));
        });
    }
    let mut heads: Vec<usize> = ranges.iter().map(|r| r.start).collect();
    // One cached key per chunk head: the scan below compares cached keys
    // instead of re-evaluating `key` ~2(k-1) times per output element.
    let mut head_keys: Vec<Option<K>> = ranges
        .iter()
        .map(|r| if r.start < r.end { Some(key(&src[r.start])) } else { None })
        .collect();
    let mut merged: Vec<T> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for c in 0..ranges.len() {
            let Some(ck) = &head_keys[c] else { continue };
            best = match best {
                Some(b) if head_keys[b].as_ref().is_some_and(|bk| bk <= ck) => Some(b),
                _ => Some(c),
            };
        }
        let b = best.expect("merge consumes exactly n elements");
        merged.push(src[heads[b]]);
        heads[b] += 1;
        head_keys[b] =
            if heads[b] < ranges[b].end { Some(key(&src[heads[b]])) } else { None };
    }
    *data = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_exactly_once() {
        for threads in [1u32, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let parts = pool.run(100, |_, r| r);
            let mut covered = [0u8; 100];
            for r in parts {
                for i in r {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn results_in_worker_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.run(40, |w, _| w), vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_sums_across_thread_counts() {
        let data: Vec<u64> = (0..1000).map(|i| i * 7 % 31).collect();
        let sum = |pool: &WorkerPool| -> u64 {
            pool.run(data.len(), |_, r| r.map(|i| data[i]).sum::<u64>()).into_iter().sum()
        };
        let expected = sum(&WorkerPool::inline());
        for threads in [2u32, 4, 7] {
            assert_eq!(sum(&WorkerPool::new(threads)), expected);
            assert_eq!(sum(&WorkerPool::spawning(threads)), expected);
        }
    }

    #[test]
    fn pool_is_reused_across_runs() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let parts = pool.run(300, |_, r| r.len());
            assert_eq!(parts.iter().sum::<usize>(), 300);
        }
        let stats = pool.stats();
        assert_eq!(stats.runs, 50);
        assert_eq!(stats.dispatches, 50);
    }

    #[test]
    fn empty_and_tiny_inputs_run_inline() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.run(0, |_, r| r.len()), vec![0]);
        assert_eq!(pool.run(1, |_, r| r.len()), vec![1]);
        assert_eq!(pool.stats().dispatches, 0, "single-range runs never dispatch");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, |w, r| {
                if w == 2 {
                    panic!("worker boom");
                }
                r.len()
            })
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps working.
        let parts = pool.run(100, |_, r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn caller_range_panic_propagates() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, |w, r| {
                if w == 0 {
                    panic!("caller boom");
                }
                r.len()
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.run(10, |_, r| r.len()), vec![3, 3, 3, 1]);
    }

    #[test]
    fn nested_runs_execute_inline() {
        let pool = WorkerPool::new(4);
        let outer = pool.run(4, |_, r| {
            // A nested dispatch would deadlock on the dispatch lock;
            // inline execution must kick in instead.
            let inner: usize = pool.run(100, |_, ir| ir.len()).into_iter().sum();
            (r.len(), inner)
        });
        for (_, inner) in outer {
            assert_eq!(inner, 100);
        }
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let total: usize =
                            pool.run(997, |_, r| r.len()).into_iter().sum();
                        assert_eq!(total, 997);
                    }
                });
            }
        });
        assert_eq!(pool.stats().runs, 80);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = WorkerPool::shared();
        let b = WorkerPool::shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        let mk = |seed: u64| -> Vec<u64> {
            let mut x = seed;
            (0..4097)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    x >> 33
                })
                .collect()
        };
        for threads in [1u32, 2, 5, 8] {
            let pool = WorkerPool::new(threads);
            let mut data = mk(42);
            par_sort_by_key(&pool, &mut data, |&x| x);
            let mut expected = mk(42);
            expected.sort_unstable();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn utilization_tracks_busy_workers_and_wakeups() {
        let pool = WorkerPool::new(3);
        assert!(!pool.telemetry_enabled(), "clock sampling is opt-in");
        pool.enable_telemetry();
        for _ in 0..10 {
            pool.run(3000, |_, r| {
                let mut acc = 0u64;
                for i in r {
                    acc = acc.wrapping_add((i as u64).wrapping_mul(2654435761));
                }
                std::hint::black_box(acc);
            });
        }
        let u = pool.utilization();
        assert_eq!(u.per_worker_busy_secs.len(), 3);
        // The caller slot and both parked workers all executed ranges.
        assert!(u.per_worker_busy_secs.iter().all(|&b| b > 0.0), "{u:?}");
        assert!((u.busy_secs - u.per_worker_busy_secs.iter().sum::<f64>()).abs() < 1e-12);
        // 10 dispatches × 2 parked workers woke up.
        assert_eq!(u.dispatch_wakeups, 20);
        assert!(u.mean_dispatch_wait_secs().unwrap() >= 0.0);
        assert!(u.uptime_secs > 0.0);
        let f = u.busy_fraction();
        assert!((0.0..=1.0).contains(&f), "{f}");
    }

    #[test]
    fn inline_pool_attributes_busy_time_to_the_caller() {
        let pool = WorkerPool::inline();
        pool.run(100, |_, r| r.map(|i| i * 2).sum::<usize>());
        assert_eq!(pool.utilization().busy_secs, 0.0, "no sampling until enabled");
        pool.enable_telemetry();
        pool.run(100, |_, r| r.map(|i| i * 2).sum::<usize>());
        let u = pool.utilization();
        assert_eq!(u.per_worker_busy_secs.len(), 1);
        assert!(u.busy_secs > 0.0);
        assert_eq!(u.dispatch_wakeups, 0);
        assert_eq!(u.mean_dispatch_wait_secs(), None);
    }

    #[test]
    fn split_ranges_shape() {
        assert_eq!(split_ranges(4, 10), vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(split_ranges(8, 3).len(), 3);
        assert_eq!(split_ranges(1, 0), vec![0..0]);
    }
}
