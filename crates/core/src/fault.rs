//! The fault-injection and cooperative-cancellation plane.
//!
//! Robustness is a first-class benchmark dimension in Graphalytics
//! (stress and variability runs, §2.3): platforms must degrade
//! gracefully, not just score EVPS. This module gives the whole stack a
//! *deterministic* way to exercise that:
//!
//! * [`CancelToken`] — a lock-free cancellation handle with optional
//!   deadline. Owners (the harness driver, the service) arm it; kernels
//!   observe it at superstep boundaries through [`checkpoint`]/[`tick`]
//!   and abort in bounded time with a structured
//!   [`Error::Cancelled`]/[`Error::DeadlineExceeded`].
//! * [`FaultPlan`] — a seeded plan of scripted and probabilistic
//!   injections (worker panics at superstep `k`, slow-worker stalls,
//!   transient and allocation errors). [`FaultPlan::script_for`] derives
//!   a per-(scope, attempt) [`FaultScript`] deterministically, so a
//!   chaos run replays bit-identically for a fixed seed.
//! * a **thread-local scope** ([`install`]) that carries the token and
//!   script through every layer without threading parameters into kernel
//!   signatures — the same pattern as the engines' span tracer. With no
//!   scope installed, [`checkpoint`] is one thread-local read and the
//!   hot kernels stay monomorphized and fast (CI gates the overhead the
//!   same way as the monitor's).
//!
//! Kernels whose signatures do not return `Result` use [`tick`], which
//! aborts by unwinding with a private payload; [`catch_abort`] at the
//! engine boundary converts that unwind back into the structured error.
//! Injected [`FaultKind::WorkerPanic`] faults are *real* panics — they
//! deliberately exercise the worker pool's panic propagation and the
//! service's `catch_unwind` containment.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// A lock-free, cloneable cancellation handle with deadline support.
///
/// Clones share state: cancelling (or arming a deadline on) any clone is
/// observed by all. Checks are two relaxed-ish atomic loads — cheap
/// enough for superstep boundaries at any width.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Deadline as nanoseconds since `epoch`; 0 = no deadline armed.
    deadline_nanos: AtomicU64,
    /// The armed timeout in nanoseconds (reporting only).
    timeout_nanos: AtomicU64,
    epoch: Instant,
}

impl Default for TokenInner {
    fn default() -> Self {
        TokenInner {
            cancelled: AtomicBool::new(false),
            deadline_nanos: AtomicU64::new(0),
            timeout_nanos: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; observed by every clone at its
    /// next [`CancelToken::check`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Arms (or re-arms) a deadline `timeout` from now. A run holding
    /// this token fails with [`Error::DeadlineExceeded`] at the first
    /// checkpoint past the deadline.
    pub fn arm_deadline(&self, timeout: Duration) {
        let now = self.inner.epoch.elapsed().as_nanos() as u64;
        let deadline = now.saturating_add(timeout.as_nanos() as u64).max(1);
        self.inner.timeout_nanos.store(timeout.as_nanos() as u64, Ordering::SeqCst);
        self.inner.deadline_nanos.store(deadline, Ordering::SeqCst);
    }

    /// Removes any armed deadline.
    pub fn clear_deadline(&self) {
        self.inner.deadline_nanos.store(0, Ordering::SeqCst);
        self.inner.timeout_nanos.store(0, Ordering::SeqCst);
    }

    /// Whether an armed deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        let deadline = self.inner.deadline_nanos.load(Ordering::SeqCst);
        deadline != 0 && self.inner.epoch.elapsed().as_nanos() as u64 >= deadline
    }

    /// The structured verdict: `Err(Cancelled)` once cancelled,
    /// `Err(DeadlineExceeded)` past an armed deadline, `Ok` otherwise.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(Error::Cancelled);
        }
        if self.deadline_exceeded() {
            let timeout = self.inner.timeout_nanos.load(Ordering::SeqCst);
            return Err(Error::DeadlineExceeded { timeout_secs: timeout as f64 / 1e9 });
        }
        Ok(())
    }
}

/// Where in the lifecycle a checkpoint sits. Each site keeps its own
/// occurrence counter within a scope, so a script can target "superstep
/// 3" independently of "upload".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A kernel iteration / superstep boundary inside an engine.
    Superstep,
    /// Between execute-phase repetitions in the driver.
    Repetition,
    /// Before the engine upload phase.
    Upload,
    /// Inside the parallel CSR build pipeline.
    Build,
    /// Inside the edge-file parser.
    Parse,
    /// Inside delta-log compaction / materialization.
    Compact,
    /// Inside a mutation-batch apply.
    Mutate,
}

impl FaultSite {
    pub const COUNT: usize = 7;

    fn index(self) -> usize {
        match self {
            FaultSite::Superstep => 0,
            FaultSite::Repetition => 1,
            FaultSite::Upload => 2,
            FaultSite::Build => 3,
            FaultSite::Parse => 4,
            FaultSite::Compact => 5,
            FaultSite::Mutate => 6,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Superstep => "superstep",
            FaultSite::Repetition => "repetition",
            FaultSite::Upload => "upload",
            FaultSite::Build => "build",
            FaultSite::Parse => "parse",
            FaultSite::Compact => "compact",
            FaultSite::Mutate => "mutate",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an injection does when its checkpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A real `panic!` — exercises pool panic propagation and the
    /// service's `catch_unwind` containment.
    WorkerPanic,
    /// A slow-worker stall: sleeps `millis` (in small slices, so an
    /// armed deadline or cancellation still aborts promptly).
    Stall { millis: u64 },
    /// A structured transient error ([`Error::Injected`] with
    /// `transient: true`) — the service retries these with backoff.
    Transient,
    /// A structured permanent allocation-style error
    /// ([`Error::Injected`] with `transient: false`).
    Alloc,
    /// Cancels the scope's own token and returns [`Error::Cancelled`] —
    /// models an operator cancelling at exactly this boundary.
    Cancel,
}

/// One scripted injection: fire `kind` at the `at`-th occurrence of
/// `site` within a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    pub site: FaultSite,
    /// 0-based occurrence index of `site` within the scope.
    pub at: u64,
    pub kind: FaultKind,
    /// Restrict to the first execution attempt — retried attempts run
    /// clean. This is how tests script "fails once, then succeeds".
    pub first_attempt_only: bool,
}

impl Injection {
    pub fn new(site: FaultSite, at: u64, kind: FaultKind) -> Self {
        Injection { site, at, kind, first_attempt_only: false }
    }

    pub fn once(site: FaultSite, at: u64, kind: FaultKind) -> Self {
        Injection { site, at, kind, first_attempt_only: true }
    }
}

/// A seeded fault plan: scripted injections plus an optional
/// probabilistic layer that makes `rate` of scopes draw one fault,
/// deterministically from `(seed, scope, attempt)`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability in `[0, 1]` that a scope draws one probabilistic
    /// injection (independent per attempt, so retries usually clear).
    pub rate: f64,
    pub scripted: Vec<Injection>,
}

impl FaultPlan {
    /// A purely probabilistic chaos plan.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan { seed, rate: rate.clamp(0.0, 1.0), scripted: Vec::new() }
    }

    /// A purely scripted plan.
    pub fn scripted(injections: Vec<Injection>) -> Self {
        FaultPlan { seed: 0, rate: 0.0, scripted: injections }
    }

    /// The concrete script for one scope (e.g. a job id) and attempt.
    /// Deterministic: the same `(plan, scope, attempt)` always yields the
    /// same script, so chaos runs replay bit-identically.
    pub fn script_for(&self, scope: u64, attempt: u32) -> FaultScript {
        let mut injections: Vec<Injection> = self
            .scripted
            .iter()
            .filter(|i| !i.first_attempt_only || attempt == 0)
            .copied()
            .collect();
        if self.rate > 0.0 {
            let draw = splitmix64(
                self.seed ^ scope.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (attempt as u64) << 56,
            );
            if unit_fraction(draw) < self.rate {
                let detail = splitmix64(draw);
                // Early superstep occurrences so small proxy graphs still
                // reach the injection point.
                let at = detail % 3;
                let kind = match (detail >> 8) % 4 {
                    0 => FaultKind::WorkerPanic,
                    1 => FaultKind::Stall { millis: 15 },
                    2 => FaultKind::Transient,
                    _ => FaultKind::Alloc,
                };
                injections.push(Injection::new(FaultSite::Superstep, at, kind));
            }
        }
        FaultScript { injections }
    }
}

/// The per-scope injection schedule derived from a [`FaultPlan`].
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    injections: Vec<Injection>,
}

impl FaultScript {
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn new(injections: Vec<Injection>) -> Self {
        FaultScript { injections }
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    fn injection_at(&self, site: FaultSite, occurrence: u64) -> Option<FaultKind> {
        self.injections
            .iter()
            .find(|i| i.site == site && i.at == occurrence)
            .map(|i| i.kind)
    }
}

struct Scope {
    token: CancelToken,
    script: FaultScript,
    counts: [u64; FaultSite::COUNT],
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Uninstalls the scope (restoring any outer one) when dropped.
pub struct FaultGuard {
    prev: Option<Scope>,
    restored: bool,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        if self.restored {
            return;
        }
        self.restored = true;
        let prev = self.prev.take();
        SCOPE.with(|s| *s.borrow_mut() = prev);
    }
}

/// Installs a fault/cancellation scope on this thread for the lifetime
/// of the returned guard. Nested installs stack: dropping the guard
/// restores the outer scope.
pub fn install(token: CancelToken, script: FaultScript) -> FaultGuard {
    let prev = SCOPE.with(|s| {
        s.borrow_mut()
            .replace(Scope { token, script, counts: [0; FaultSite::COUNT] })
    });
    FaultGuard { prev, restored: false }
}

/// Whether a scope is installed on this thread.
pub fn installed() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// What [`checkpoint`] decided to do, resolved while the thread-local
/// borrow is held; acted on after it is released (stalls sleep, panics
/// unwind — neither may hold the `RefCell`).
enum Decision {
    Pass,
    Fail(Error),
    Panic(String),
    Stall { millis: u64, token: CancelToken },
}

/// The cooperative checkpoint: observes cancellation/deadline and fires
/// any scheduled injection for `site`. With no scope installed this is a
/// single thread-local read — the disabled fault plane costs nothing
/// measurable at superstep granularity.
pub fn checkpoint(site: FaultSite) -> Result<()> {
    if !installed() {
        return Ok(());
    }
    checkpoint_slow(site)
}

#[cold]
fn checkpoint_slow(site: FaultSite) -> Result<()> {
    let decision = SCOPE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(scope) = borrow.as_mut() else { return Decision::Pass };
        if let Err(e) = scope.token.check() {
            return Decision::Fail(e);
        }
        let occurrence = scope.counts[site.index()];
        scope.counts[site.index()] += 1;
        match scope.script.injection_at(site, occurrence) {
            None => Decision::Pass,
            Some(FaultKind::WorkerPanic) => Decision::Panic(format!(
                "injected fault: worker panic at {site} #{occurrence}"
            )),
            Some(FaultKind::Stall { millis }) => {
                Decision::Stall { millis, token: scope.token.clone() }
            }
            Some(FaultKind::Transient) => {
                Decision::Fail(Error::Injected { site: site.as_str(), transient: true })
            }
            Some(FaultKind::Alloc) => {
                Decision::Fail(Error::Injected { site: site.as_str(), transient: false })
            }
            Some(FaultKind::Cancel) => {
                scope.token.cancel();
                Decision::Fail(Error::Cancelled)
            }
        }
    });
    match decision {
        Decision::Pass => Ok(()),
        Decision::Fail(e) => Err(e),
        Decision::Panic(message) => panic!("{message}"),
        Decision::Stall { millis, token } => {
            // Sleep in slices so an armed deadline or a cancel landing
            // mid-stall still aborts within ~one slice.
            let deadline = Instant::now() + Duration::from_millis(millis);
            loop {
                token.check()?;
                let now = Instant::now();
                if now >= deadline {
                    return token.check();
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
            }
        }
    }
}

/// The abort payload [`tick`] unwinds with; private to this mechanism —
/// [`catch_abort`] converts it back into the structured error.
struct FaultAbort(Error);

/// Checkpoint for kernels that do not return `Result`: aborts by
/// unwinding. Must run under a [`catch_abort`] boundary (every engine's
/// `Platform::run` provides one).
pub fn tick(site: FaultSite) {
    if let Err(e) = checkpoint(site) {
        std::panic::panic_any(FaultAbort(e));
    }
}

/// Runs `f`, converting a [`tick`] abort back into its structured error.
/// Genuine panics (including injected [`FaultKind::WorkerPanic`] faults)
/// resume unwinding untouched.
pub fn catch_abort<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => match payload.downcast::<FaultAbort>() {
            Ok(abort) => Err(abort.0),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Deterministic jittered exponential backoff: delay for attempt `k` is
/// `base * 2^k` (capped), scaled by a jitter in `[0.5, 1.5)` drawn from
/// `(seed, k)` — bounded, seeded, and reproducible in tests.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    pub base: Duration,
    pub cap: Duration,
    pub seed: u64,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff { base, cap, seed }
    }

    /// The delay before retry attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.cap);
        let jitter = 0.5 + unit_fraction(splitmix64(self.seed ^ (attempt as u64 + 1)));
        capped.mul_f64(jitter)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_and_deadline() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "clones share state");
        assert!(matches!(token.check(), Err(Error::Cancelled)));

        let token = CancelToken::new();
        token.arm_deadline(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        token.arm_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        assert!(token.deadline_exceeded());
        assert!(matches!(token.check(), Err(Error::DeadlineExceeded { .. })));
        token.clear_deadline();
        assert!(token.check().is_ok());
    }

    #[test]
    fn checkpoint_without_scope_is_free_pass() {
        assert!(!installed());
        for _ in 0..1000 {
            checkpoint(FaultSite::Superstep).unwrap();
        }
        tick(FaultSite::Superstep); // must not panic without a scope
    }

    #[test]
    fn scripted_injection_fires_at_exact_occurrence() {
        let script = FaultScript::new(vec![Injection::new(
            FaultSite::Superstep,
            2,
            FaultKind::Transient,
        )]);
        let guard = install(CancelToken::new(), script);
        checkpoint(FaultSite::Superstep).unwrap(); // #0
        checkpoint(FaultSite::Upload).unwrap(); // other sites count apart
        checkpoint(FaultSite::Superstep).unwrap(); // #1
        let err = checkpoint(FaultSite::Superstep).unwrap_err(); // #2
        assert!(matches!(err, Error::Injected { transient: true, .. }), "{err}");
        assert!(err.is_transient());
        checkpoint(FaultSite::Superstep).unwrap(); // #3: one-shot
        drop(guard);
        assert!(!installed());
    }

    #[test]
    fn cancel_injection_cancels_the_token() {
        let token = CancelToken::new();
        let script =
            FaultScript::new(vec![Injection::new(FaultSite::Superstep, 0, FaultKind::Cancel)]);
        let _guard = install(token.clone(), script);
        assert!(matches!(
            checkpoint(FaultSite::Superstep),
            Err(Error::Cancelled)
        ));
        assert!(token.is_cancelled());
        // Every later checkpoint keeps failing with Cancelled.
        assert!(matches!(checkpoint(FaultSite::Repetition), Err(Error::Cancelled)));
    }

    #[test]
    fn tick_unwinds_and_catch_abort_restores_the_error() {
        let script =
            FaultScript::new(vec![Injection::new(FaultSite::Superstep, 0, FaultKind::Transient)]);
        let _guard = install(CancelToken::new(), script);
        let result: Result<u32> = catch_abort(|| {
            tick(FaultSite::Superstep);
            Ok(42)
        });
        assert!(matches!(result, Err(Error::Injected { transient: true, .. })));
        // A clean pass returns the value.
        let result: Result<u32> = catch_abort(|| {
            tick(FaultSite::Superstep);
            Ok(42)
        });
        assert_eq!(result.unwrap(), 42);
    }

    #[test]
    fn catch_abort_resumes_real_panics() {
        let caught = std::panic::catch_unwind(|| {
            let _: Result<()> = catch_abort(|| panic!("genuine bug"));
        });
        assert!(caught.is_err(), "real panics must not become structured errors");
    }

    #[test]
    fn injected_worker_panic_is_a_real_panic() {
        let script = FaultScript::new(vec![Injection::new(
            FaultSite::Superstep,
            0,
            FaultKind::WorkerPanic,
        )]);
        let guard = install(CancelToken::new(), script);
        let caught = std::panic::catch_unwind(|| {
            let _: Result<()> = catch_abort(|| {
                tick(FaultSite::Superstep);
                Ok(())
            });
        });
        drop(guard);
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().expect("string panic payload");
        assert!(message.contains("injected fault: worker panic"), "{message}");
    }

    #[test]
    fn stall_respects_deadline() {
        let token = CancelToken::new();
        token.arm_deadline(Duration::from_millis(5));
        let script = FaultScript::new(vec![Injection::new(
            FaultSite::Superstep,
            0,
            FaultKind::Stall { millis: 10_000 },
        )]);
        let _guard = install(token, script);
        let start = Instant::now();
        let err = checkpoint(FaultSite::Superstep).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "stall must abort near the deadline, not sleep it out"
        );
    }

    #[test]
    fn nested_installs_stack() {
        let outer_script =
            FaultScript::new(vec![Injection::new(FaultSite::Upload, 0, FaultKind::Transient)]);
        let outer = install(CancelToken::new(), outer_script);
        {
            let _inner = install(CancelToken::new(), FaultScript::empty());
            checkpoint(FaultSite::Upload).unwrap(); // inner scope: clean
        }
        // Outer scope restored: its script fires.
        assert!(checkpoint(FaultSite::Upload).is_err());
        drop(outer);
        assert!(!installed());
    }

    #[test]
    fn plan_scripts_are_deterministic_and_rate_bounded() {
        let plan = FaultPlan::chaos(0xC4A5, 0.25);
        let mut faulted = 0;
        for scope in 0..400u64 {
            let a = plan.script_for(scope, 0);
            let b = plan.script_for(scope, 0);
            assert_eq!(a.injections, b.injections, "deterministic per (scope, attempt)");
            if !a.is_empty() {
                faulted += 1;
            }
        }
        // ~25% of scopes draw a fault; allow generous slack.
        assert!((60..=140).contains(&faulted), "{faulted} of 400 scopes faulted");
        // Attempts draw independently: some faulted scope clears on retry.
        let cleared = (0..400u64).any(|scope| {
            !plan.script_for(scope, 0).is_empty() && plan.script_for(scope, 1).is_empty()
        });
        assert!(cleared, "retries must usually clear probabilistic faults");
    }

    #[test]
    fn first_attempt_only_injections_clear_on_retry() {
        let plan = FaultPlan::scripted(vec![Injection::once(
            FaultSite::Superstep,
            0,
            FaultKind::Transient,
        )]);
        assert!(!plan.script_for(7, 0).is_empty());
        assert!(plan.script_for(7, 1).is_empty());
    }

    #[test]
    fn backoff_is_bounded_exponential_with_seeded_jitter() {
        let backoff = Backoff::new(
            Duration::from_millis(10),
            Duration::from_millis(200),
            0xFACE,
        );
        let d0 = backoff.delay(0);
        let d1 = backoff.delay(1);
        let d5 = backoff.delay(5);
        assert_eq!(d0, backoff.delay(0), "deterministic for a fixed seed");
        assert!(d0 >= Duration::from_millis(5) && d0 < Duration::from_millis(15), "{d0:?}");
        assert!(d1 >= Duration::from_millis(10) && d1 < Duration::from_millis(30), "{d1:?}");
        assert!(d5 <= Duration::from_millis(300), "cap holds: {d5:?}");
        // A huge attempt index must not overflow.
        assert!(backoff.delay(40) <= Duration::from_millis(300));
    }
}
