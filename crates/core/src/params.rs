//! Per-run algorithm parameters.
//!
//! The benchmark description (Figure 1, component 1) includes "the algorithm
//! parameters for each graph (e.g., the root for BFS or number of iterations
//! for PR)". [`AlgorithmParams`] carries exactly those, and
//! [`SourceSelection`] captures how a dataset prescribes its root vertex.

use crate::graph::{Csr, VertexId};

/// Parameters for one algorithm execution.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmParams {
    /// Source vertex for BFS and SSSP (sparse id).
    pub source_vertex: Option<VertexId>,
    /// Number of PageRank iterations.
    pub pagerank_iterations: u32,
    /// PageRank damping factor (0.85 in the benchmark).
    pub damping_factor: f64,
    /// Number of CDLP iterations.
    pub cdlp_iterations: u32,
}

impl Default for AlgorithmParams {
    fn default() -> Self {
        AlgorithmParams {
            source_vertex: None,
            pagerank_iterations: 10,
            damping_factor: 0.85,
            cdlp_iterations: 10,
        }
    }
}

impl AlgorithmParams {
    /// Parameters with an explicit root.
    pub fn with_source(source: VertexId) -> Self {
        AlgorithmParams { source_vertex: Some(source), ..Default::default() }
    }
}

/// How a dataset selects the BFS/SSSP source vertex.
///
/// Real Graphalytics dataset descriptors name an explicit root; synthetic
/// proxies use a deterministic structural rule so the root is reproducible
/// for any generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSelection {
    /// A fixed sparse vertex id.
    Explicit(VertexId),
    /// The vertex with maximum out-degree, ties broken by smallest id.
    /// This mimics picking a well-connected root, as benchmark datasets do.
    MaxOutDegree,
    /// The smallest vertex id present in the graph.
    MinId,
}

impl SourceSelection {
    /// Resolves the selection rule against a concrete graph.
    pub fn resolve(self, csr: &Csr) -> Option<VertexId> {
        match self {
            SourceSelection::Explicit(v) => csr.index_of(v).map(|_| v),
            SourceSelection::MinId => csr.vertex_ids().first().copied(),
            SourceSelection::MaxOutDegree => {
                let n = csr.num_vertices();
                let mut best: Option<(usize, VertexId)> = None;
                for u in 0..n as u32 {
                    let d = csr.out_degree(u);
                    let id = csr.id_of(u);
                    best = Some(match best {
                        None => (d, id),
                        Some((bd, bid)) => {
                            if d > bd {
                                (d, id)
                            } else {
                                (bd, bid)
                            }
                        }
                    });
                }
                best.map(|(_, id)| id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn csr() -> Csr {
        let mut b = GraphBuilder::new(true);
        for v in [5u64, 6, 7] {
            b.add_vertex(v);
        }
        b.add_edge(6, 5);
        b.add_edge(6, 7);
        b.add_edge(5, 7);
        b.build().unwrap().to_csr()
    }

    #[test]
    fn default_matches_benchmark_spec() {
        let p = AlgorithmParams::default();
        assert_eq!(p.damping_factor, 0.85);
        assert_eq!(p.pagerank_iterations, 10);
        assert!(p.source_vertex.is_none());
    }

    #[test]
    fn max_out_degree_resolution() {
        assert_eq!(SourceSelection::MaxOutDegree.resolve(&csr()), Some(6));
        assert_eq!(SourceSelection::MinId.resolve(&csr()), Some(5));
        assert_eq!(SourceSelection::Explicit(7).resolve(&csr()), Some(7));
        assert_eq!(SourceSelection::Explicit(99).resolve(&csr()), None);
    }

    #[test]
    fn ties_break_to_smallest_id() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        let csr = b.build().unwrap().to_csr();
        // Vertices 1 and 2 both have out-degree 1.
        assert_eq!(SourceSelection::MaxOutDegree.resolve(&csr), Some(1));
    }
}
