//! Output validation (requirement R3).
//!
//! Correctness of a platform implementation is defined as *output
//! equivalence* with the reference implementation (Section 2.2.3). The
//! equivalence rule depends on the algorithm:
//!
//! * **BFS, CDLP** — exact per-vertex match;
//! * **WCC** — the reference labels components by their minimum vertex id,
//!   but the spec only requires a consistent partition, so validation
//!   accepts any bijective relabeling that induces the same partition;
//! * **PageRank, LCC, SSSP** — match within a relative epsilon
//!   ([`DEFAULT_EPSILON`]), with infinities required to match exactly.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::output::{AlgorithmOutput, OutputValues};
use crate::Algorithm;

/// Default relative tolerance for floating-point outputs.
pub const DEFAULT_EPSILON: f64 = 1e-4;

/// The result of validating a platform output against the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    pub algorithm: Algorithm,
    pub vertices_checked: usize,
    pub mismatches: usize,
    /// Up to eight example mismatches, `(vertex, expected, actual)`.
    pub examples: Vec<(u64, String, String)>,
}

impl ValidationReport {
    /// True when the output is equivalent to the reference.
    pub fn is_valid(&self) -> bool {
        self.mismatches == 0
    }

    /// Converts a failed report into an [`Error::ValidationFailed`].
    pub fn into_result(self) -> Result<ValidationReport> {
        if self.is_valid() {
            Ok(self)
        } else {
            let mut msg = format!(
                "{}: {}/{} vertices mismatch",
                self.algorithm, self.mismatches, self.vertices_checked
            );
            for (v, e, a) in &self.examples {
                msg.push_str(&format!("; v{v}: expected {e}, got {a}"));
            }
            Err(Error::ValidationFailed(msg))
        }
    }
}

/// Validates `actual` against `reference` using the algorithm's rule.
pub fn validate(reference: &AlgorithmOutput, actual: &AlgorithmOutput) -> Result<ValidationReport> {
    validate_with_epsilon(reference, actual, DEFAULT_EPSILON)
}

/// Like [`validate`] but with an explicit tolerance for float outputs.
pub fn validate_with_epsilon(
    reference: &AlgorithmOutput,
    actual: &AlgorithmOutput,
    epsilon: f64,
) -> Result<ValidationReport> {
    if reference.algorithm != actual.algorithm {
        return Err(Error::ValidationFailed(format!(
            "algorithm mismatch: reference {} vs actual {}",
            reference.algorithm, actual.algorithm
        )));
    }
    if reference.vertex_ids != actual.vertex_ids {
        return Err(Error::ValidationFailed(format!(
            "{}: vertex sets differ ({} vs {} vertices)",
            reference.algorithm,
            reference.vertex_ids.len(),
            actual.vertex_ids.len()
        )));
    }

    let mut report = ValidationReport {
        algorithm: reference.algorithm,
        vertices_checked: reference.vertex_ids.len(),
        mismatches: 0,
        examples: Vec::new(),
    };
    let mut record = |i: usize, expected: String, actual_s: String, report: &mut ValidationReport| {
        report.mismatches += 1;
        if report.examples.len() < 8 {
            report.examples.push((reference.vertex_ids[i], expected, actual_s));
        }
    };

    match (&reference.values, &actual.values) {
        (OutputValues::I64(r), OutputValues::I64(a)) => {
            for i in 0..r.len() {
                if r[i] != a[i] {
                    record(i, r[i].to_string(), a[i].to_string(), &mut report);
                }
            }
        }
        (OutputValues::Id(r), OutputValues::Id(a)) => {
            if reference.algorithm == Algorithm::Wcc {
                validate_partition(r, a, &mut report, &mut record);
            } else {
                for i in 0..r.len() {
                    if r[i] != a[i] {
                        record(i, r[i].to_string(), a[i].to_string(), &mut report);
                    }
                }
            }
        }
        (OutputValues::F64(r), OutputValues::F64(a)) => {
            for i in 0..r.len() {
                if !float_matches(r[i], a[i], epsilon) {
                    record(i, format!("{:e}", r[i]), format!("{:e}", a[i]), &mut report);
                }
            }
        }
        (r, a) => {
            return Err(Error::ValidationFailed(format!(
                "{}: output type mismatch ({} vs {})",
                reference.algorithm,
                r.type_tag(),
                a.type_tag()
            )));
        }
    }
    Ok(report)
}

/// WCC partition equivalence: the label maps must be mutually consistent
/// bijections (same label ⇔ same label).
fn validate_partition(
    r: &[u64],
    a: &[u64],
    report: &mut ValidationReport,
    record: &mut impl FnMut(usize, String, String, &mut ValidationReport),
) {
    let mut fwd: HashMap<u64, u64> = HashMap::new();
    let mut bwd: HashMap<u64, u64> = HashMap::new();
    for i in 0..r.len() {
        let consistent = match (fwd.get(&r[i]), bwd.get(&a[i])) {
            (Some(&mapped), _) if mapped != a[i] => false,
            (_, Some(&mapped)) if mapped != r[i] => false,
            _ => {
                fwd.insert(r[i], a[i]);
                bwd.insert(a[i], r[i]);
                true
            }
        };
        if !consistent {
            record(i, format!("component {}", r[i]), format!("component {}", a[i]), report);
        }
    }
}

/// Absolute floor below which values are considered equal regardless of
/// relative error (guards the `expected == 0.0` case).
const ABSOLUTE_FLOOR: f64 = 1e-12;

/// Relative-epsilon float comparison with exact infinity handling.
fn float_matches(expected: f64, actual: f64, epsilon: f64) -> bool {
    if expected.is_infinite() || actual.is_infinite() {
        return expected == actual;
    }
    if expected.is_nan() || actual.is_nan() {
        return false;
    }
    let diff = (expected - actual).abs();
    diff <= ABSOLUTE_FLOOR || diff <= epsilon * expected.abs().max(actual.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(alg: Algorithm, values: OutputValues) -> AlgorithmOutput {
        let n = values.len() as u64;
        AlgorithmOutput { algorithm: alg, vertex_ids: (0..n).collect(), values }
    }

    #[test]
    fn exact_match_bfs() {
        let r = out(Algorithm::Bfs, OutputValues::I64(vec![0, 1, i64::MAX]));
        let a = out(Algorithm::Bfs, OutputValues::I64(vec![0, 1, i64::MAX]));
        assert!(validate(&r, &a).unwrap().is_valid());
        let bad = out(Algorithm::Bfs, OutputValues::I64(vec![0, 2, i64::MAX]));
        let rep = validate(&r, &bad).unwrap();
        assert_eq!(rep.mismatches, 1);
        assert!(rep.into_result().is_err());
    }

    #[test]
    fn wcc_accepts_relabeling() {
        let r = out(Algorithm::Wcc, OutputValues::Id(vec![0, 0, 2, 2]));
        let a = out(Algorithm::Wcc, OutputValues::Id(vec![7, 7, 9, 9]));
        assert!(validate(&r, &a).unwrap().is_valid());
        // Merging two components is invalid.
        let merged = out(Algorithm::Wcc, OutputValues::Id(vec![7, 7, 7, 7]));
        assert!(!validate(&r, &merged).unwrap().is_valid());
        // Splitting a component is invalid.
        let split = out(Algorithm::Wcc, OutputValues::Id(vec![7, 8, 9, 9]));
        assert!(!validate(&r, &split).unwrap().is_valid());
    }

    #[test]
    fn cdlp_requires_exact_labels() {
        let r = out(Algorithm::Cdlp, OutputValues::Id(vec![1, 1, 2]));
        let relabeled = out(Algorithm::Cdlp, OutputValues::Id(vec![5, 5, 6]));
        assert!(!validate(&r, &relabeled).unwrap().is_valid());
    }

    #[test]
    fn float_epsilon_and_infinity() {
        let r = out(Algorithm::Sssp, OutputValues::F64(vec![1.0, 2.0, f64::INFINITY]));
        let a = out(
            Algorithm::Sssp,
            OutputValues::F64(vec![1.0 + 5e-5, 2.0 - 1e-4, f64::INFINITY]),
        );
        assert!(validate(&r, &a).unwrap().is_valid());
        let bad = out(Algorithm::Sssp, OutputValues::F64(vec![1.0, 2.0, 1e30]));
        assert!(!validate(&r, &bad).unwrap().is_valid());
        let worse = out(Algorithm::Sssp, OutputValues::F64(vec![1.01, 2.0, f64::INFINITY]));
        assert!(!validate(&r, &worse).unwrap().is_valid());
    }

    #[test]
    fn structural_mismatches_are_errors() {
        let r = out(Algorithm::Bfs, OutputValues::I64(vec![0, 1]));
        let wrong_alg = out(Algorithm::Sssp, OutputValues::F64(vec![0.0, 1.0]));
        assert!(validate(&r, &wrong_alg).is_err());
        let wrong_type = out(Algorithm::Bfs, OutputValues::F64(vec![0.0, 1.0]));
        assert!(validate(&r, &wrong_type).is_err());
        let mut wrong_ids = out(Algorithm::Bfs, OutputValues::I64(vec![0, 1]));
        wrong_ids.vertex_ids = vec![5, 6];
        assert!(validate(&r, &wrong_ids).is_err());
    }

    #[test]
    fn near_zero_values_compare_absolutely() {
        assert!(float_matches(0.0, 1e-13, 1e-4));
        assert!(!float_matches(0.0, 1e-3, 1e-4));
    }
}
