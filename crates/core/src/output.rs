//! Algorithm outputs: one value per vertex, keyed by sparse vertex id.
//!
//! The harness moves outputs between platforms and the validator in this
//! form; it mirrors the reference-output files of the real benchmark
//! (`vertex_id value` per line).

use crate::graph::{Csr, VertexId};
use crate::Algorithm;

/// The per-vertex values produced by an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputValues {
    /// BFS depths (`i64::MAX` = unreachable).
    I64(Vec<i64>),
    /// WCC / CDLP labels (vertex ids).
    Id(Vec<VertexId>),
    /// PageRank / LCC / SSSP values (`f64::INFINITY` = unreachable for SSSP).
    F64(Vec<f64>),
}

impl OutputValues {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        match self {
            OutputValues::I64(v) => v.len(),
            OutputValues::Id(v) => v.len(),
            OutputValues::F64(v) => v.len(),
        }
    }

    /// True when no values are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short type tag used in archives and error messages.
    pub fn type_tag(&self) -> &'static str {
        match self {
            OutputValues::I64(_) => "i64",
            OutputValues::Id(_) => "id",
            OutputValues::F64(_) => "f64",
        }
    }
}

/// A complete algorithm output: which algorithm ran and the value for each
/// vertex, in dense (sorted-id) order, together with the id mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmOutput {
    pub algorithm: Algorithm,
    /// Sorted sparse vertex ids; `values[i]` belongs to `vertex_ids[i]`.
    pub vertex_ids: Vec<VertexId>,
    pub values: OutputValues,
}

impl AlgorithmOutput {
    /// Wraps dense values produced against `csr`.
    pub fn from_dense(algorithm: Algorithm, csr: &Csr, values: OutputValues) -> Self {
        debug_assert_eq!(values.len(), csr.num_vertices());
        AlgorithmOutput { algorithm, vertex_ids: csr.vertex_ids().to_vec(), values }
    }

    /// The value for a sparse vertex id, rendered as a string (for report
    /// files and debugging).
    pub fn value_string(&self, v: VertexId) -> Option<String> {
        let i = self.vertex_ids.binary_search(&v).ok()?;
        Some(match &self.values {
            OutputValues::I64(vals) => vals[i].to_string(),
            OutputValues::Id(vals) => vals[i].to_string(),
            OutputValues::F64(vals) => format!("{:e}", vals[i]),
        })
    }

    /// Serializes in the reference-output file format: `vertex value` lines.
    pub fn to_reference_format(&self) -> String {
        let mut s = String::with_capacity(self.vertex_ids.len() * 12);
        for (i, v) in self.vertex_ids.iter().enumerate() {
            s.push_str(&v.to_string());
            s.push(' ');
            match &self.values {
                OutputValues::I64(vals) => s.push_str(&vals[i].to_string()),
                OutputValues::Id(vals) => s.push_str(&vals[i].to_string()),
                OutputValues::F64(vals) => s.push_str(&format!("{:e}", vals[i])),
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn csr() -> Csr {
        let mut b = GraphBuilder::new(true);
        for v in [10u64, 20, 30] {
            b.add_vertex(v);
        }
        b.add_edge(10, 20);
        b.add_edge(20, 30);
        b.build().unwrap().to_csr()
    }

    #[test]
    fn value_lookup_by_sparse_id() {
        let out = AlgorithmOutput::from_dense(
            Algorithm::Bfs,
            &csr(),
            OutputValues::I64(vec![0, 1, 2]),
        );
        assert_eq!(out.value_string(10).unwrap(), "0");
        assert_eq!(out.value_string(30).unwrap(), "2");
        assert!(out.value_string(99).is_none());
    }

    #[test]
    fn reference_format_lines() {
        let out = AlgorithmOutput::from_dense(
            Algorithm::Wcc,
            &csr(),
            OutputValues::Id(vec![10, 10, 10]),
        );
        let text = out.to_reference_format();
        assert_eq!(text, "10 10\n20 10\n30 10\n");
    }

    #[test]
    fn float_values_use_scientific_notation() {
        let out = AlgorithmOutput::from_dense(
            Algorithm::PageRank,
            &csr(),
            OutputValues::F64(vec![0.25, 0.5, 0.25]),
        );
        assert!(out.to_reference_format().contains("2.5e-1"));
        assert_eq!(out.values.type_tag(), "f64");
        assert_eq!(out.values.len(), 3);
        assert!(!out.values.is_empty());
    }
}
