//! Graph scale and "T-shirt" size classes (Section 2.2.4, Table 2).
//!
//! The scale of a graph is `s(V, E) = log10(|V| + |E|)`, rounded to one
//! decimal place. Scales are grouped into classes spanning 0.5 scale units
//! and labelled with familiar T-shirt sizes; class `L` is the calibration
//! reference (the largest class a state-of-the-art single machine completes
//! BFS on within an hour).

use std::fmt;

/// T-shirt size classes of Table 2.
///
/// The `XXS`/`XXL` variants render as `2XS`/`2XL` like in the paper; the
/// open-ended renewal process (Section 2.4) allows `3XL` and beyond, which
/// this enum represents via [`SizeClass::beyond`] ordering helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// scale < 7.0
    Xxs,
    /// 7.0 ≤ scale < 7.5
    Xs,
    /// 7.5 ≤ scale < 8.0
    S,
    /// 8.0 ≤ scale < 8.5
    M,
    /// 8.5 ≤ scale < 9.0
    L,
    /// 9.0 ≤ scale < 9.5
    Xl,
    /// scale ≥ 9.5
    Xxl,
}

impl SizeClass {
    /// All classes in ascending order.
    pub const ALL: [SizeClass; 7] = [
        SizeClass::Xxs,
        SizeClass::Xs,
        SizeClass::S,
        SizeClass::M,
        SizeClass::L,
        SizeClass::Xl,
        SizeClass::Xxl,
    ];

    /// Class of a given (rounded or unrounded) scale value.
    pub fn of_scale(scale: f64) -> SizeClass {
        if scale < 7.0 {
            SizeClass::Xxs
        } else if scale < 7.5 {
            SizeClass::Xs
        } else if scale < 8.0 {
            SizeClass::S
        } else if scale < 8.5 {
            SizeClass::M
        } else if scale < 9.0 {
            SizeClass::L
        } else if scale < 9.5 {
            SizeClass::Xl
        } else {
            SizeClass::Xxl
        }
    }

    /// The paper's label (`2XS`, `XS`, ..., `2XL`).
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Xxs => "2XS",
            SizeClass::Xs => "XS",
            SizeClass::S => "S",
            SizeClass::M => "M",
            SizeClass::L => "L",
            SizeClass::Xl => "XL",
            SizeClass::Xxl => "2XL",
        }
    }

    /// Inclusive lower bound of the class's scale range
    /// (`f64::NEG_INFINITY` for 2XS).
    pub fn scale_lower_bound(self) -> f64 {
        match self {
            SizeClass::Xxs => f64::NEG_INFINITY,
            SizeClass::Xs => 7.0,
            SizeClass::S => 7.5,
            SizeClass::M => 8.0,
            SizeClass::L => 8.5,
            SizeClass::Xl => 9.0,
            SizeClass::Xxl => 9.5,
        }
    }

    /// True if `self` is strictly larger than `other`.
    pub fn beyond(self, other: SizeClass) -> bool {
        self > other
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// `s(V, E) = log10(|V| + |E|)`, rounded to one decimal place.
///
/// Defined as 0 for the degenerate empty graph.
pub fn scale_of(vertices: u64, edges: u64) -> f64 {
    let total = vertices + edges;
    if total == 0 {
        return 0.0;
    }
    let s = (total as f64).log10();
    (s * 10.0).round() / 10.0
}

/// Convenience: class of a graph given `|V|` and `|E|`.
pub fn class_of(vertices: u64, edges: u64) -> SizeClass {
    SizeClass::of_scale(scale_of(vertices, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_scales() {
        // Values from Tables 3 and 4 of the paper.
        assert_eq!(scale_of(2_390_000, 5_020_000), 6.9); // R1 wiki-talk
        assert_eq!(scale_of(830_000, 17_900_000), 7.3); // R2 kgs
        assert_eq!(scale_of(610_000, 50_900_000), 7.7); // R4 dota-league
        assert_eq!(scale_of(1_670_000, 102_000_000), 8.0); // D100
        assert_eq!(scale_of(4_350_000, 304_000_000), 8.5); // D300
        assert_eq!(scale_of(12_800_000, 1_010_000_000), 9.0); // D1000
        assert_eq!(scale_of(65_600_000, 1_810_000_000), 9.3); // R5 friendster
        assert_eq!(scale_of(2_400_000, 64_200_000), 7.8); // G22
        assert_eq!(scale_of(17_100_000, 524_000_000), 8.7); // G25
    }

    #[test]
    fn class_boundaries_match_table2() {
        assert_eq!(SizeClass::of_scale(6.9), SizeClass::Xxs);
        assert_eq!(SizeClass::of_scale(7.0), SizeClass::Xs);
        assert_eq!(SizeClass::of_scale(7.4), SizeClass::Xs);
        assert_eq!(SizeClass::of_scale(7.5), SizeClass::S);
        assert_eq!(SizeClass::of_scale(8.0), SizeClass::M);
        assert_eq!(SizeClass::of_scale(8.5), SizeClass::L);
        assert_eq!(SizeClass::of_scale(9.0), SizeClass::Xl);
        assert_eq!(SizeClass::of_scale(9.5), SizeClass::Xxl);
        assert_eq!(SizeClass::of_scale(12.0), SizeClass::Xxl);
    }

    #[test]
    fn labels_and_ordering() {
        assert_eq!(SizeClass::Xxs.label(), "2XS");
        assert_eq!(SizeClass::Xxl.label(), "2XL");
        assert!(SizeClass::Xl.beyond(SizeClass::L));
        assert!(!SizeClass::S.beyond(SizeClass::S));
        let mut sorted = SizeClass::ALL;
        sorted.sort();
        assert_eq!(sorted, SizeClass::ALL);
    }

    #[test]
    fn empty_graph_scale() {
        assert_eq!(scale_of(0, 0), 0.0);
        assert_eq!(class_of(0, 0), SizeClass::Xxs);
    }
}
