//! Louvain community detection.
//!
//! Not part of the benchmark workload: the paper uses the Louvain method to
//! *illustrate* the community structure of Datagen graphs generated with
//! different target clustering coefficients (Figure 2). We reproduce that
//! analysis, so we need the algorithm.
//!
//! This is the classic two-phase method (Blondel et al.): greedy local
//! moving to maximize modularity, then graph aggregation, repeated until
//! modularity stops improving. Directed graphs are treated as undirected
//! (reciprocal pairs accumulate weight 2).

use std::collections::HashMap;

use crate::graph::Csr;

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community index (0-based, compacted) per dense vertex.
    pub community: Vec<u32>,
    /// Number of communities found.
    pub community_count: u32,
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Number of aggregation levels performed.
    pub levels: u32,
}

/// Internal weighted undirected multigraph used across aggregation levels.
struct WGraph {
    /// Adjacency: for each node, (neighbor, weight); no self entries —
    /// self-loop weight kept separately.
    adj: Vec<Vec<(u32, f64)>>,
    self_loops: Vec<f64>,
    total_weight: f64, // m = sum of edge weights (each undirected edge once)
}

impl WGraph {
    fn from_csr(csr: &Csr) -> WGraph {
        let n = csr.num_vertices();
        let mut maps: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
        for u in 0..n as u32 {
            for &v in csr.out_neighbors(u) {
                if u == v {
                    continue;
                }
                *maps[u as usize].entry(v).or_insert(0.0) += 1.0;
                if csr.is_directed() {
                    *maps[v as usize].entry(u).or_insert(0.0) += 1.0;
                }
            }
        }
        let mut adj = Vec::with_capacity(n);
        let mut total = 0.0;
        for map in maps {
            let mut row: Vec<(u32, f64)> = map.into_iter().collect();
            row.sort_unstable_by_key(|&(v, _)| v);
            total += row.iter().map(|&(_, w)| w).sum::<f64>();
            adj.push(row);
        }
        WGraph { adj, self_loops: vec![0.0; n], total_weight: total / 2.0 }
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loops[u]
    }
}

/// One pass of greedy local moving. Returns (assignment, improved?).
fn local_moving(g: &WGraph) -> (Vec<u32>, bool) {
    let n = g.n();
    let m2 = 2.0 * g.total_weight;
    let mut community: Vec<u32> = (0..n as u32).collect();
    let degree: Vec<f64> = (0..n).map(|u| g.weighted_degree(u)).collect();
    // Sum of weighted degrees per community.
    let mut comm_tot: Vec<f64> = degree.clone();
    let mut improved_any = false;
    if m2 <= 0.0 {
        return (community, false);
    }
    let mut neigh_weights: HashMap<u32, f64> = HashMap::new();
    loop {
        let mut moves = 0usize;
        for u in 0..n {
            let cu = community[u];
            neigh_weights.clear();
            for &(v, w) in &g.adj[u] {
                *neigh_weights.entry(community[v as usize]).or_insert(0.0) += w;
            }
            // Remove u from its community.
            comm_tot[cu as usize] -= degree[u];
            let w_cu = neigh_weights.get(&cu).copied().unwrap_or(0.0);
            // Best gain; staying put has gain from w_cu.
            let mut best_c = cu;
            let mut best_gain = w_cu - comm_tot[cu as usize] * degree[u] / m2;
            // Deterministic iteration: sort candidate communities.
            let mut cands: Vec<(u32, f64)> =
                neigh_weights.iter().map(|(&c, &w)| (c, w)).collect();
            cands.sort_unstable_by_key(|&(c, _)| c);
            for (c, w) in cands {
                if c == cu {
                    continue;
                }
                let gain = w - comm_tot[c as usize] * degree[u] / m2;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            comm_tot[best_c as usize] += degree[u];
            if best_c != cu {
                community[u] = best_c;
                moves += 1;
                improved_any = true;
            }
        }
        if moves == 0 {
            break;
        }
    }
    (community, improved_any)
}

/// Compacts community ids to `0..k` and returns `k`.
fn compact(community: &mut [u32]) -> u32 {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    for c in community.iter_mut() {
        let next = remap.len() as u32;
        let id = *remap.entry(*c).or_insert(next);
        *c = id;
    }
    remap.len() as u32
}

/// Aggregates `g` by communities.
fn aggregate(g: &WGraph, community: &[u32], k: u32) -> WGraph {
    let mut maps: Vec<HashMap<u32, f64>> = vec![HashMap::new(); k as usize];
    let mut self_loops = vec![0.0f64; k as usize];
    for u in 0..g.n() {
        let cu = community[u];
        self_loops[cu as usize] += g.self_loops[u];
        for &(v, w) in &g.adj[u] {
            let cv = community[v as usize];
            if cu == cv {
                // Each intra-community edge visited twice (u->v and v->u).
                self_loops[cu as usize] += w / 2.0;
            } else {
                *maps[cu as usize].entry(cv).or_insert(0.0) += w;
            }
        }
    }
    let mut adj = Vec::with_capacity(k as usize);
    for map in maps {
        let mut row: Vec<(u32, f64)> = map.into_iter().collect();
        row.sort_unstable_by_key(|&(v, _)| v);
        adj.push(row);
    }
    WGraph { adj, self_loops, total_weight: g.total_weight }
}

/// Modularity of a partition of `g`.
fn modularity(g: &WGraph, community: &[u32], k: u32) -> f64 {
    let m = g.total_weight;
    if m <= 0.0 {
        return 0.0;
    }
    let mut intra = vec![0.0f64; k as usize];
    let mut tot = vec![0.0f64; k as usize];
    for u in 0..g.n() {
        let cu = community[u];
        tot[cu as usize] += g.weighted_degree(u);
        intra[cu as usize] += 2.0 * g.self_loops[u];
        for &(v, w) in &g.adj[u] {
            if community[v as usize] == cu {
                intra[cu as usize] += w;
            }
        }
    }
    (0..k as usize)
        .map(|c| intra[c] / (2.0 * m) - (tot[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Runs Louvain to convergence on the undirected view of `csr`.
pub fn louvain(csr: &Csr) -> LouvainResult {
    let n = csr.num_vertices();
    let mut g = WGraph::from_csr(csr);
    // membership[v] = current community of original vertex v.
    let mut membership: Vec<u32> = (0..n as u32).collect();
    let mut levels = 0u32;
    loop {
        let (mut community, improved) = local_moving(&g);
        let k = compact(&mut community);
        if !improved || k as usize == g.n() {
            let q = modularity(&g, &community, k);
            // Fold the last (identity-ish) level in.
            for m in membership.iter_mut() {
                *m = community[*m as usize];
            }
            let mut final_m = membership.clone();
            let kk = compact(&mut final_m);
            return LouvainResult {
                community: final_m,
                community_count: kk,
                modularity: q,
                levels,
            };
        }
        levels += 1;
        for m in membership.iter_mut() {
            *m = community[*m as usize];
        }
        g = aggregate(&g, &community, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn two_cliques(bridge: bool) -> Csr {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(10);
        for i in 0..5u64 {
            for j in (i + 1)..5 {
                b.add_edge(i, j);
                b.add_edge(i + 5, j + 5);
            }
        }
        if bridge {
            b.add_edge(4, 5);
        }
        b.build().unwrap().to_csr()
    }

    #[test]
    fn separates_two_cliques() {
        let r = louvain(&two_cliques(true));
        assert_eq!(r.community_count, 2);
        for i in 0..5 {
            assert_eq!(r.community[i], r.community[0]);
            assert_eq!(r.community[i + 5], r.community[5]);
        }
        assert_ne!(r.community[0], r.community[5]);
        assert!(r.modularity > 0.3, "modularity {} too low", r.modularity);
    }

    #[test]
    fn disconnected_cliques_high_modularity() {
        let r = louvain(&two_cliques(false));
        assert_eq!(r.community_count, 2);
        assert!(r.modularity > 0.45);
    }

    #[test]
    fn singleton_graph() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        let r = louvain(&b.build().unwrap().to_csr());
        assert_eq!(r.community_count, 3);
        assert_eq!(r.modularity, 0.0);
    }

    #[test]
    fn ring_of_cliques_matches_clique_count() {
        // 4 cliques of 4 vertices, ring-connected: Louvain should find 4.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(16);
        for c in 0..4u64 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j);
                }
            }
            b.add_edge(base + 3, (base + 4) % 16);
        }
        let r = louvain(&b.build().unwrap().to_csr());
        assert_eq!(r.community_count, 4);
        assert!(r.modularity > 0.5);
    }

    #[test]
    fn directed_graph_treated_as_undirected() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 3);
        let r = louvain(&b.build().unwrap().to_csr());
        assert_eq!(r.community_count, 2);
    }
}
