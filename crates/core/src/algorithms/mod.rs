//! Reference implementations of the Graphalytics core algorithms
//! (Section 2.2.3).
//!
//! These are deliberately simple, sequential, and obviously correct — the
//! benchmark defines platform correctness as *output equivalence with these
//! implementations*. The platform engines in `graphalytics-engines` are
//! validated against them.
//!
//! [`louvain()`] is not part of the workload; it reproduces the community
//! detection used to illustrate the Datagen clustering-coefficient feature
//! (Figure 2 of the paper).

pub mod bfs;
pub mod cdlp;
pub mod lcc;
pub mod louvain;
pub mod pagerank;
pub mod sssp;
pub mod wcc;

pub use bfs::bfs;
pub use cdlp::cdlp;
pub use lcc::lcc;
pub use louvain::{louvain, LouvainResult};
pub use pagerank::pagerank;
pub use sssp::sssp;
pub use wcc::wcc;

use crate::error::{Error, Result};
use crate::graph::Csr;
use crate::output::{AlgorithmOutput, OutputValues};
use crate::params::AlgorithmParams;
use crate::Algorithm;

/// Runs any core algorithm by its [`Algorithm`] tag with the given
/// parameters, producing an [`AlgorithmOutput`] suitable for validation.
///
/// This is exactly the entry point the harness uses to produce reference
/// outputs.
pub fn run_reference(csr: &Csr, algorithm: Algorithm, params: &AlgorithmParams) -> Result<AlgorithmOutput> {
    let values = match algorithm {
        Algorithm::Bfs => {
            let root = resolve_root(csr, params)?;
            OutputValues::I64(bfs(csr, root))
        }
        Algorithm::PageRank => {
            OutputValues::F64(pagerank(csr, params.pagerank_iterations, params.damping_factor))
        }
        Algorithm::Wcc => OutputValues::Id(wcc(csr)),
        Algorithm::Cdlp => OutputValues::Id(cdlp(csr, params.cdlp_iterations)),
        Algorithm::Lcc => OutputValues::F64(lcc(csr)),
        Algorithm::Sssp => {
            if !csr.is_weighted() {
                return Err(Error::InvalidParameters(
                    "SSSP requires a weighted graph".into(),
                ));
            }
            let root = resolve_root(csr, params)?;
            OutputValues::F64(sssp(csr, root))
        }
    };
    Ok(AlgorithmOutput::from_dense(algorithm, csr, values))
}

/// Resolves the sparse root id from the parameters into a dense index.
pub fn resolve_root(csr: &Csr, params: &AlgorithmParams) -> Result<u32> {
    let root = params
        .source_vertex
        .ok_or_else(|| Error::InvalidParameters("missing source vertex".into()))?;
    csr.index_of(root)
        .ok_or_else(|| Error::InvalidParameters(format!("source vertex {root} not in graph")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::params::AlgorithmParams;

    fn weighted_csr() -> Csr {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.set_weighted(true);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 2.0);
        b.build().unwrap().to_csr()
    }

    #[test]
    fn run_reference_dispatches_all() {
        let csr = weighted_csr();
        let params = AlgorithmParams { source_vertex: Some(0), ..AlgorithmParams::default() };
        for alg in Algorithm::ALL {
            let out = run_reference(&csr, alg, &params).unwrap();
            assert_eq!(out.algorithm, alg);
            assert_eq!(out.values.len(), 3);
        }
    }

    #[test]
    fn missing_root_is_parameter_error() {
        let csr = weighted_csr();
        let params = AlgorithmParams::default();
        assert!(run_reference(&csr, Algorithm::Bfs, &params).is_err());
        let bad = AlgorithmParams { source_vertex: Some(77), ..AlgorithmParams::default() };
        assert!(run_reference(&csr, Algorithm::Bfs, &bad).is_err());
    }

    #[test]
    fn sssp_requires_weights() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        b.add_edge(0, 1);
        let csr = b.build().unwrap().to_csr();
        let params = AlgorithmParams { source_vertex: Some(0), ..AlgorithmParams::default() };
        assert!(run_reference(&csr, Algorithm::Sssp, &params).is_err());
    }
}
