//! Local clustering coefficient (LCC) reference implementation.
//!
//! For each vertex `v`, the ratio between the number of edges among `v`'s
//! neighbours and the maximum possible number of such edges:
//!
//! ```text
//! N(v)   = { u : (v,u) ∈ E or (u,v) ∈ E }          (self excluded)
//! lcc(v) = |{(u,w) : u,w ∈ N(v), u≠w, (u,w) ∈ E}| / (|N(v)|·(|N(v)|-1))
//! ```
//!
//! Directed edges in the numerator are counted per direction; an undirected
//! graph behaves as if each edge were a reciprocal directed pair, which
//! yields the familiar `triangles / (d choose 2)` form. Vertices with fewer
//! than two neighbours have LCC 0.
//!
//! The paper notes LCC is by far the most demanding algorithm (Section 4.2):
//! its cost grows with the *square* of vertex degrees, which this
//! implementation exhibits faithfully.

use crate::graph::Csr;

/// Computes the local clustering coefficient of every vertex.
pub fn lcc(csr: &Csr) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut out = vec![0.0f64; n];
    for v in 0..n as u32 {
        let neigh = csr.neighborhood_union(v);
        let d = neigh.len();
        if d < 2 {
            continue;
        }
        // Count directed edges among neighbours. For each ordered pair
        // (u, w) we test u -> w via binary search over u's sorted out-row;
        // for undirected graphs this counts each neighbour edge twice,
        // matching the (d·(d-1)) denominator.
        let mut links = 0u64;
        for &u in &neigh {
            // Intersect u's out-neighbours with N(v): both sorted.
            let ou = csr.out_neighbors(u);
            let mut i = 0usize;
            let mut j = 0usize;
            while i < ou.len() && j < neigh.len() {
                match ou[i].cmp(&neigh[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if ou[i] != u {
                            links += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out[v as usize] = links as f64 / (d as f64 * (d as f64 - 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn undirected_triangle_is_one() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(lcc(&csr), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn undirected_path_is_zero() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(lcc(&csr), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn half_open_square() {
        // Square 0-1-2-3 plus diagonal 0-2.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        b.add_edge(0, 2);
        let csr = b.build().unwrap().to_csr();
        let v = lcc(&csr);
        // Vertices 1 and 3 have neighbours {0,2} which are connected: 1.0.
        assert_eq!(v[1], 1.0);
        assert_eq!(v[3], 1.0);
        // Vertices 0 and 2 have 3 neighbours with 2 undirected edges among
        // them (1-2 and 2-3 for vertex 0): 4 directed links / (3·2) = 2/3.
        assert!((v[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((v[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn directed_counts_per_direction() {
        // v=0 with neighbours 1, 2; only 1 -> 2 exists (not 2 -> 1).
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        let v = lcc(&csr);
        // d(0)=2, one directed link among neighbours: 1/(2·1) = 0.5.
        assert!((v[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reciprocal_directed_pair_counts_twice() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        let csr = b.build().unwrap().to_csr();
        let v = lcc(&csr);
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_below_two_is_zero() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(2);
        b.add_edge(0, 1);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(lcc(&csr), vec![0.0, 0.0]);
    }
}
