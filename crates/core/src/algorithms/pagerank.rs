//! PageRank reference implementation [Page et al., 1999].
//!
//! Runs a *fixed* number of synchronous iterations (the iteration count is a
//! benchmark parameter, Section 2.5 "algorithm parameters for each graph").
//! The rank of dangling vertices (out-degree 0) is redistributed uniformly
//! over all vertices each iteration, so total rank mass is conserved:
//!
//! ```text
//! PR(v) = (1-d)/|V| + d * ( Σ_{u -> v} PR(u)/outdeg(u)  +  dangling/|V| )
//! ```
//!
//! Undirected graphs treat each edge as two directed edges (so `outdeg` is
//! the full degree and ranks flow both ways).

use crate::graph::Csr;

/// Computes `iterations` rounds of PageRank with damping factor `damping`.
///
/// Vertices start at `1/|V|`. Output sums to 1 (within float error).
pub fn pagerank(csr: &Csr, iterations: u32, damping: f64) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0f64;
        for (u, r) in rank.iter().enumerate() {
            if csr.out_degree(u as u32) == 0 {
                dangling += r;
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for v in 0..n as u32 {
            let mut sum = 0.0f64;
            for &u in csr.in_neighbors(v) {
                sum += rank[u as usize] / csr.out_degree(u) as f64;
            }
            next[v as usize] = base + damping * sum;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn total(ranks: &[f64]) -> f64 {
        ranks.iter().sum()
    }

    #[test]
    fn mass_conservation_with_dangling() {
        // 0 -> 1, 1 has no out edges (dangling).
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        b.add_edge(0, 1);
        let csr = b.build().unwrap().to_csr();
        let r = pagerank(&csr, 20, 0.85);
        assert!((total(&r) - 1.0).abs() < 1e-12);
        assert!(r[1] > r[0], "sink should accumulate rank");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        for i in 0..4u64 {
            b.add_edge(i, (i + 1) % 4);
        }
        let csr = b.build().unwrap().to_csr();
        let r = pagerank(&csr, 30, 0.85);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn star_hub_has_highest_rank() {
        // Spokes all point at the hub.
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(5);
        for i in 1..5u64 {
            b.add_edge(i, 0);
        }
        let csr = b.build().unwrap().to_csr();
        let r = pagerank(&csr, 15, 0.85);
        for i in 1..5 {
            assert!(r[0] > r[i]);
        }
        assert!((total(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_returns_uniform() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(pagerank(&csr, 0, 0.85), vec![0.25; 4]);
    }

    #[test]
    fn undirected_degree_weighted() {
        // Path 0 - 1 - 2: middle vertex has degree 2.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        let r = pagerank(&csr, 50, 0.85);
        assert!((total(&r) - 1.0).abs() < 1e-12);
        assert!(r[1] > r[0]);
        assert!((r[0] - r[2]).abs() < 1e-12, "ends are symmetric");
    }
}
