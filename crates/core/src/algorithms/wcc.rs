//! Weakly connected components reference implementation.
//!
//! Every vertex is labelled with the smallest *sparse vertex id* in its
//! weakly connected component (edge direction ignored). Using the minimum id
//! makes the reference output deterministic; the validator additionally
//! accepts any consistent relabeling (see `validation`).

use std::collections::VecDeque;

use crate::graph::{Csr, VertexId};

/// Computes per-vertex component labels (minimum sparse id in component).
pub fn wcc(csr: &Csr) -> Vec<VertexId> {
    let n = csr.num_vertices();
    let mut label = vec![VertexId::MAX; n];
    let mut queue = VecDeque::new();
    // Dense indices are sorted by sparse id, so scanning in dense order
    // guarantees the first unvisited vertex of a component has the minimum id.
    for s in 0..n as u32 {
        if label[s as usize] != VertexId::MAX {
            continue;
        }
        let comp = csr.id_of(s);
        label[s as usize] = comp;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let visit = |v: u32, label: &mut Vec<VertexId>, queue: &mut VecDeque<u32>| {
                if label[v as usize] == VertexId::MAX {
                    label[v as usize] = comp;
                    queue.push_back(v);
                }
            };
            for &v in csr.out_neighbors(u) {
                visit(v, &mut label, &mut queue);
            }
            if csr.is_directed() {
                for &v in csr.in_neighbors(u) {
                    visit(v, &mut label, &mut queue);
                }
            }
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn two_components_min_label() {
        let mut b = GraphBuilder::new(false);
        for v in [3u64, 5, 8, 10, 11] {
            b.add_vertex(v);
        }
        b.add_edge(5, 3);
        b.add_edge(10, 11);
        let csr = b.build().unwrap().to_csr();
        let labels = wcc(&csr);
        // dense order of ids: 3,5,8,10,11
        assert_eq!(labels, vec![3, 3, 8, 10, 10]);
    }

    #[test]
    fn direction_is_ignored() {
        // 1 -> 0 and 1 -> 2: weakly one component even though not strongly.
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(wcc(&csr), vec![0, 0, 0]);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(wcc(&csr), vec![0, 1, 2]);
    }
}
