//! Community detection using label propagation (CDLP), reference
//! implementation.
//!
//! This is the algorithm of Raghavan et al. \[34\] modified to be parallel and
//! deterministic \[24\], exactly as prescribed by the benchmark:
//!
//! * labels are initialized to the vertex's own (sparse) id;
//! * updates are *synchronous* — iteration `i+1` sees only iteration `i`'s
//!   labels, making the algorithm order-independent and parallelizable;
//! * each vertex adopts the most frequent label among its neighbours, ties
//!   broken by the *smallest* label, which makes the result deterministic;
//! * a fixed number of iterations is performed (a benchmark parameter).
//!
//! On directed graphs each in-edge and each out-edge contributes one vote,
//! so a reciprocal pair (u,v),(v,u) counts twice, per the LDBC specification.

use std::collections::HashMap;

use crate::graph::{Csr, VertexId};

/// Runs `iterations` rounds of deterministic synchronous label propagation.
pub fn cdlp(csr: &Csr, iterations: u32) -> Vec<VertexId> {
    let n = csr.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as u32).map(|u| csr.id_of(u)).collect();
    let mut next = vec![0 as VertexId; n];
    let mut freq: HashMap<VertexId, u32> = HashMap::new();
    for _ in 0..iterations {
        for u in 0..n as u32 {
            freq.clear();
            for &v in csr.out_neighbors(u) {
                *freq.entry(labels[v as usize]).or_insert(0) += 1;
            }
            if csr.is_directed() {
                for &v in csr.in_neighbors(u) {
                    *freq.entry(labels[v as usize]).or_insert(0) += 1;
                }
            }
            next[u as usize] = select_label(&freq).unwrap_or(labels[u as usize]);
        }
        std::mem::swap(&mut labels, &mut next);
    }
    labels
}

/// The most frequent label, ties broken towards the smallest label.
/// `None` when the vertex has no neighbours (keeps its own label).
pub fn select_label(freq: &HashMap<VertexId, u32>) -> Option<VertexId> {
    let mut best: Option<(u32, VertexId)> = None;
    for (&label, &count) in freq {
        best = Some(match best {
            None => (count, label),
            Some((bc, bl)) => {
                if count > bc || (count == bc && label < bl) {
                    (count, label)
                } else {
                    (bc, bl)
                }
            }
        });
    }
    best.map(|(_, l)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn two_cliques_converge_to_two_communities() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(8);
        // Clique {0..3}, clique {4..7}, single bridge 3-4.
        for i in 0..4u64 {
            for j in (i + 1)..4 {
                b.add_edge(i, j);
                b.add_edge(i + 4, j + 4);
            }
        }
        b.add_edge(3, 4);
        let csr = b.build().unwrap().to_csr();
        let labels = cdlp(&csr, 10);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn synchronous_single_iteration() {
        // Path 0-1-2. After one synchronous round each vertex takes the
        // smallest most-frequent *initial* neighbour label.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(cdlp(&csr, 1), vec![1, 0, 1]);
    }

    #[test]
    fn isolated_vertex_keeps_own_label() {
        let mut b = GraphBuilder::new(true);
        for v in [7u64, 9] {
            b.add_vertex(v);
        }
        b.add_edge(7, 9);
        let csr = b.build().unwrap().to_csr();
        let labels = cdlp(&csr, 3);
        // 7 and 9 exchange labels each sync round (both see only the other).
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn tie_breaks_to_smallest_label() {
        let mut freq = HashMap::new();
        freq.insert(5, 2u32);
        freq.insert(3, 2);
        freq.insert(9, 1);
        assert_eq!(select_label(&freq), Some(3));
        assert_eq!(select_label(&HashMap::new()), None);
    }

    #[test]
    fn directed_counts_both_directions() {
        // 0 <-> 1 reciprocal, 2 -> 1 single. Labels init 0,1,2.
        // Vertex 1 sees: out {0}, in {0, 2} => label 0 twice, 2 once -> 0.
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 1);
        let csr = b.build().unwrap().to_csr();
        let labels = cdlp(&csr, 1);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[0], 1); // 0 sees only 1 (twice)
        assert_eq!(labels[2], 1); // 2 sees only 1
    }
}
