//! Single-source shortest paths (SSSP) reference implementation.
//!
//! Dijkstra's algorithm over non-negative double-precision edge weights,
//! following outgoing edges. Unreachable vertices get `f64::INFINITY`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::Csr;

/// Distance assigned to unreachable vertices.
pub const UNREACHABLE: f64 = f64::INFINITY;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by vertex for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes shortest-path distances from dense index `root`.
pub fn sssp(csr: &Csr, root: u32) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut heap = BinaryHeap::new();
    dist[root as usize] = 0.0;
    heap.push(HeapEntry { dist: 0.0, vertex: root });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let targets = csr.out_neighbors(u);
        let weights = csr.out_weights(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, vertex: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn prefers_cheaper_longer_path() {
        // 0 ->(5) 2 and 0 ->(1) 1 ->(1) 2.
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(3);
        b.add_weighted_edge(0, 2, 5.0);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 1.0);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(sssp(&csr, 0), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn unreachable_is_infinity() {
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(3);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(2, 0, 1.0);
        let csr = b.build().unwrap().to_csr();
        let d = sssp(&csr, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn undirected_weights_flow_both_ways() {
        let mut b = GraphBuilder::new(false);
        b.set_weighted(true);
        b.add_vertex_range(3);
        b.add_weighted_edge(2, 1, 0.5);
        b.add_weighted_edge(1, 0, 0.25);
        let csr = b.build().unwrap().to_csr();
        let d = sssp(&csr, 2);
        assert_eq!(d, vec![0.75, 0.5, 0.0]);
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(2);
        b.add_weighted_edge(0, 1, 0.0);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(sssp(&csr, 0), vec![0.0, 0.0]);
    }

    #[test]
    fn dense_random_graph_matches_bellman_ford() {
        // Cross-check Dijkstra against a naive Bellman–Ford on a small
        // deterministic graph.
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(8);
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        let mut edges = std::collections::HashSet::new();
        for _ in 0..24 {
            let s = next() % 8;
            let d = next() % 8;
            if s != d && edges.insert((s, d)) {
                b.add_weighted_edge(s, d, (next() % 100) as f64 / 10.0);
            }
        }
        let g = b.build().unwrap();
        let csr = g.to_csr();
        let dij = sssp(&csr, 0);

        let mut bf = [UNREACHABLE; 8];
        bf[0] = 0.0;
        for _ in 0..8 {
            for e in g.edges() {
                let (s, d) = (e.src as usize, e.dst as usize);
                if bf[s] + e.weight < bf[d] {
                    bf[d] = bf[s] + e.weight;
                }
            }
        }
        for i in 0..8 {
            if bf[i].is_infinite() {
                assert!(dij[i].is_infinite());
            } else {
                assert!((dij[i] - bf[i]).abs() < 1e-9);
            }
        }
    }
}
