//! Breadth-first search reference implementation.
//!
//! For every vertex, the minimum number of hops required to reach it from the
//! source vertex, following *outgoing* edges (undirected graphs treat every
//! edge as bidirectional). Unreachable vertices are assigned `i64::MAX`,
//! matching the reference-output convention of the benchmark.

use std::collections::VecDeque;

use crate::graph::Csr;

/// Depth assigned to unreachable vertices.
pub const UNREACHABLE: i64 = i64::MAX;

/// Computes BFS depths from dense vertex index `root`.
pub fn bfs(csr: &Csr, root: u32) -> Vec<i64> {
    let n = csr.num_vertices();
    let mut depth = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let next = depth[u as usize] + 1;
        for &v in csr.out_neighbors(u) {
            if depth[v as usize] == UNREACHABLE {
                depth[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn directed_chain() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 2); // 3 unreachable from 0
        let csr = b.build().unwrap().to_csr();
        assert_eq!(bfs(&csr, 0), vec![0, 1, 2, UNREACHABLE]);
    }

    #[test]
    fn undirected_edges_are_bidirectional() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(3);
        b.add_edge(2, 1);
        b.add_edge(1, 0);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(bfs(&csr, 2), vec![2, 1, 0]);
    }

    #[test]
    fn shortest_of_multiple_paths() {
        // 0 -> 1 -> 2 -> 3 and 0 -> 3 directly.
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(0, 3);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(bfs(&csr, 0)[3], 1);
    }

    #[test]
    fn direction_respected() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        b.add_edge(0, 1);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(bfs(&csr, 1), vec![UNREACHABLE, 0]);
    }
}
