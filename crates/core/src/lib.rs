//! # graphalytics-core
//!
//! The benchmark *specification* layer of the LDBC Graphalytics reproduction:
//! everything Section 2.2 of the paper defines.
//!
//! This crate provides:
//!
//! * the [graph data model](graph) — sparse-id directed/undirected graphs with
//!   optional edge weights, an edge-list [`graph::Graph`] and a
//!   compressed-sparse-row [`graph::Csr`] form, plus EVL file I/O;
//! * the six core [`algorithms`] (BFS, PageRank, WCC, CDLP, LCC, SSSP) as
//!   sequential *reference implementations* whose outputs define correctness,
//!   plus Louvain community detection used by the Datagen evaluation (Fig. 2);
//! * [`output`] and [`validation`] — typed per-vertex outputs and the
//!   exact/epsilon equivalence rules used to validate platform results;
//! * [`scale`] — the `s = log10(|V|+|E|)` scale function and the "T-shirt"
//!   size classes of Table 2;
//! * [`datasets`] — the registry of the paper's real (Table 3) and synthetic
//!   (Table 4) datasets together with structural traits used by proxies and
//!   by the analytic performance model;
//! * [`params`] — per-dataset algorithm parameters (BFS/SSSP roots, PageRank
//!   and CDLP iteration counts) as prescribed by the benchmark description;
//! * [`pool`] — the shared execution runtime: a persistent, deterministic
//!   worker pool used by the parallel CSR build, the edge-file loader, and
//!   (through `graphalytics-engines`) all six platform engines.
//!
//! Everything downstream (generators, engines, harness) builds on this crate.

pub mod algorithms;
pub mod datasets;
pub mod error;
pub mod fault;
pub mod graph;
pub mod output;
pub mod params;
pub mod pool;
pub mod scale;
pub mod validation;

pub use error::{Error, Result};
pub use fault::{CancelToken, FaultKind, FaultPlan, FaultScript, FaultSite, Injection};
pub use graph::{
    random_batch, ApplyOutcome, Csr, DeltaConfig, DeltaStats, Edge, Graph, GraphBuilder,
    MutableGraph, MutationBatch, ShardCsr, ShardedCsr, VertexId,
};
pub use pool::WorkerPool;
pub use output::{AlgorithmOutput, OutputValues};
pub use scale::{scale_of, SizeClass};

/// The algorithms of the Graphalytics workload (Section 2.2.3).
///
/// Five core algorithms operate on unweighted graphs and one (SSSP) on
/// weighted graphs. The set was chosen by the paper's two-stage,
/// survey-driven selection process (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Breadth-first search: minimum hop count from a source vertex.
    Bfs,
    /// PageRank: vertex "popularity" by influence propagation.
    PageRank,
    /// Weakly connected components: component membership ignoring direction.
    Wcc,
    /// Community detection using (deterministic, parallel) label propagation.
    Cdlp,
    /// Local clustering coefficient: per-vertex neighbourhood density.
    Lcc,
    /// Single-source shortest paths over `f64` edge weights.
    Sssp,
}

impl Algorithm {
    /// All six algorithms in the canonical order used by the paper's figures.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Bfs,
        Algorithm::PageRank,
        Algorithm::Wcc,
        Algorithm::Cdlp,
        Algorithm::Lcc,
        Algorithm::Sssp,
    ];

    /// Lower-case acronym as used throughout the paper (`bfs`, `pr`, ...).
    pub fn acronym(self) -> &'static str {
        match self {
            Algorithm::Bfs => "bfs",
            Algorithm::PageRank => "pr",
            Algorithm::Wcc => "wcc",
            Algorithm::Cdlp => "cdlp",
            Algorithm::Lcc => "lcc",
            Algorithm::Sssp => "sssp",
        }
    }

    /// Parses an acronym (case-insensitive) back into an [`Algorithm`].
    pub fn from_acronym(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "bfs" => Some(Algorithm::Bfs),
            "pr" | "pagerank" => Some(Algorithm::PageRank),
            "wcc" => Some(Algorithm::Wcc),
            "cdlp" => Some(Algorithm::Cdlp),
            "lcc" => Some(Algorithm::Lcc),
            "sssp" => Some(Algorithm::Sssp),
            _ => None,
        }
    }

    /// Whether the algorithm consumes edge weights (only SSSP does).
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// Whether the algorithm needs a source vertex parameter.
    pub fn needs_root(self) -> bool {
        matches!(self, Algorithm::Bfs | Algorithm::Sssp)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.acronym())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acronym_round_trip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::from_acronym(alg.acronym()), Some(alg));
        }
        assert_eq!(Algorithm::from_acronym("PageRank"), Some(Algorithm::PageRank));
        assert_eq!(Algorithm::from_acronym("nope"), None);
    }

    #[test]
    fn weight_and_root_requirements() {
        assert!(Algorithm::Sssp.needs_weights());
        assert!(!Algorithm::Bfs.needs_weights());
        assert!(Algorithm::Bfs.needs_root());
        assert!(Algorithm::Sssp.needs_root());
        assert!(!Algorithm::PageRank.needs_root());
    }

    #[test]
    fn display_matches_acronym() {
        assert_eq!(Algorithm::Cdlp.to_string(), "cdlp");
    }
}
