//! Incremental construction of [`Graph`]s with invariant enforcement.

use super::{Edge, Graph, VertexId};
use crate::error::{Error, Result};

/// Builds a [`Graph`] while enforcing the Graphalytics data-model rules:
/// unique vertices, unique edges between distinct declared vertices.
///
/// Generators call [`add_vertex`](GraphBuilder::add_vertex) /
/// [`add_edge`](GraphBuilder::add_edge) freely; [`build`](GraphBuilder::build)
/// sorts, deduplicates where permitted, and verifies the result.
///
/// ```
/// use graphalytics_core::graph::{Graph, GraphBuilder};
/// let mut b = Graph::builder(false);
/// b.add_vertex(10);
/// b.add_vertex(20);
/// b.add_edge(20, 10); // canonicalized to (10, 20)
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.edges()[0].src, 10);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    weighted: bool,
    vertices: Vec<VertexId>,
    edges: Vec<Edge>,
    /// When true, duplicate edges are silently dropped on `build` instead of
    /// being reported as errors (generators use this; file loaders do not).
    dedup: bool,
}

impl GraphBuilder {
    /// Creates an empty builder for a directed or undirected graph.
    pub fn new(directed: bool) -> Self {
        GraphBuilder { directed, weighted: false, vertices: Vec::new(), edges: Vec::new(), dedup: false }
    }

    /// Marks the graph as weighted (edges carry meaningful weights).
    pub fn set_weighted(&mut self, weighted: bool) -> &mut Self {
        self.weighted = weighted;
        self
    }

    /// Enables silent deduplication of repeated edges at `build` time.
    pub fn dedup_edges(&mut self, dedup: bool) -> &mut Self {
        self.dedup = dedup;
        self
    }

    /// Pre-allocates space for `v` vertices and `e` edges.
    pub fn reserve(&mut self, v: usize, e: usize) -> &mut Self {
        self.vertices.reserve(v);
        self.edges.reserve(e);
        self
    }

    /// Declares a vertex. Duplicates are tolerated and removed at build time.
    pub fn add_vertex(&mut self, v: VertexId) -> &mut Self {
        self.vertices.push(v);
        self
    }

    /// Declares the contiguous vertex range `0..n`.
    pub fn add_vertex_range(&mut self, n: u64) -> &mut Self {
        self.vertices.extend(0..n);
        self
    }

    /// Adds an unweighted edge (weight 1.0). Undirected edges are
    /// canonicalized to `src < dst`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.add_weighted_edge(src, dst, 1.0)
    }

    /// Adds a weighted edge.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: f64) -> &mut Self {
        let e = if self.directed || src < dst {
            Edge::weighted(src, dst, weight)
        } else {
            Edge::weighted(dst, src, weight)
        };
        self.edges.push(e);
        self
    }

    /// Adds an edge, failing immediately on a self loop. Used by
    /// [`Graph::as_undirected`] where duplicates are expected and dropped.
    pub fn try_add_edge(&mut self, e: Edge) -> Result<()> {
        if e.src == e.dst {
            return Err(Error::InvalidGraph(format!("self loop at {}", e.src)));
        }
        self.dedup = true;
        self.add_weighted_edge(e.src, e.dst, e.weight);
        Ok(())
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, checking all invariants.
    pub fn build(self) -> Result<Graph> {
        self.build_with(&crate::pool::WorkerPool::inline())
    }

    /// Finalizes the graph on a worker pool: the edge sort — the dominant
    /// cost for generator-sized graphs — runs as parallel chunk sorts plus
    /// a k-way merge. The total `(src, dst, weight)` sort key makes the
    /// result identical for every pool width (including [`build`](Self::build)).
    pub fn build_with(mut self, pool: &crate::pool::WorkerPool) -> Result<Graph> {
        self.normalize(pool)?;
        let g = Graph::from_parts(self.directed, self.weighted, self.vertices, self.edges);
        g.validate()?;
        Ok(g)
    }

    /// Finalizes without the final `validate` pass; callers that just
    /// normalized trusted input (e.g. [`Graph::as_undirected`]) use this to
    /// avoid an O(|E|) re-check.
    pub(crate) fn build_unchecked(mut self) -> Graph {
        self.normalize(&crate::pool::WorkerPool::inline())
            .expect("normalize cannot fail when dedup is enabled");
        Graph::from_parts(self.directed, self.weighted, self.vertices, self.edges)
    }

    fn normalize(&mut self, pool: &crate::pool::WorkerPool) -> Result<()> {
        self.vertices.sort_unstable();
        self.vertices.dedup();
        // Sort edges by the *total* key (src, dst, weight) for a
        // deterministic layout independent of insertion order and pool
        // width, and for cheap dedup (which keeps the smallest weight).
        // The weight component uses the sign-flipped bit encoding whose
        // integer order matches `f64::total_cmp`, so negative weights
        // (rejected later by `validate`, but representable here) still
        // sort numerically.
        fn weight_key(w: f64) -> u64 {
            let bits = w.to_bits();
            if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            }
        }
        crate::pool::par_sort_by_key(pool, &mut self.edges, |e| {
            (e.src, e.dst, weight_key(e.weight))
        });
        if self.dedup {
            self.edges.dedup_by(|a, b| a.src == b.src && a.dst == b.dst);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_drops_duplicates() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.dedup_edges(true);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_without_dedup_is_error() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn undirected_canonicalization_dedups_reciprocal() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(2);
        b.dedup_edges(true);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn vertices_sorted_and_unique() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex(5);
        b.add_vertex(1);
        b.add_vertex(5);
        let g = b.build().unwrap();
        assert_eq!(g.vertices(), &[1, 5]);
    }

    #[test]
    fn build_with_matches_sequential_build() {
        let pool = crate::pool::WorkerPool::new(4);
        let make = || {
            let mut b = GraphBuilder::new(true);
            b.add_vertex_range(64);
            b.set_weighted(true);
            b.dedup_edges(true);
            let mut x = 9u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let (s, d) = ((x >> 33) % 64, (x >> 10) % 64);
                if s != d {
                    b.add_weighted_edge(s, d, ((x >> 3) % 11) as f64);
                }
            }
            b
        };
        let seq = make().build().unwrap();
        let par = make().build_with(&pool).unwrap();
        assert_eq!(seq.edges(), par.edges());
        assert_eq!(seq.vertices(), par.vertices());
    }

    #[test]
    fn edges_sorted_deterministically() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(3, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let pairs: Vec<_> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 1)]);
    }
}
