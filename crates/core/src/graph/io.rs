//! EVL graph file I/O — the exchange format of the Graphalytics benchmark.
//!
//! A dataset is a pair of text files:
//!
//! * a **vertex file** (`.v`): one vertex id per line;
//! * an **edge file** (`.e`): `source target` per line, plus a third
//!   whitespace-separated column with the `f64` weight for weighted graphs.
//!
//! Lines are `\n`-terminated; blank lines and `#` comments are permitted.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use super::{Graph, GraphBuilder, VertexId};
use crate::error::{Error, Result};
use crate::pool::WorkerPool;

/// Reads a vertex file into sorted, deduplicated ids.
pub fn read_vertex_file(path: &Path) -> Result<Vec<VertexId>> {
    let file = std::fs::File::open(path)?;
    parse_vertices(BufReader::new(file), &path.display().to_string())
}

/// Reads an edge file, appending edges to `builder`.
///
/// `weighted` selects whether a third column is required (`true`) or
/// forbidden (`false`).
pub fn read_edge_file(path: &Path, builder: &mut GraphBuilder, weighted: bool) -> Result<()> {
    let file = std::fs::File::open(path)?;
    parse_edges(BufReader::new(file), &path.display().to_string(), builder, weighted)
}

/// Reads an edge file on a worker pool: the file is read into memory,
/// split into newline-aligned chunks, parsed in parallel, and appended
/// to `builder` in chunk order — byte-for-byte the same edges (and the
/// same first-error line number) as [`read_edge_file`].
pub fn read_edge_file_with(
    path: &Path,
    builder: &mut GraphBuilder,
    weighted: bool,
    pool: &WorkerPool,
) -> Result<()> {
    let text = std::fs::read_to_string(path)?;
    parse_edges_chunked(&text, &path.display().to_string(), builder, weighted, pool)
}

/// Loads a full graph from a vertex file and an edge file.
pub fn read_graph(vertex_path: &Path, edge_path: &Path, directed: bool, weighted: bool) -> Result<Graph> {
    read_graph_with(vertex_path, edge_path, directed, weighted, &WorkerPool::inline())
}

/// Loads a full graph with parallel edge parsing and a parallel build —
/// the upload path the harness and service use.
pub fn read_graph_with(
    vertex_path: &Path,
    edge_path: &Path,
    directed: bool,
    weighted: bool,
    pool: &WorkerPool,
) -> Result<Graph> {
    let mut builder = GraphBuilder::new(directed);
    builder.set_weighted(weighted);
    for v in read_vertex_file(vertex_path)? {
        builder.add_vertex(v);
    }
    read_edge_file_with(edge_path, &mut builder, weighted, pool)?;
    builder.build_with(pool)
}

/// Writes the vertex file for `g`.
pub fn write_vertex_file(g: &Graph, path: &Path) -> Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for v in g.vertices() {
        writeln!(out, "{v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes the edge file for `g` (three columns when the graph is weighted).
pub fn write_edge_file(g: &Graph, path: &Path) -> Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    let weighted = g.is_weighted();
    for e in g.edges() {
        if weighted {
            writeln!(out, "{} {} {}", e.src, e.dst, e.weight)?;
        } else {
            writeln!(out, "{} {}", e.src, e.dst)?;
        }
    }
    out.flush()?;
    Ok(())
}

fn parse_vertices<R: Read>(reader: BufReader<R>, file: &str) -> Result<Vec<VertexId>> {
    let mut vertices = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let content = strip(&line);
        if content.is_empty() {
            continue;
        }
        let v = content.parse::<VertexId>().map_err(|e| Error::Parse {
            file: file.to_string(),
            line: lineno as u64 + 1,
            message: format!("bad vertex id {content:?}: {e}"),
        })?;
        vertices.push(v);
    }
    vertices.sort_unstable();
    vertices.dedup();
    Ok(vertices)
}

/// Parses one stripped edge line into `(src, dst, weight)`; `None` for
/// blank/comment lines. The error string carries no line number — the
/// sequential and chunked drivers attach their own.
fn parse_edge_line(
    content: &str,
    weighted: bool,
) -> std::result::Result<Option<(VertexId, VertexId, f64)>, String> {
    if content.is_empty() {
        return Ok(None);
    }
    let mut cols = content.split_ascii_whitespace();
    let src: VertexId = cols
        .next()
        .ok_or_else(|| "missing source column".to_string())?
        .parse()
        .map_err(|e| format!("bad source: {e}"))?;
    let dst: VertexId = cols
        .next()
        .ok_or_else(|| "missing target column".to_string())?
        .parse()
        .map_err(|e| format!("bad target: {e}"))?;
    let weight = if weighted {
        let w: f64 = cols
            .next()
            .ok_or_else(|| "missing weight column".to_string())?
            .parse()
            .map_err(|e| format!("bad weight: {e}"))?;
        if !w.is_finite() || w < 0.0 {
            return Err(format!("weight {w} is not a finite non-negative number"));
        }
        w
    } else {
        if cols.next().is_some() {
            return Err("unexpected third column in unweighted edge file".to_string());
        }
        1.0
    };
    Ok(Some((src, dst, weight)))
}

fn parse_edges<R: Read>(
    reader: BufReader<R>,
    file: &str,
    builder: &mut GraphBuilder,
    weighted: bool,
) -> Result<()> {
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        match parse_edge_line(strip(&line), weighted) {
            Ok(Some((src, dst, weight))) => {
                builder.add_weighted_edge(src, dst, weight);
            }
            Ok(None) => {}
            Err(message) => {
                return Err(Error::Parse {
                    file: file.to_string(),
                    line: lineno as u64 + 1,
                    message,
                })
            }
        }
    }
    Ok(())
}

/// One worker's share of a chunked parse.
struct ChunkParse {
    edges: Vec<(VertexId, VertexId, f64)>,
    /// Lines consumed (complete only when `error` is `None`).
    lines: usize,
    /// First failure: (line offset within the chunk, message).
    error: Option<(usize, String)>,
}

fn parse_edges_chunked(
    text: &str,
    file: &str,
    builder: &mut GraphBuilder,
    weighted: bool,
    pool: &WorkerPool,
) -> Result<()> {
    // Newline-aligned chunk boundaries over the raw bytes.
    let bytes = text.as_bytes();
    let mut bounds = vec![0usize];
    for range in pool.split(bytes.len()) {
        let mut end = range.end;
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        if end > *bounds.last().unwrap() {
            bounds.push(end);
        }
    }
    let chunks: Vec<&str> =
        bounds.windows(2).map(|w| &text[w[0]..w[1]]).collect();

    // One chunk per pool worker: parse in parallel, splice in order.
    let parsed: Vec<ChunkParse> = pool
        .run(chunks.len(), |_, crange| {
            crange.map(|ci| {
                let mut chunk = ChunkParse { edges: Vec::new(), lines: 0, error: None };
                for (rel, line) in chunks[ci].lines().enumerate() {
                    match parse_edge_line(strip(line), weighted) {
                        Ok(Some(edge)) => chunk.edges.push(edge),
                        Ok(None) => {}
                        Err(message) => {
                            chunk.error = Some((rel, message));
                            break;
                        }
                    }
                    chunk.lines = rel + 1;
                }
                chunk
            }).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    let mut base_line = 0usize;
    for chunk in parsed {
        crate::fault::checkpoint(crate::fault::FaultSite::Parse)?;
        if let Some((rel, message)) = chunk.error {
            // Chunks before the first failing one parsed fully, so their
            // line tallies give the exact absolute line number.
            return Err(Error::Parse {
                file: file.to_string(),
                line: (base_line + rel) as u64 + 1,
                message,
            });
        }
        for (src, dst, weight) in chunk.edges {
            builder.add_weighted_edge(src, dst, weight);
        }
        base_line += chunk.lines;
    }
    Ok(())
}

fn strip(line: &str) -> &str {
    let line = match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    };
    line.trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_vertices_handles_comments_and_blanks() {
        let data = "1\n\n# comment\n3\n2\n3\n";
        let v = parse_vertices(BufReader::new(data.as_bytes()), "mem").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let data = "1\nfoo\n";
        let e = parse_vertices(BufReader::new(data.as_bytes()), "mem").unwrap_err();
        assert!(e.to_string().contains("mem:2"));
    }

    #[test]
    fn parse_edges_weighted_and_unweighted() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        parse_edges(BufReader::new("0 1\n2 3 # tail comment\n".as_bytes()), "mem", &mut b, false)
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);

        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        b.set_weighted(true);
        parse_edges(BufReader::new("0 1 2.5\n".as_bytes()), "mem", &mut b, true).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn parse_edges_rejects_bad_columns() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        assert!(parse_edges(BufReader::new("0\n".as_bytes()), "m", &mut b, false).is_err());
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        assert!(parse_edges(BufReader::new("0 1 9.0\n".as_bytes()), "m", &mut b, false).is_err());
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        assert!(parse_edges(BufReader::new("0 1\n".as_bytes()), "m", &mut b, true).is_err());
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(2);
        assert!(parse_edges(BufReader::new("0 1 -4\n".as_bytes()), "m", &mut b, true).is_err());
    }

    #[test]
    fn chunked_parse_matches_sequential() {
        // Enough lines that every pool width actually splits the text.
        let mut text = String::from("# header comment\n");
        for i in 0..500u64 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 501));
            if i % 97 == 0 {
                text.push('\n'); // blank lines survive chunking
            }
        }
        let sequential = {
            let mut b = GraphBuilder::new(true);
            b.add_vertex_range(501);
            parse_edges(BufReader::new(text.as_bytes()), "mem", &mut b, false).unwrap();
            b.build().unwrap()
        };
        for threads in [1u32, 2, 5] {
            let pool = WorkerPool::new(threads);
            let mut b = GraphBuilder::new(true);
            b.add_vertex_range(501);
            parse_edges_chunked(&text, "mem", &mut b, false, &pool).unwrap();
            let g = b.build_with(&pool).unwrap();
            assert_eq!(g.edges(), sequential.edges(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_parse_reports_exact_error_line() {
        let mut text = String::new();
        for i in 0..300u64 {
            text.push_str(&format!("{} {}\n", i, i + 1));
        }
        text.push_str("not an edge\n"); // line 301
        for i in 0..300u64 {
            text.push_str(&format!("{} {}\n", i + 400, i + 401));
        }
        for threads in [1u32, 4] {
            let pool = WorkerPool::new(threads);
            let mut b = GraphBuilder::new(true);
            let err = parse_edges_chunked(&text, "mem", &mut b, false, &pool).unwrap_err();
            assert!(err.to_string().contains("mem:301"), "threads={threads}: {err}");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("galy-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = GraphBuilder::new(false);
        b.set_weighted(true);
        for v in [7u64, 3, 9] {
            b.add_vertex(v);
        }
        b.add_weighted_edge(7, 3, 0.5);
        b.add_weighted_edge(9, 7, 1.25);
        let g = b.build().unwrap();

        let vp = dir.join("g.v");
        let ep = dir.join("g.e");
        write_vertex_file(&g, &vp).unwrap();
        write_edge_file(&g, &ep).unwrap();
        let g2 = read_graph(&vp, &ep, false, true).unwrap();
        assert_eq!(g2.vertices(), g.vertices());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.edges()[0].weight, g.edges()[0].weight);
        std::fs::remove_dir_all(&dir).ok();
    }
}
