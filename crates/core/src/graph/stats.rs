//! Structural graph statistics.
//!
//! These drive three things: the dataset registry's *traits* (degree skew,
//! diameter estimates) used by the analytic performance model, the Datagen
//! evaluation of Figure 2 (average clustering coefficient), and the
//! memory/replication model of the stress-test experiment (Section 4.6).

use super::Csr;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub vertices: u64,
    pub edges: u64,
    pub max_degree: u64,
    pub mean_degree: f64,
    /// Degree skewness proxy: max degree / mean degree. Power-law graphs
    /// (Graph500) score orders of magnitude higher than Datagen graphs of
    /// the same scale — the property behind the paper's Table 10 finding.
    pub degree_skew: f64,
    /// Average local clustering coefficient over all vertices.
    pub avg_clustering_coefficient: f64,
    /// Number of weakly connected components.
    pub components: u64,
    /// Eccentricity of a BFS from the highest-degree vertex — a cheap
    /// diameter lower bound ("pseudo-diameter").
    pub pseudo_diameter: u64,
    /// Fraction of vertices reachable from the highest-degree vertex.
    pub reachable_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for `csr`. Cost is `O(|V| + |E|)` plus the LCC
    /// triangle counting, so intended for generator-scale graphs, not for
    /// the billion-edge paper datasets (those use registry traits instead).
    pub fn compute(csr: &Csr) -> GraphStats {
        let n = csr.num_vertices();
        let m = csr.num_edges();
        let mut max_degree = 0u64;
        let mut hub = 0u32;
        for u in 0..n as u32 {
            let d = csr.neighborhood_union(u).len() as u64;
            if d > max_degree {
                max_degree = d;
                hub = u;
            }
        }
        let mean_degree = if n == 0 { 0.0 } else { csr.num_arcs() as f64 / n as f64 };
        let degree_skew = if mean_degree > 0.0 { max_degree as f64 / mean_degree } else { 0.0 };

        let lcc = crate::algorithms::lcc::lcc(csr);
        let avg_cc = if n == 0 { 0.0 } else { lcc.iter().sum::<f64>() / n as f64 };

        let components = count_components(csr);
        let (pseudo_diameter, reached) = undirected_bfs_ecc(csr, hub);
        let reachable_fraction = if n == 0 { 0.0 } else { reached as f64 / n as f64 };

        GraphStats {
            vertices: n as u64,
            edges: m as u64,
            max_degree,
            mean_degree,
            degree_skew,
            avg_clustering_coefficient: avg_cc,
            components,
            pseudo_diameter,
            reachable_fraction,
        }
    }
}

/// Counts weakly connected components by repeated BFS over the union
/// neighbourhood.
fn count_components(csr: &Csr) -> u64 {
    let n = csr.num_vertices();
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut components = 0u64;
    for s in 0..n as u32 {
        if visited[s as usize] {
            continue;
        }
        components += 1;
        visited[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for v in neighbors_both(csr, u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

/// BFS eccentricity from `src` over the undirected view; returns
/// `(eccentricity, reached_count)`.
fn undirected_bfs_ecc(csr: &Csr, src: u32) -> (u64, u64) {
    let n = csr.num_vertices();
    if n == 0 {
        return (0, 0);
    }
    let mut dist = vec![u64::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut ecc = 0u64;
    let mut reached = 1u64;
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in neighbors_both(csr, u) {
            if dist[v as usize] == u64::MAX {
                dist[v as usize] = du + 1;
                ecc = ecc.max(du + 1);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    (ecc, reached)
}

fn neighbors_both<'a>(csr: &'a Csr, u: u32) -> impl Iterator<Item = u32> + 'a {
    let inn: &[u32] = if csr.is_directed() { csr.in_neighbors(u) } else { &[] };
    csr.out_neighbors(u).iter().chain(inn.iter()).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn triangle_plus_isolated() -> Csr {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(4); // vertex 3 isolated
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build().unwrap().to_csr()
    }

    #[test]
    fn triangle_stats() {
        let s = GraphStats::compute(&triangle_plus_isolated());
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.pseudo_diameter, 1);
        assert!((s.avg_clustering_coefficient - 0.75).abs() < 1e-12); // 3×1.0 + 1×0.0 over 4
        assert!((s.reachable_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn directed_chain_counts_one_weak_component() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let s = GraphStats::compute(&b.build().unwrap().to_csr());
        assert_eq!(s.components, 1);
        // Hub is vertex 1; everything reachable within 1 hop in the
        // undirected view.
        assert_eq!(s.pseudo_diameter, 1);
        assert!((s.reachable_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_reflects_hubs() {
        // Star graph: hub degree n-1, mean degree ~2.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(50);
        for i in 1..50u64 {
            b.add_edge(0, i);
        }
        let s = GraphStats::compute(&b.build().unwrap().to_csr());
        assert!(s.degree_skew > 10.0);
    }
}
