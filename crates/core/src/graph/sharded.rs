//! Partitioned CSR: per-shard adjacency extracted from one [`Csr`].
//!
//! A [`ShardedCsr`] splits a built CSR into `N` shards according to an
//! externally supplied owner map (the `cluster` crate's edge-cut
//! strategies produce one). Each [`ShardCsr`] holds the adjacency rows
//! of the vertices it owns — targets keep their *global* dense indices,
//! so inter-shard edges are exactly the row entries whose target is
//! owned elsewhere. Rows are copied verbatim from the parent CSR (whose
//! build is already bit-identical across pool widths), so shard-local
//! iteration order equals global iteration order for every owner map.
//!
//! The copy runs on a [`WorkerPool`]: per-shard degree prefix sums, then
//! a parallel row scatter over disjoint local-vertex ranges.

use std::sync::Arc;

use super::Csr;
use crate::error::{Error, Result};
use crate::pool::{SharedSlice, WorkerPool};

/// The adjacency owned by one shard. Local vertex `li` is global dense
/// vertex `vertices()[li]`; rows store global dense target indices.
#[derive(Debug, Clone)]
pub struct ShardCsr {
    vertices: Box<[u32]>,
    out_offsets: Box<[u64]>,
    out_targets: Box<[u32]>,
    out_weights: Box<[f64]>,
    // Empty (aliased to out) for undirected graphs, mirroring `Csr`.
    in_offsets: Box<[u64]>,
    in_targets: Box<[u32]>,
    in_weights: Box<[f64]>,
}

impl ShardCsr {
    /// Number of vertices owned by this shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the shard owns no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Global dense indices owned by this shard, ascending.
    #[inline]
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// Global dense index of local vertex `li`.
    #[inline]
    pub fn global(&self, li: usize) -> u32 {
        self.vertices[li]
    }

    /// Out-row of local vertex `li`: global targets + parallel weights,
    /// in the parent CSR's (sorted) order.
    #[inline]
    pub fn out_row(&self, li: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.out_offsets[li] as usize, self.out_offsets[li + 1] as usize);
        (&self.out_targets[lo..hi], &self.out_weights[lo..hi])
    }

    /// In-row of local vertex `li`; aliases the out-row for undirected
    /// graphs (as in [`Csr::in_neighbors`]).
    #[inline]
    pub fn in_row(&self, li: usize) -> (&[u32], &[f64]) {
        if self.in_offsets.is_empty() {
            return self.out_row(li);
        }
        let (lo, hi) = (self.in_offsets[li] as usize, self.in_offsets[li + 1] as usize);
        (&self.in_targets[lo..hi], &self.in_weights[lo..hi])
    }

    /// Stored arcs in this shard's out-structure.
    #[inline]
    pub fn num_out_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Estimated resident size in bytes (upload-phase accounting).
    pub fn resident_bytes(&self) -> u64 {
        (self.vertices.len() * 4
            + (self.out_offsets.len() + self.in_offsets.len()) * 8
            + (self.out_targets.len() + self.in_targets.len()) * 4
            + (self.out_weights.len() + self.in_weights.len()) * 8) as u64
    }
}

/// A CSR split into `N` shards by an owner map.
///
/// Keeps the parent [`Csr`] alive (outputs and validation still need
/// global id mapping) plus, per vertex, its owner and its local index
/// within the owning shard.
#[derive(Debug, Clone)]
pub struct ShardedCsr {
    csr: Arc<Csr>,
    owner: Box<[u32]>,
    local_index: Box<[u32]>,
    shards: Box<[ShardCsr]>,
}

impl ShardedCsr {
    /// Splits `csr` into `parts` shards according to `owner` (one entry
    /// per dense vertex, values in `0..parts`). Row copies run on
    /// `pool`; the result is identical for every pool width.
    pub fn partition_with(
        csr: Arc<Csr>,
        owner: &[u32],
        parts: u32,
        pool: &WorkerPool,
    ) -> Result<ShardedCsr> {
        let n = csr.num_vertices();
        if parts == 0 {
            return Err(Error::InvalidParameters("shard count must be >= 1".into()));
        }
        if owner.len() != n {
            return Err(Error::InvalidParameters(format!(
                "owner map covers {} vertices, graph has {n}",
                owner.len()
            )));
        }
        if let Some(&bad) = owner.iter().find(|&&s| s >= parts) {
            return Err(Error::InvalidParameters(format!(
                "owner {bad} out of range for {parts} shards"
            )));
        }

        // Shard membership, ascending within each shard by construction.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); parts as usize];
        let mut local_index = vec![0u32; n];
        for v in 0..n {
            let s = owner[v] as usize;
            local_index[v] = members[s].len() as u32;
            members[s].push(v as u32);
        }

        let directed = csr.is_directed();
        let shards = members
            .into_iter()
            .map(|vertices| {
                let out = copy_rows(&csr, &vertices, pool, Direction::Out);
                let (in_offsets, in_targets, in_weights) = if directed {
                    copy_rows(&csr, &vertices, pool, Direction::In)
                } else {
                    (Vec::new(), Vec::new(), Vec::new())
                };
                ShardCsr {
                    vertices: vertices.into(),
                    out_offsets: out.0.into(),
                    out_targets: out.1.into(),
                    out_weights: out.2.into(),
                    in_offsets: in_offsets.into(),
                    in_targets: in_targets.into(),
                    in_weights: in_weights.into(),
                }
            })
            .collect();

        Ok(ShardedCsr {
            csr,
            owner: owner.into(),
            local_index: local_index.into(),
            shards,
        })
    }

    /// The parent CSR.
    #[inline]
    pub fn csr(&self) -> &Arc<Csr> {
        &self.csr
    }

    /// Owner map: `owner()[v]` is the shard owning dense vertex `v`.
    #[inline]
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Shard owning dense vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: u32) -> u32 {
        self.owner[v as usize]
    }

    /// Local index of dense vertex `v` within its owning shard.
    #[inline]
    pub fn local_index_of(&self, v: u32) -> u32 {
        self.local_index[v as usize]
    }

    /// Shard `s`.
    #[inline]
    pub fn shard(&self, s: usize) -> &ShardCsr {
        &self.shards[s]
    }

    /// All shards, in shard order.
    #[inline]
    pub fn shards(&self) -> &[ShardCsr] {
        &self.shards
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Estimated resident bytes of the shard set (excluding the parent
    /// CSR, which the caller typically keeps anyway).
    pub fn resident_bytes(&self) -> u64 {
        let maps = (self.owner.len() + self.local_index.len()) * 4;
        maps as u64 + self.shards.iter().map(ShardCsr::resident_bytes).sum::<u64>()
    }
}

enum Direction {
    Out,
    In,
}

/// Copies one direction's rows for `vertices` out of `csr`:
/// offsets + targets + weights, rows in shard-local order.
fn copy_rows(
    csr: &Csr,
    vertices: &[u32],
    pool: &WorkerPool,
    dir: Direction,
) -> (Vec<u64>, Vec<u32>, Vec<f64>) {
    let k = vertices.len();
    let row = |v: u32| -> (&[u32], &[f64]) {
        match dir {
            Direction::Out => (csr.out_neighbors(v), csr.out_weights(v)),
            Direction::In => (csr.in_neighbors(v), csr.in_weights(v)),
        }
    };

    let mut offsets = vec![0u64; k + 1];
    {
        let off = SharedSlice::new(offsets.as_mut_ptr());
        pool.run(k, |_, range| {
            for li in range {
                // SAFETY: local-vertex ranges are disjoint; only this
                // task writes slot li + 1.
                unsafe { *off.at(li + 1) = row(vertices[li]).0.len() as u64 };
            }
        });
    }
    for li in 0..k {
        offsets[li + 1] += offsets[li];
    }

    let stored = offsets[k] as usize;
    let mut targets = vec![0u32; stored];
    let mut weights = vec![1.0f64; stored];
    {
        let tgt = SharedSlice::new(targets.as_mut_ptr());
        let wts = SharedSlice::new(weights.as_mut_ptr());
        pool.run(k, |_, range| {
            for li in range {
                let (nbrs, ws) = row(vertices[li]);
                let lo = offsets[li] as usize;
                // SAFETY: rows are disjoint slices and local-vertex
                // ranges are disjoint.
                unsafe {
                    tgt.slice_mut(lo, nbrs.len()).copy_from_slice(nbrs);
                    wts.slice_mut(lo, ws.len()).copy_from_slice(ws);
                }
            }
        });
    }
    (offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn ring(n: u64, directed: bool) -> Csr {
        let mut b = GraphBuilder::new(directed);
        b.add_vertex_range(n);
        for v in 0..n {
            let w = (v + 1) % n;
            if directed {
                b.add_edge(v, w);
            } else {
                b.add_edge(v.min(w), v.max(w));
            }
        }
        b.build().unwrap().to_csr()
    }

    fn round_robin(n: usize, parts: u32) -> Vec<u32> {
        (0..n).map(|v| v as u32 % parts).collect()
    }

    #[test]
    fn shard_rows_match_parent_rows() {
        for directed in [true, false] {
            let csr = Arc::new(ring(37, directed));
            let pool = WorkerPool::new(3);
            let owner = round_robin(csr.num_vertices(), 4);
            let sharded = ShardedCsr::partition_with(csr.clone(), &owner, 4, &pool).unwrap();
            assert_eq!(sharded.num_shards(), 4);
            let mut seen = 0usize;
            for s in 0..4usize {
                let shard = sharded.shard(s);
                seen += shard.len();
                for li in 0..shard.len() {
                    let v = shard.global(li);
                    assert_eq!(sharded.owner_of(v), s as u32);
                    assert_eq!(sharded.local_index_of(v) as usize, li);
                    let (tgt, wts) = shard.out_row(li);
                    assert_eq!(tgt, csr.out_neighbors(v), "out row of {v}");
                    assert_eq!(wts, csr.out_weights(v));
                    let (itgt, iwts) = shard.in_row(li);
                    assert_eq!(itgt, csr.in_neighbors(v), "in row of {v}");
                    assert_eq!(iwts, csr.in_weights(v));
                }
            }
            assert_eq!(seen, csr.num_vertices(), "shards partition the vertex set");
        }
    }

    #[test]
    fn identical_for_every_pool_width() {
        let csr = Arc::new(ring(101, true));
        let owner = round_robin(csr.num_vertices(), 3);
        let baseline =
            ShardedCsr::partition_with(csr.clone(), &owner, 3, &WorkerPool::inline()).unwrap();
        for threads in [2u32, 4, 8] {
            let pool = WorkerPool::new(threads);
            let wide = ShardedCsr::partition_with(csr.clone(), &owner, 3, &pool).unwrap();
            for s in 0..3usize {
                assert_eq!(wide.shard(s).vertices(), baseline.shard(s).vertices());
                assert_eq!(wide.shard(s).out_targets, baseline.shard(s).out_targets);
                assert_eq!(wide.shard(s).out_weights, baseline.shard(s).out_weights);
                assert_eq!(wide.shard(s).in_targets, baseline.shard(s).in_targets);
            }
        }
    }

    #[test]
    fn invalid_owner_maps_are_rejected() {
        let csr = Arc::new(ring(10, true));
        let pool = WorkerPool::inline();
        let short = vec![0u32; 5];
        assert!(ShardedCsr::partition_with(csr.clone(), &short, 2, &pool).is_err());
        let out_of_range = vec![5u32; 10];
        assert!(ShardedCsr::partition_with(csr.clone(), &out_of_range, 2, &pool).is_err());
        let ok = vec![0u32; 10];
        assert!(ShardedCsr::partition_with(csr.clone(), &ok, 0, &pool).is_err());
        assert!(ShardedCsr::partition_with(csr, &ok, 1, &pool).is_ok());
    }

    #[test]
    fn single_shard_owns_everything() {
        let csr = Arc::new(ring(16, false));
        let owner = vec![0u32; 16];
        let sharded =
            ShardedCsr::partition_with(csr.clone(), &owner, 1, &WorkerPool::inline()).unwrap();
        assert_eq!(sharded.shard(0).len(), 16);
        assert_eq!(sharded.shard(0).num_out_arcs(), csr.num_arcs());
        assert!(sharded.resident_bytes() > 0);
    }
}
