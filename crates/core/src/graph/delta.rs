//! Streaming graph mutation: a batched delta log layered over the
//! immutable [`Csr`].
//!
//! Graphalytics freezes every dataset at upload; its successor spec names
//! evolving-graph workloads as the missing scenario class. This module
//! supplies the storage half of that workload: a [`MutableGraph`] wraps a
//! base CSR with per-vertex *overlay* adjacency (inserted edges) and
//! *tombstones* (deleted base edges), so a [`MutationBatch`] applies in
//! time proportional to the batch — no CSR rebuild. Readers see the
//! merged view through [`MutableGraph::out_edges`]/[`in_edges`], which
//! interleave the (sorted) base row with the (sorted) overlay in exactly
//! the order a freshly built CSR would store — kernels that sum or scan
//! in row order therefore produce *bit-identical* results on the delta
//! view and on the materialized graph.
//!
//! The log is bounded: once [`MutableGraph::fill_ratio`] crosses
//! [`DeltaConfig::compact_fill`], [`MutableGraph::compact`] folds overlay
//! and tombstones back into a fresh CSR on the worker pool (the same
//! pool-parallel, width-invariant build as `Csr::from_graph_with`) and
//! resets the log. Compaction preserves the vertex set and its dense
//! index order, so cached per-vertex algorithm state (labels, ranks)
//! survives across compactions.
//!
//! Mutations are edge-only by design: a batch referencing a vertex that
//! is not declared in the base graph is rejected *before anything is
//! applied* (the service maps this to a structured 4xx). Semantics are
//! set-like and total: an insertion ensures the edge is present with the
//! given weight (updating the weight if it differs), a deletion ensures
//! it is absent; re-inserting an existing edge or deleting a missing one
//! is a counted no-op, never an error. Deletions of a batch apply before
//! its insertions.

use std::sync::Arc;
use std::time::Instant;

use crate::error::{Error, Result};
use crate::graph::{Csr, Edge, Graph, VertexId};
use crate::pool::WorkerPool;

/// A batch of edge insertions and deletions against a resident graph.
///
/// Endpoints are sparse [`VertexId`]s, exactly as they appear in dataset
/// files and API requests. For undirected graphs the orientation of both
/// insertions and deletions is irrelevant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    /// Edges to ensure present (deduplicated by endpoint pair on apply).
    pub insertions: Vec<Edge>,
    /// Edge endpoint pairs to ensure absent.
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an unweighted insertion (weight 1.0).
    pub fn insert(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.insertions.push(Edge::new(src, dst));
        self
    }

    /// Queues a weighted insertion.
    pub fn insert_weighted(&mut self, src: VertexId, dst: VertexId, weight: f64) -> &mut Self {
        self.insertions.push(Edge::weighted(src, dst, weight));
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.deletions.push((src, dst));
        self
    }

    /// Total queued mutations.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// SplitMix64 step — the deterministic stream behind [`random_batch`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random mutation batch against `csr`: `deletions`
/// existing edges picked by (vertex, slot) draws and `insertions` fresh
/// endpoint pairs not present in the base graph. The same `(csr, counts,
/// seed)` always yields the same batch — mutation scripts replayed by the
/// harness and mirrored by validators rely on this.
pub fn random_batch(csr: &Csr, insertions: usize, deletions: usize, seed: u64) -> MutationBatch {
    let n = csr.num_vertices() as u64;
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let mut batch = MutationBatch::new();
    if n < 2 {
        return batch;
    }
    let mut chosen = std::collections::HashSet::new();
    let canon = |a: VertexId, b: VertexId| if csr.is_directed() { (a, b) } else { (a.min(b), a.max(b)) };

    let mut attempts = 0usize;
    while batch.deletions.len() < deletions && attempts < deletions * 16 + 64 {
        attempts += 1;
        let u = (splitmix64(&mut rng) % n) as u32;
        let row = csr.out_neighbors(u);
        if row.is_empty() {
            continue;
        }
        let v = row[(splitmix64(&mut rng) % row.len() as u64) as usize];
        let (a, b) = (csr.id_of(u), csr.id_of(v));
        if chosen.insert(canon(a, b)) {
            batch.delete(a, b);
        }
    }
    let mut attempts = 0usize;
    while batch.insertions.len() < insertions && attempts < insertions * 16 + 64 {
        attempts += 1;
        let u = (splitmix64(&mut rng) % n) as u32;
        let v = (splitmix64(&mut rng) % n) as u32;
        if u == v || csr.has_out_edge(u, v) {
            continue;
        }
        let (a, b) = (csr.id_of(u), csr.id_of(v));
        if !chosen.insert(canon(a, b)) {
            continue;
        }
        if csr.is_weighted() {
            let w = 1.0 + (splitmix64(&mut rng) % 8) as f64 * 0.5;
            batch.insert_weighted(a, b, w);
        } else {
            batch.insert(a, b);
        }
    }
    batch
}

/// Delta-log policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaConfig {
    /// Compaction trigger: when `delta_arcs / base_arcs` reaches this
    /// ratio, the next [`MutableGraph::apply`] folds the log into a
    /// fresh CSR. 0.25 by default — the overlay's binary-searched rows
    /// stay a small fraction of every scan, and compaction cost (one
    /// pool-parallel CSR build) amortizes over at least a quarter-graph
    /// of mutations.
    pub compact_fill: f64,
    /// When true (default), [`MutableGraph::apply`] compacts
    /// automatically once the fill ratio crosses `compact_fill`.
    pub auto_compact: bool,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig { compact_fill: 0.25, auto_compact: true }
    }
}

/// Lifetime counters of one [`MutableGraph`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeltaStats {
    /// Batches applied.
    pub applied_batches: u64,
    /// Edges actually added (absent before, present after).
    pub inserted_edges: u64,
    /// Edges actually removed.
    pub deleted_edges: u64,
    /// Existing edges whose weight changed.
    pub updated_edges: u64,
    /// Times the log was folded back into a fresh CSR.
    pub compactions: u64,
    /// Total wall seconds spent compacting.
    pub compact_secs: f64,
}

/// What one [`MutableGraph::apply`] call actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Edges added (weight updates not included).
    pub inserted: u64,
    /// Edges removed.
    pub deleted: u64,
    /// Existing edges whose weight changed.
    pub updated: u64,
    /// Whether this apply crossed the fill ratio and compacted the log.
    pub compacted: bool,
}

/// How one directed arc insertion changed the view.
#[derive(PartialEq, Eq, Clone, Copy)]
enum ArcChange {
    Added,
    Updated,
    Unchanged,
}

/// A batched delta log (overlay adjacency + tombstones) over an
/// immutable base [`Csr`]. See the module docs for the design.
pub struct MutableGraph {
    base: Arc<Csr>,
    /// Per-vertex inserted out-edges, sorted by target. An overlay
    /// target never coexists with a live (non-tombstoned) base target.
    out_add: Vec<Vec<(u32, f64)>>,
    /// Per-vertex deleted base out-targets, sorted.
    out_del: Vec<Vec<u32>>,
    /// In-direction mirrors (directed graphs only; undirected graphs
    /// mirror through `out_*`, matching the CSR's aliasing).
    in_add: Vec<Vec<(u32, f64)>>,
    in_del: Vec<Vec<u32>>,
    /// Merged out-degrees, maintained incrementally.
    degrees: Vec<u32>,
    /// Log size: overlay entries + tombstones, in stored-arc units
    /// (undirected edges count twice, like `Csr::num_arcs`).
    delta_arcs: u64,
    config: DeltaConfig,
    stats: DeltaStats,
}

impl MutableGraph {
    /// Wraps `base` with an empty delta log and default policy.
    pub fn new(base: Arc<Csr>) -> Self {
        Self::with_config(base, DeltaConfig::default())
    }

    /// Wraps `base` with an explicit policy.
    pub fn with_config(base: Arc<Csr>, config: DeltaConfig) -> Self {
        let n = base.num_vertices();
        let directed = base.is_directed();
        let degrees = (0..n).map(|u| base.out_degree(u as u32) as u32).collect();
        MutableGraph {
            base,
            out_add: vec![Vec::new(); n],
            out_del: vec![Vec::new(); n],
            in_add: if directed { vec![Vec::new(); n] } else { Vec::new() },
            in_del: if directed { vec![Vec::new(); n] } else { Vec::new() },
            degrees,
            delta_arcs: 0,
            config,
            stats: DeltaStats::default(),
        }
    }

    /// The current base CSR (replaced by compaction).
    pub fn base(&self) -> &Arc<Csr> {
        &self.base
    }

    /// Number of vertices (immutable: mutations are edge-only).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Sorted sparse vertex ids, identical to the base CSR's.
    pub fn vertex_ids(&self) -> &[VertexId] {
        self.base.vertex_ids()
    }

    /// True for directed graphs.
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// True when edges carry meaningful weights.
    pub fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    /// Merged out-degree of dense vertex `u`.
    #[inline]
    pub fn out_degree(&self, u: u32) -> u32 {
        self.degrees[u as usize]
    }

    /// The full merged out-degree table.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Current stored arcs in the merged view (`Csr::num_arcs`
    /// convention: undirected edges count twice).
    pub fn num_arcs(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Current logical edge count (undirected edges counted once).
    pub fn num_edges(&self) -> u64 {
        let arcs = self.num_arcs();
        if self.is_directed() { arcs } else { arcs / 2 }
    }

    /// Outstanding log entries (overlay + tombstones) in stored-arc units.
    pub fn delta_arcs(&self) -> u64 {
        self.delta_arcs
    }

    /// Log size relative to the base graph.
    pub fn fill_ratio(&self) -> f64 {
        self.delta_arcs as f64 / (self.base.num_arcs().max(1)) as f64
    }

    /// True when the fill ratio has crossed the compaction trigger.
    pub fn needs_compaction(&self) -> bool {
        self.delta_arcs > 0 && self.fill_ratio() >= self.config.compact_fill
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Counts a batch applied through the split
    /// [`apply_deletions`](MutableGraph::apply_deletions) /
    /// [`apply_insertions`](MutableGraph::apply_insertions) path
    /// (callers interleaving incremental maintenance between the two
    /// halves; [`MutableGraph::apply`] counts automatically).
    pub fn note_batch_applied(&mut self) {
        self.stats.applied_batches += 1;
    }

    /// The active policy.
    pub fn config(&self) -> &DeltaConfig {
        &self.config
    }

    /// Approximate resident bytes of base + log.
    pub fn resident_bytes(&self) -> u64 {
        let overlay: usize = self
            .out_add
            .iter()
            .chain(self.in_add.iter())
            .map(|r| r.len() * 12)
            .sum::<usize>()
            + self.out_del.iter().chain(self.in_del.iter()).map(|r| r.len() * 4).sum::<usize>();
        self.base.resident_bytes() + overlay as u64 + 4 * self.degrees.len() as u64
    }

    /// Merged out-edges of dense vertex `u`, sorted by target — exactly
    /// the row a freshly built CSR of the merged graph would hold.
    pub fn out_edges(&self, u: u32) -> MergedEdges<'_> {
        MergedEdges {
            base_t: self.base.out_neighbors(u),
            base_w: self.base.out_weights(u),
            del: &self.out_del[u as usize],
            add: &self.out_add[u as usize],
            bi: 0,
            di: 0,
            ai: 0,
        }
    }

    /// Merged in-edges of dense vertex `u` (aliases the out direction
    /// for undirected graphs, like the CSR).
    pub fn in_edges(&self, u: u32) -> MergedEdges<'_> {
        if !self.is_directed() {
            return self.out_edges(u);
        }
        MergedEdges {
            base_t: self.base.in_neighbors(u),
            base_w: self.base.in_weights(u),
            del: &self.in_del[u as usize],
            add: &self.in_add[u as usize],
            bi: 0,
            di: 0,
            ai: 0,
        }
    }

    /// True when the merged view contains the arc `u → v`.
    pub fn has_out_edge(&self, u: u32, v: u32) -> bool {
        if self.out_add[u as usize].binary_search_by_key(&v, |e| e.0).is_ok() {
            return true;
        }
        self.base.has_out_edge(u, v) && self.out_del[u as usize].binary_search(&v).is_err()
    }

    /// Checks every endpoint of `batch` against the declared vertex set
    /// and every insertion against the data-model invariants, *without
    /// applying anything*. [`MutableGraph::apply`] calls this first, so
    /// a rejected batch leaves the graph untouched.
    pub fn validate_batch(&self, batch: &MutationBatch) -> Result<()> {
        let check = |a: VertexId, b: VertexId| -> Result<(u32, u32)> {
            let u = self.base.index_of(a).ok_or_else(|| {
                Error::InvalidGraph(format!("mutation references undeclared vertex {a}"))
            })?;
            let v = self.base.index_of(b).ok_or_else(|| {
                Error::InvalidGraph(format!("mutation references undeclared vertex {b}"))
            })?;
            if u == v {
                return Err(Error::InvalidGraph(format!("mutation would create self loop at {a}")));
            }
            Ok((u, v))
        };
        for e in &batch.insertions {
            check(e.src, e.dst)?;
            if e.weight.is_nan() || e.weight < 0.0 {
                return Err(Error::InvalidGraph(format!(
                    "inserted edge ({}, {}) has invalid weight {}",
                    e.src, e.dst, e.weight
                )));
            }
        }
        for &(a, b) in &batch.deletions {
            check(a, b)?;
        }
        Ok(())
    }

    /// Applies a batch: validation first (all-or-nothing), then
    /// deletions, then insertions; finally auto-compacts when the log
    /// crosses the fill ratio (if the policy says so).
    pub fn apply(&mut self, batch: &MutationBatch, pool: &WorkerPool) -> Result<ApplyOutcome> {
        // The checkpoint precedes any state change: a fault or cancel at
        // this site skips the batch atomically, leaving the delta log
        // exactly as it was (the chaos suite's invariant).
        crate::fault::checkpoint(crate::fault::FaultSite::Mutate)?;
        self.validate_batch(batch)?;
        let deleted = self.apply_deletions(&batch.deletions);
        let (inserted, updated) = self.apply_insertions(&batch.insertions);
        self.note_batch_applied();
        let mut outcome = ApplyOutcome { inserted, deleted, updated, compacted: false };
        if self.config.auto_compact && self.needs_compaction() {
            self.compact(pool)?;
            outcome.compacted = true;
        }
        Ok(outcome)
    }

    /// Applies pre-validated deletions; returns how many edges existed.
    /// Callers interleaving incremental algorithm maintenance between
    /// the two halves of a batch use this and
    /// [`MutableGraph::apply_insertions`] directly (after
    /// [`MutableGraph::validate_batch`]).
    pub fn apply_deletions(&mut self, deletions: &[(VertexId, VertexId)]) -> u64 {
        let mut deleted = 0u64;
        for &(a, b) in deletions {
            let (u, v) = (self.index(a), self.index(b));
            if self.delete_out(u, v) {
                deleted += 1;
                if self.is_directed() {
                    self.delete_in(v, u);
                } else {
                    self.delete_out(v, u);
                }
            }
        }
        self.stats.deleted_edges += deleted;
        deleted
    }

    /// Applies pre-validated insertions; returns `(added, updated)`.
    pub fn apply_insertions(&mut self, insertions: &[Edge]) -> (u64, u64) {
        let (mut added, mut updated) = (0u64, 0u64);
        for e in insertions {
            let (u, v) = (self.index(e.src), self.index(e.dst));
            let w = if self.is_weighted() { e.weight } else { 1.0 };
            match self.insert_out(u, v, w) {
                ArcChange::Unchanged => {}
                change => {
                    if change == ArcChange::Added {
                        added += 1;
                    } else {
                        updated += 1;
                    }
                    if self.is_directed() {
                        self.insert_in(v, u, w);
                    } else {
                        self.insert_out(v, u, w);
                    }
                }
            }
        }
        self.stats.inserted_edges += added;
        self.stats.updated_edges += updated;
        (added, updated)
    }

    fn index(&self, v: VertexId) -> u32 {
        self.base.index_of(v).expect("batch endpoints validated before apply")
    }

    fn base_out_weight(&self, u: u32, v: u32) -> Option<f64> {
        let i = self.base.out_neighbors(u).binary_search(&v).ok()?;
        Some(self.base.out_weights(u)[i])
    }

    /// Removes arc `u → v` from the merged out view; true if it existed.
    fn delete_out(&mut self, u: u32, v: u32) -> bool {
        if let Ok(i) = self.out_add[u as usize].binary_search_by_key(&v, |e| e.0) {
            self.out_add[u as usize].remove(i);
            self.delta_arcs -= 1;
            self.degrees[u as usize] -= 1;
            return true;
        }
        if self.base.has_out_edge(u, v) {
            if let Err(i) = self.out_del[u as usize].binary_search(&v) {
                self.out_del[u as usize].insert(i, v);
                self.delta_arcs += 1;
                self.degrees[u as usize] -= 1;
                return true;
            }
        }
        false
    }

    /// In-direction mirror of a successful out deletion (directed only).
    fn delete_in(&mut self, u: u32, v: u32) {
        if let Ok(i) = self.in_add[u as usize].binary_search_by_key(&v, |e| e.0) {
            self.in_add[u as usize].remove(i);
        } else if let Err(i) = self.in_del[u as usize].binary_search(&v) {
            self.in_del[u as usize].insert(i, v);
        }
    }

    /// Ensures arc `u → v` present with weight `w` in the out view.
    fn insert_out(&mut self, u: u32, v: u32, w: f64) -> ArcChange {
        if let Ok(i) = self.out_add[u as usize].binary_search_by_key(&v, |e| e.0) {
            if self.out_add[u as usize][i].1 == w {
                return ArcChange::Unchanged;
            }
            self.out_add[u as usize][i].1 = w;
            return ArcChange::Updated;
        }
        match self.base_out_weight(u, v) {
            Some(bw) => {
                let tombstoned = self.out_del[u as usize].binary_search(&v);
                match tombstoned {
                    Ok(i) => {
                        // Deleted base edge coming back: clear the
                        // tombstone when the weight matches, otherwise
                        // keep it and overlay the new weight.
                        if bw == w {
                            self.out_del[u as usize].remove(i);
                            self.delta_arcs -= 1;
                        } else {
                            let pos = self.out_add[u as usize]
                                .binary_search_by_key(&v, |e| e.0)
                                .unwrap_err();
                            self.out_add[u as usize].insert(pos, (v, w));
                            self.delta_arcs += 1;
                        }
                        self.degrees[u as usize] += 1;
                        ArcChange::Added
                    }
                    Err(del_pos) => {
                        if bw == w {
                            return ArcChange::Unchanged;
                        }
                        // Weight update of a live base edge: tombstone
                        // the old arc, overlay the new one.
                        self.out_del[u as usize].insert(del_pos, v);
                        let pos = self.out_add[u as usize]
                            .binary_search_by_key(&v, |e| e.0)
                            .unwrap_err();
                        self.out_add[u as usize].insert(pos, (v, w));
                        self.delta_arcs += 2;
                        ArcChange::Updated
                    }
                }
            }
            None => {
                let pos =
                    self.out_add[u as usize].binary_search_by_key(&v, |e| e.0).unwrap_err();
                self.out_add[u as usize].insert(pos, (v, w));
                self.delta_arcs += 1;
                self.degrees[u as usize] += 1;
                ArcChange::Added
            }
        }
    }

    /// In-direction mirror of a successful out insertion/update
    /// (directed only).
    fn insert_in(&mut self, u: u32, v: u32, w: f64) {
        if let Ok(i) = self.in_add[u as usize].binary_search_by_key(&v, |e| e.0) {
            self.in_add[u as usize][i].1 = w;
            return;
        }
        let in_base = self.base.in_neighbors(u).binary_search(&v);
        match in_base {
            Ok(bi) => {
                let bw = self.base.in_weights(u)[bi];
                match self.in_del[u as usize].binary_search(&v) {
                    Ok(i) => {
                        if bw == w {
                            self.in_del[u as usize].remove(i);
                        } else {
                            let pos = self.in_add[u as usize]
                                .binary_search_by_key(&v, |e| e.0)
                                .unwrap_err();
                            self.in_add[u as usize].insert(pos, (v, w));
                        }
                    }
                    Err(del_pos) => {
                        if bw != w {
                            self.in_del[u as usize].insert(del_pos, v);
                            let pos = self.in_add[u as usize]
                                .binary_search_by_key(&v, |e| e.0)
                                .unwrap_err();
                            self.in_add[u as usize].insert(pos, (v, w));
                        }
                    }
                }
            }
            Err(_) => {
                let pos = self.in_add[u as usize].binary_search_by_key(&v, |e| e.0).unwrap_err();
                self.in_add[u as usize].insert(pos, (v, w));
            }
        }
    }

    /// The merged graph as an edge list — the exact input
    /// [`Csr::from_graph`] would receive for the post-mutation graph.
    pub fn to_graph(&self) -> Graph {
        let n = self.num_vertices();
        let directed = self.is_directed();
        let mut edges = Vec::with_capacity(self.num_edges() as usize);
        for u in 0..n as u32 {
            for (v, w) in self.out_edges(u) {
                // Undirected rows materialize each edge twice; keep the
                // canonical orientation (ids ascend with dense index).
                if directed || u < v {
                    edges.push(Edge::weighted(self.base.id_of(u), self.base.id_of(v), w));
                }
            }
        }
        Graph::from_parts(directed, self.is_weighted(), self.vertex_ids().to_vec(), edges)
    }

    /// Builds a fresh CSR of the merged view on `pool` without touching
    /// the log (bit-identical at every pool width).
    pub fn materialize(&self, pool: &WorkerPool) -> Result<Csr> {
        Csr::from_graph_with(&self.to_graph(), pool)
    }

    /// Folds the delta log into a fresh base CSR on `pool` and resets
    /// the log. Vertex set and dense index order are preserved, so
    /// per-vertex state cached against the old base stays valid.
    pub fn compact(&mut self, pool: &WorkerPool) -> Result<f64> {
        // Fail before building the replacement base: an aborted
        // compaction leaves both the base and the log untouched.
        crate::fault::checkpoint(crate::fault::FaultSite::Compact)?;
        let start = Instant::now();
        let fresh = self.materialize(pool)?;
        self.base = Arc::new(fresh);
        for row in self.out_add.iter_mut().chain(self.in_add.iter_mut()) {
            row.clear();
        }
        for row in self.out_del.iter_mut().chain(self.in_del.iter_mut()) {
            row.clear();
        }
        self.delta_arcs = 0;
        let secs = start.elapsed().as_secs_f64();
        self.stats.compactions += 1;
        self.stats.compact_secs += secs;
        Ok(secs)
    }
}

/// Sorted merge of a base CSR row (minus tombstones) with its overlay.
pub struct MergedEdges<'a> {
    base_t: &'a [u32],
    base_w: &'a [f64],
    del: &'a [u32],
    add: &'a [(u32, f64)],
    bi: usize,
    di: usize,
    ai: usize,
}

impl Iterator for MergedEdges<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        // Skip tombstoned base entries (both cursors only move forward).
        while self.bi < self.base_t.len() {
            let t = self.base_t[self.bi];
            while self.di < self.del.len() && self.del[self.di] < t {
                self.di += 1;
            }
            if self.di < self.del.len() && self.del[self.di] == t {
                self.bi += 1;
            } else {
                break;
            }
        }
        let base = self.base_t.get(self.bi).copied();
        let add = self.add.get(self.ai).copied();
        match (base, add) {
            (None, None) => None,
            (Some(t), None) => {
                self.bi += 1;
                Some((t, self.base_w[self.bi - 1]))
            }
            (None, Some(e)) => {
                self.ai += 1;
                Some(e)
            }
            (Some(t), Some(e)) => {
                // An overlay target never coexists with a live base
                // target, so strict interleave is total.
                if t < e.0 {
                    self.bi += 1;
                    Some((t, self.base_w[self.bi - 1]))
                } else {
                    self.ai += 1;
                    Some(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond(directed: bool, weighted: bool) -> Arc<Csr> {
        let mut b = GraphBuilder::new(directed);
        b.set_weighted(weighted);
        b.add_vertex_range(5);
        for (s, d, w) in [(0u64, 1u64, 1.0), (1, 2, 2.0), (2, 3, 1.5), (0, 3, 4.0)] {
            if weighted {
                b.add_weighted_edge(s, d, w);
            } else {
                b.add_edge(s, d);
            }
        }
        Arc::new(b.build().unwrap().to_csr())
    }

    fn rows(csr: &Csr, u: u32) -> Vec<(u32, f64)> {
        csr.out_neighbors(u).iter().copied().zip(csr.out_weights(u).iter().copied()).collect()
    }

    /// The central contract: the merged view equals a freshly built CSR
    /// of the merged edge list, row by row.
    fn assert_view_matches_materialized(mg: &MutableGraph) {
        let pool = WorkerPool::inline();
        let csr = mg.materialize(&pool).unwrap();
        assert_eq!(csr.num_vertices(), mg.num_vertices());
        assert_eq!(csr.num_arcs() as u64, mg.num_arcs());
        for u in 0..mg.num_vertices() as u32 {
            let merged: Vec<(u32, f64)> = mg.out_edges(u).collect();
            assert_eq!(merged, rows(&csr, u), "out row {u}");
            assert_eq!(merged.len() as u32, mg.out_degree(u), "degree {u}");
            if mg.is_directed() {
                let merged_in: Vec<(u32, f64)> = mg.in_edges(u).collect();
                let csr_in: Vec<(u32, f64)> = csr
                    .in_neighbors(u)
                    .iter()
                    .copied()
                    .zip(csr.in_weights(u).iter().copied())
                    .collect();
                assert_eq!(merged_in, csr_in, "in row {u}");
            }
        }
    }

    #[test]
    fn insert_delete_update_roundtrip() {
        for directed in [true, false] {
            let base = diamond(directed, true);
            let pool = WorkerPool::inline();
            let mut mg = MutableGraph::new(base);
            let mut batch = MutationBatch::new();
            batch.delete(0, 1).insert_weighted(1, 4, 2.5).insert_weighted(0, 3, 9.0);
            let out = mg.apply(&batch, &pool).unwrap();
            assert_eq!(out.deleted, 1);
            assert_eq!(out.inserted, 1, "1→4 is new");
            assert_eq!(out.updated, 1, "0→3 weight changed");
            assert!(!mg.has_out_edge(0, 1));
            assert!(mg.has_out_edge(1, 4));
            assert_view_matches_materialized(&mg);
            if !directed {
                assert!(mg.has_out_edge(4, 1), "undirected symmetry");
            }

            // Set semantics: re-applying the same batch is all no-ops.
            let again = mg.apply(&batch, &pool).unwrap();
            assert_eq!(again, ApplyOutcome { inserted: 0, deleted: 0, updated: 0, compacted: false });

            // Deleting an overlay edge removes it outright; re-inserting
            // a deleted base edge with its old weight clears the tombstone.
            let mut back = MutationBatch::new();
            back.delete(1, 4).insert_weighted(0, 1, 1.0);
            let out = mg.apply(&back, &pool).unwrap();
            assert_eq!((out.inserted, out.deleted), (1, 1));
            assert!(mg.has_out_edge(0, 1));
            assert_view_matches_materialized(&mg);
        }
    }

    #[test]
    fn undeclared_vertices_and_self_loops_reject_atomically() {
        let base = diamond(false, false);
        let pool = WorkerPool::inline();
        let mut mg = MutableGraph::new(base);
        let mut bad = MutationBatch::new();
        bad.insert(0, 2).insert(1, 99);
        let err = mg.apply(&bad, &pool).unwrap_err();
        assert!(err.to_string().contains("undeclared vertex 99"), "{err}");
        assert_eq!(mg.delta_arcs(), 0, "nothing applied");
        assert!(!mg.has_out_edge(0, 2));

        let mut loopy = MutationBatch::new();
        loopy.delete(3, 3);
        assert!(mg.apply(&loopy, &pool).unwrap_err().to_string().contains("self loop"));

        let mut nan = MutationBatch::new();
        nan.insert_weighted(0, 2, f64::NAN);
        assert!(mg.apply(&nan, &pool).unwrap_err().to_string().contains("invalid weight"));
    }

    #[test]
    fn unweighted_graphs_force_unit_weights() {
        let base = diamond(true, false);
        let pool = WorkerPool::inline();
        let mut mg = MutableGraph::new(base);
        let mut batch = MutationBatch::new();
        batch.insert_weighted(3, 4, 7.0);
        mg.apply(&batch, &pool).unwrap();
        assert_eq!(mg.out_edges(3).collect::<Vec<_>>(), vec![(4, 1.0)]);
        assert_view_matches_materialized(&mg);
    }

    #[test]
    fn fill_ratio_triggers_auto_compaction() {
        let base = diamond(false, true); // 4 edges = 8 arcs
        let pool = WorkerPool::inline();
        let mut mg = MutableGraph::with_config(
            base,
            DeltaConfig { compact_fill: 0.25, auto_compact: true },
        );
        let mut batch = MutationBatch::new();
        batch.insert(1, 3); // 2 overlay arcs / 8 base arcs = 0.25
        let out = mg.apply(&batch, &pool).unwrap();
        assert!(out.compacted);
        assert_eq!(mg.delta_arcs(), 0, "log folded");
        assert_eq!(mg.stats().compactions, 1);
        assert!(mg.base().has_out_edge(1, 3), "compacted base holds the insert");
        assert_view_matches_materialized(&mg);

        // With auto-compaction off the log just grows.
        let mut manual = MutableGraph::with_config(
            diamond(false, true),
            DeltaConfig { compact_fill: 0.25, auto_compact: false },
        );
        manual.apply(&batch, &pool).unwrap();
        assert!(manual.needs_compaction());
        assert_eq!(manual.stats().compactions, 0);
        manual.compact(&pool).unwrap();
        assert_eq!(manual.delta_arcs(), 0);
    }

    #[test]
    fn compaction_preserves_vertex_order_and_view() {
        let base = diamond(true, true);
        let pool = WorkerPool::new(2);
        let mut mg = MutableGraph::with_config(
            base.clone(),
            DeltaConfig { auto_compact: false, ..DeltaConfig::default() },
        );
        let mut batch = MutationBatch::new();
        batch.delete(1, 2).insert_weighted(4, 0, 3.0).insert_weighted(2, 4, 1.0);
        mg.apply(&batch, &pool).unwrap();
        let before: Vec<Vec<(u32, f64)>> =
            (0..5).map(|u| mg.out_edges(u).collect()).collect();
        mg.compact(&pool).unwrap();
        assert_eq!(mg.vertex_ids(), base.vertex_ids());
        let after: Vec<Vec<(u32, f64)>> = (0..5).map(|u| mg.out_edges(u).collect()).collect();
        assert_eq!(before, after, "compaction must not change the view");
        assert_view_matches_materialized(&mg);
    }

    #[test]
    fn random_batches_are_deterministic_and_valid() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(64);
        for v in 0..64u64 {
            b.add_edge(v, (v + 1) % 64);
            let far = (v + 7) % 64;
            if far != v {
                let _ = b.try_add_edge(Edge::new(v, far));
            }
        }
        let csr = Arc::new(b.build().unwrap().to_csr());
        let a = random_batch(&csr, 10, 10, 42);
        let b2 = random_batch(&csr, 10, 10, 42);
        assert_eq!(a, b2, "same seed, same batch");
        let c = random_batch(&csr, 10, 10, 43);
        assert_ne!(a, c, "different seed, different batch");
        assert_eq!(a.deletions.len(), 10);
        assert_eq!(a.insertions.len(), 10);

        let pool = WorkerPool::inline();
        let mut mg = MutableGraph::new(csr);
        let out = mg.apply(&a, &pool).unwrap();
        assert_eq!(out.deleted, 10, "random deletions name existing edges");
        assert_eq!(out.inserted, 10, "random insertions name absent edges");
        assert_view_matches_materialized(&mg);
    }
}
