//! The Graphalytics graph data model (Section 2.2.1).
//!
//! A graph is a set of vertices, each identified by a unique (sparse) integer,
//! and a set of edges between distinct vertices. Graphs are directed or
//! undirected; every edge is unique (for undirected graphs, unique up to
//! orientation); vertices and edges may carry properties — the benchmark
//! itself only uses `f64` edge weights (for SSSP).
//!
//! Two representations are provided:
//!
//! * [`Graph`] — vertex list + edge list, the exchange format produced by
//!   generators and file loaders and consumed by platform "upload" phases;
//! * [`Csr`] — compressed sparse row adjacency (both directions), the format
//!   the reference implementations and the engines compute on.

mod builder;
mod csr;
mod delta;
mod io;
mod sharded;
mod stats;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use delta::{
    random_batch, ApplyOutcome, DeltaConfig, DeltaStats, MergedEdges, MutableGraph, MutationBatch,
};
pub use sharded::{ShardCsr, ShardedCsr};
pub use io::{
    read_edge_file, read_edge_file_with, read_graph, read_graph_with, read_vertex_file,
    write_edge_file, write_vertex_file,
};
pub use stats::GraphStats;

use crate::error::{Error, Result};

/// Sparse vertex identifier as it appears in datasets (unique integer).
pub type VertexId = u64;

/// A directed or undirected edge with an optional weight.
///
/// For undirected graphs the stored orientation is canonical
/// (`src < dst`); [`GraphBuilder`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    /// Edge weight; `NaN`-free by construction. Unweighted graphs use 1.0.
    pub weight: f64,
}

impl Edge {
    /// An unweighted edge (weight 1.0).
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst, weight: 1.0 }
    }

    /// A weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: f64) -> Self {
        Edge { src, dst, weight }
    }
}

/// An in-memory property graph in vertex-list/edge-list form.
///
/// Invariants (enforced by [`GraphBuilder`] and checked by
/// [`Graph::validate`]):
///
/// * `vertices` is sorted and duplicate-free;
/// * every edge endpoint is a declared vertex;
/// * no self loops;
/// * edges are unique; undirected edges are stored with `src < dst`.
#[derive(Debug, Clone)]
pub struct Graph {
    directed: bool,
    weighted: bool,
    vertices: Vec<VertexId>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Starts an empty builder.
    pub fn builder(directed: bool) -> GraphBuilder {
        GraphBuilder::new(directed)
    }

    pub(crate) fn from_parts(
        directed: bool,
        weighted: bool,
        vertices: Vec<VertexId>,
        edges: Vec<Edge>,
    ) -> Self {
        Graph { directed, weighted, vertices, edges }
    }

    /// True for directed graphs (ordered edge pairs).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// True when the graph carries meaningful edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Number of vertices, `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges, `|E|` (undirected edges counted once).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorted slice of vertex identifiers.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Edge list (canonical orientation for undirected graphs).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The benchmark scale of this graph, `log10(|V|+|E|)` rounded to one
    /// decimal (Section 2.2.4).
    pub fn scale(&self) -> f64 {
        crate::scale::scale_of(self.vertex_count() as u64, self.edge_count() as u64)
    }

    /// True if `v` is a vertex of this graph.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Re-checks all data-model invariants; used by tests and by the harness
    /// when it ingests user-provided graphs.
    pub fn validate(&self) -> Result<()> {
        if self.vertices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidGraph("vertex list not sorted/unique".into()));
        }
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.src == e.dst {
                return Err(Error::InvalidGraph(format!("self loop at vertex {}", e.src)));
            }
            if !self.contains_vertex(e.src) || !self.contains_vertex(e.dst) {
                return Err(Error::InvalidGraph(format!(
                    "edge ({}, {}) references undeclared vertex",
                    e.src, e.dst
                )));
            }
            let key = if self.directed { (e.src, e.dst) } else { (e.src.min(e.dst), e.src.max(e.dst)) };
            if !seen.insert(key) {
                return Err(Error::InvalidGraph(format!("duplicate edge ({}, {})", e.src, e.dst)));
            }
            if !self.directed && e.src > e.dst {
                return Err(Error::InvalidGraph(format!(
                    "undirected edge ({}, {}) not in canonical orientation",
                    e.src, e.dst
                )));
            }
            if e.weight.is_nan() || e.weight < 0.0 {
                return Err(Error::InvalidGraph(format!(
                    "edge ({}, {}) has invalid weight {}",
                    e.src, e.dst, e.weight
                )));
            }
        }
        Ok(())
    }

    /// Builds the CSR form used by algorithms and engines.
    ///
    /// Convenience wrapper for graphs produced by [`GraphBuilder`] (whose
    /// invariants guarantee success); graphs of unvalidated provenance
    /// should go through [`Graph::try_to_csr`] or [`Graph::to_csr_with`],
    /// which surface [`Error::InvalidGraph`] instead.
    pub fn to_csr(&self) -> Csr {
        Csr::from_graph(self).expect("builder-validated graph converts to CSR")
    }

    /// Fallible CSR conversion (sequential).
    pub fn try_to_csr(&self) -> Result<Csr> {
        Csr::from_graph(self)
    }

    /// Fallible CSR conversion on a worker pool — the parallel upload
    /// path. Bit-identical output for every pool width.
    pub fn to_csr_with(&self, pool: &crate::pool::WorkerPool) -> Result<Csr> {
        Csr::from_graph_with(self, pool)
    }

    /// Returns a copy of this graph with direction dropped (used by the
    /// harness for algorithms defined on the underlying undirected graph).
    pub fn as_undirected(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut b = GraphBuilder::new(false);
        b.set_weighted(self.weighted);
        for &v in &self.vertices {
            b.add_vertex(v);
        }
        for e in &self.edges {
            // Ignore duplicate-after-canonicalization errors: a directed
            // graph may contain both (u,v) and (v,u).
            let _ = b.try_add_edge(Edge::weighted(e.src, e.dst, e.weight));
        }
        b.build_unchecked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = Graph::builder(true);
        for v in [1u64, 2, 3, 5] {
            b.add_vertex(v);
        }
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 1);
        b.add_edge(5, 1);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.contains_vertex(5));
        assert!(!g.contains_vertex(4));
        assert!(g.is_directed());
        assert!(!g.is_weighted());
    }

    #[test]
    fn validate_detects_violations() {
        let g = Graph::from_parts(true, false, vec![1, 2], vec![Edge::new(1, 1)]);
        assert!(g.validate().is_err());
        let g = Graph::from_parts(true, false, vec![1, 2], vec![Edge::new(1, 3)]);
        assert!(g.validate().is_err());
        let g = Graph::from_parts(
            true,
            false,
            vec![1, 2],
            vec![Edge::new(1, 2), Edge::new(1, 2)],
        );
        assert!(g.validate().is_err());
        let g = Graph::from_parts(false, false, vec![1, 2], vec![Edge::new(2, 1)]);
        assert!(g.validate().is_err(), "non-canonical undirected edge");
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn undirected_view_merges_reciprocal_edges() {
        let mut b = Graph::builder(true);
        for v in [1u64, 2, 3] {
            b.add_vertex(v);
        }
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let u = g.as_undirected();
        assert!(!u.is_directed());
        assert_eq!(u.edge_count(), 2);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn scale_matches_formula() {
        let g = tiny();
        let s = (8f64).log10();
        assert!((g.scale() - (s * 10.0).round() / 10.0).abs() < 1e-9);
    }
}
