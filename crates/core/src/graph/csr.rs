//! Compressed-sparse-row adjacency, the compute representation shared by the
//! reference implementations and all six platform engines.

use super::{Graph, VertexId};

/// CSR adjacency in both directions with dense `u32` vertex indices.
///
/// Sparse dataset identifiers are mapped to dense indices `0..n` in sorted
/// order; [`Csr::id_of`] and [`Csr::index_of`] convert between the two.
/// For undirected graphs every edge is materialized in both rows of the
/// *out* structure and the *in* structure aliases it, so algorithms can be
/// written uniformly against `out_*`/`in_*`.
///
/// Adjacency rows are sorted by target index, enabling `O(log d)` edge
/// membership tests ([`Csr::has_out_edge`]) used by LCC.
#[derive(Debug, Clone)]
pub struct Csr {
    directed: bool,
    weighted: bool,
    vertex_ids: Box<[VertexId]>,
    out_offsets: Box<[u64]>,
    out_targets: Box<[u32]>,
    out_weights: Box<[f64]>,
    // Empty (aliased to out) for undirected graphs.
    in_offsets: Box<[u64]>,
    in_targets: Box<[u32]>,
    in_weights: Box<[f64]>,
}

impl Csr {
    /// Builds the CSR form of `g`.
    pub fn from_graph(g: &Graph) -> Csr {
        let n = g.vertex_count();
        let vertex_ids: Box<[VertexId]> = g.vertices().into();
        let index_of = |v: VertexId| -> u32 {
            vertex_ids.binary_search(&v).expect("edge endpoint is a declared vertex") as u32
        };

        let directed = g.is_directed();
        let weighted = g.is_weighted();

        // Degree counting.
        let mut out_deg = vec![0u64; n];
        let mut in_deg = vec![0u64; if directed { n } else { 0 }];
        let mut endpoints = Vec::with_capacity(g.edge_count());
        for e in g.edges() {
            let (s, d) = (index_of(e.src), index_of(e.dst));
            endpoints.push((s, d, e.weight));
            if directed {
                out_deg[s as usize] += 1;
                in_deg[d as usize] += 1;
            } else {
                out_deg[s as usize] += 1;
                out_deg[d as usize] += 1;
            }
        }

        let prefix = |deg: &[u64]| -> Vec<u64> {
            let mut off = Vec::with_capacity(deg.len() + 1);
            let mut acc = 0u64;
            off.push(0);
            for &d in deg {
                acc += d;
                off.push(acc);
            }
            off
        };
        let out_offsets = prefix(&out_deg);
        let stored_out = *out_offsets.last().unwrap() as usize;
        let mut out_targets = vec![0u32; stored_out];
        let mut out_weights = vec![1.0f64; stored_out];
        let mut out_cursor: Vec<u64> = out_offsets[..n].to_vec();

        let (in_offsets, mut in_targets, mut in_weights, mut in_cursor);
        if directed {
            let off = prefix(&in_deg);
            let stored_in = *off.last().unwrap() as usize;
            in_targets = vec![0u32; stored_in];
            in_weights = vec![1.0f64; stored_in];
            in_cursor = off[..n].to_vec();
            in_offsets = off;
        } else {
            in_offsets = Vec::new();
            in_targets = Vec::new();
            in_weights = Vec::new();
            in_cursor = Vec::new();
        }

        for &(s, d, w) in &endpoints {
            let c = out_cursor[s as usize] as usize;
            out_targets[c] = d;
            out_weights[c] = w;
            out_cursor[s as usize] += 1;
            if directed {
                let c = in_cursor[d as usize] as usize;
                in_targets[c] = s;
                in_weights[c] = w;
                in_cursor[d as usize] += 1;
            } else {
                let c = out_cursor[d as usize] as usize;
                out_targets[c] = s;
                out_weights[c] = w;
                out_cursor[d as usize] += 1;
            }
        }

        // Sort every row by target for deterministic layout + binary search.
        let sort_rows = |offsets: &[u64], targets: &mut [u32], weights: &mut [f64]| {
            for i in 0..n {
                let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                if hi - lo > 1 {
                    let mut row: Vec<(u32, f64)> = targets[lo..hi]
                        .iter()
                        .copied()
                        .zip(weights[lo..hi].iter().copied())
                        .collect();
                    row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    for (k, (t, w)) in row.into_iter().enumerate() {
                        targets[lo + k] = t;
                        weights[lo + k] = w;
                    }
                }
            }
        };
        sort_rows(&out_offsets, &mut out_targets, &mut out_weights);
        if directed {
            sort_rows(&in_offsets, &mut in_targets, &mut in_weights);
        }

        Csr {
            directed,
            weighted,
            vertex_ids,
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            out_weights: out_weights.into(),
            in_offsets: in_offsets.into(),
            in_targets: in_targets.into(),
            in_weights: in_weights.into(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of *logical* edges (undirected edges counted once), matching
    /// the dataset's `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        let stored = self.out_targets.len();
        if self.directed {
            stored
        } else {
            stored / 2
        }
    }

    /// Number of stored arcs (2·|E| for undirected graphs). This is the unit
    /// the engines' work counters use for "edges scanned".
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// True for directed graphs.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// True when edge weights are meaningful.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Sparse id of dense index `u`.
    #[inline]
    pub fn id_of(&self, u: u32) -> VertexId {
        self.vertex_ids[u as usize]
    }

    /// All sparse ids, sorted (dense order).
    #[inline]
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertex_ids
    }

    /// Dense index of a sparse id, if present.
    #[inline]
    pub fn index_of(&self, v: VertexId) -> Option<u32> {
        self.vertex_ids.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Out-neighbour row of `u` (sorted). For undirected graphs this is the
    /// full neighbourhood.
    #[inline]
    pub fn out_neighbors(&self, u: u32) -> &[u32] {
        let (lo, hi) = self.out_range(u);
        &self.out_targets[lo..hi]
    }

    /// Weights parallel to [`Csr::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, u: u32) -> &[f64] {
        let (lo, hi) = self.out_range(u);
        &self.out_weights[lo..hi]
    }

    /// In-neighbour row of `u` (sorted); aliases the out row for undirected
    /// graphs.
    #[inline]
    pub fn in_neighbors(&self, u: u32) -> &[u32] {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            &self.in_targets[lo..hi]
        } else {
            self.out_neighbors(u)
        }
    }

    /// Weights parallel to [`Csr::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, u: u32) -> &[f64] {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            &self.in_weights[lo..hi]
        } else {
            self.out_weights(u)
        }
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: u32) -> usize {
        let (lo, hi) = self.out_range(u);
        hi - lo
    }

    /// In-degree of `u` (== out-degree for undirected graphs).
    #[inline]
    pub fn in_degree(&self, u: u32) -> usize {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            hi - lo
        } else {
            self.out_degree(u)
        }
    }

    /// True if the arc `u -> v` exists (`O(log d)`).
    #[inline]
    pub fn has_out_edge(&self, u: u32, v: u32) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The *union* neighbourhood of `u` — distinct vertices adjacent via an
    /// in- or out-edge, excluding `u` itself. This is `N(v)` in the LCC
    /// definition. Sorted output.
    pub fn neighborhood_union(&self, u: u32) -> Vec<u32> {
        if !self.directed {
            // Rows are sorted and self loops are excluded by the data model.
            return self.out_neighbors(u).to_vec();
        }
        let out = self.out_neighbors(u);
        let inn = self.in_neighbors(u);
        let mut merged = Vec::with_capacity(out.len() + inn.len());
        let (mut i, mut j) = (0, 0);
        while i < out.len() && j < inn.len() {
            match out[i].cmp(&inn[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(out[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(inn[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(out[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&out[i..]);
        merged.extend_from_slice(&inn[j..]);
        merged.dedup();
        merged
    }

    /// Estimated resident size in bytes; used by upload-phase accounting.
    pub fn resident_bytes(&self) -> u64 {
        (self.vertex_ids.len() * 8
            + (self.out_offsets.len() + self.in_offsets.len()) * 8
            + (self.out_targets.len() + self.in_targets.len()) * 4
            + (self.out_weights.len() + self.in_weights.len()) * 8) as u64
    }

    #[inline]
    fn out_range(&self, u: u32) -> (usize, usize) {
        (self.out_offsets[u as usize] as usize, self.out_offsets[u as usize + 1] as usize)
    }

    #[inline]
    fn in_range(&self, u: u32) -> (usize, usize) {
        (self.in_offsets[u as usize] as usize, self.in_offsets[u as usize + 1] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn directed_graph() -> Graph {
        // 10 -> 20, 10 -> 30, 20 -> 30, 30 -> 10
        let mut b = GraphBuilder::new(true);
        for v in [10u64, 20, 30] {
            b.add_vertex(v);
        }
        b.add_edge(10, 20);
        b.add_edge(10, 30);
        b.add_edge(20, 30);
        b.add_edge(30, 10);
        b.build().unwrap()
    }

    #[test]
    fn dense_mapping_is_sorted_order() {
        let csr = directed_graph().to_csr();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.id_of(0), 10);
        assert_eq!(csr.id_of(2), 30);
        assert_eq!(csr.index_of(20), Some(1));
        assert_eq!(csr.index_of(99), None);
    }

    #[test]
    fn directed_adjacency() {
        let csr = directed_graph().to_csr();
        assert_eq!(csr.out_neighbors(0), &[1, 2]); // 10 -> {20, 30}
        assert_eq!(csr.out_neighbors(2), &[0]); // 30 -> {10}
        assert_eq!(csr.in_neighbors(2), &[0, 1]); // 30 <- {10, 20}
        assert_eq!(csr.in_degree(0), 1);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.num_arcs(), 4);
        assert!(csr.has_out_edge(0, 1));
        assert!(!csr.has_out_edge(1, 0));
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 3);
        let g = b.build().unwrap();
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.num_arcs(), 6);
        assert_eq!(csr.out_neighbors(1), &[0, 2]);
        assert_eq!(csr.in_neighbors(1), &[0, 2]);
        assert_eq!(csr.out_degree(0), 2);
        assert!(csr.has_out_edge(3, 0));
    }

    #[test]
    fn weights_follow_sorted_targets() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.set_weighted(true);
        b.add_weighted_edge(0, 2, 2.5);
        b.add_weighted_edge(0, 1, 1.5);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(csr.out_neighbors(0), &[1, 2]);
        assert_eq!(csr.out_weights(0), &[1.5, 2.5]);
        assert_eq!(csr.in_weights(2), &[2.5]);
    }

    #[test]
    fn neighborhood_union_directed() {
        // 0 -> 1, 1 -> 0 (reciprocal), 0 -> 2, 3 -> 0
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 2);
        b.add_edge(3, 0);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(csr.neighborhood_union(0), vec![1, 2, 3]);
        assert_eq!(csr.neighborhood_union(2), vec![0]);
    }

    #[test]
    fn resident_bytes_positive_and_monotone() {
        let small = directed_graph().to_csr();
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(100);
        for i in 0..99u64 {
            b.add_edge(i, i + 1);
        }
        let big = b.build().unwrap().to_csr();
        assert!(big.resident_bytes() > small.resident_bytes());
    }
}
