//! Compressed-sparse-row adjacency, the compute representation shared by the
//! reference implementations and all six platform engines.
//!
//! The build (the benchmark's "upload" phase) runs on a [`WorkerPool`]:
//! per-worker degree counting over contiguous edge chunks, a prefix
//! merge that turns the per-worker counts into exclusive row cursors,
//! a race-free parallel scatter, and a parallel per-row sort. Because
//! every row ends up sorted by `(target, weight)` — a total order — the
//! result is bit-identical for every thread count, including the
//! sequential build ([`Csr::from_graph`] uses the inline pool).
//!
//! Sparse-to-dense remapping is hashmap-free: the sorted vertex-id list
//! is classified once into contiguous / dense-table / binary-search
//! ([`Remap`]), so the common generator case (ids `0..n`) remaps each
//! endpoint with a subtraction instead of an `O(log n)` search.

use super::{Graph, VertexId};
use crate::error::{Error, Result};
use crate::pool::{SharedSlice, WorkerPool};

/// CSR adjacency in both directions with dense `u32` vertex indices.
///
/// Sparse dataset identifiers are mapped to dense indices `0..n` in sorted
/// order; [`Csr::id_of`] and [`Csr::index_of`] convert between the two.
/// For undirected graphs every edge is materialized in both rows of the
/// *out* structure and the *in* structure aliases it, so algorithms can be
/// written uniformly against `out_*`/`in_*`.
///
/// Adjacency rows are sorted by target index, enabling `O(log d)` edge
/// membership tests ([`Csr::has_out_edge`]) used by LCC.
#[derive(Debug, Clone)]
pub struct Csr {
    directed: bool,
    weighted: bool,
    vertex_ids: Box<[VertexId]>,
    out_offsets: Box<[u64]>,
    out_targets: Box<[u32]>,
    out_weights: Box<[f64]>,
    // Empty (aliased to out) for undirected graphs.
    in_offsets: Box<[u64]>,
    in_targets: Box<[u32]>,
    in_weights: Box<[f64]>,
}

/// The hashmap-free sparse-id → dense-index map, classified once per
/// build from the sorted, duplicate-free vertex-id list.
enum Remap<'a> {
    /// Ids are exactly `lo..lo + n`: remap is a subtraction.
    Offset { lo: u64, n: u64 },
    /// Small id span: direct lookup table (`u32::MAX` = absent).
    Table { lo: u64, table: Vec<u32> },
    /// Sparse ids over a wide span: binary search.
    Search(&'a [VertexId]),
}

impl<'a> Remap<'a> {
    fn new(ids: &'a [VertexId]) -> Remap<'a> {
        let n = ids.len();
        if n == 0 {
            return Remap::Offset { lo: 0, n: 0 };
        }
        let (lo, hi) = (ids[0], ids[n - 1]);
        // Ids spanning (nearly) the whole u64 range overflow the span
        // computation; they can only ever be the binary-search case.
        let Some(span) = (hi - lo).checked_add(1) else {
            return Remap::Search(ids);
        };
        if span == n as u64 {
            return Remap::Offset { lo, n: n as u64 };
        }
        // A table costs 4 bytes per id in the span; accept a modest
        // blow-up over the (4 bytes × n) ideal before falling back.
        if span <= (4 * n as u64).max(1 << 16) {
            let mut table = vec![u32::MAX; span as usize];
            for (i, &v) in ids.iter().enumerate() {
                table[(v - lo) as usize] = i as u32;
            }
            return Remap::Table { lo, table };
        }
        Remap::Search(ids)
    }

    #[inline]
    fn index_of(&self, v: VertexId) -> Option<u32> {
        match self {
            Remap::Offset { lo, n } => {
                v.checked_sub(*lo).filter(|d| d < n).map(|d| d as u32)
            }
            Remap::Table { lo, table } => {
                let d = v.checked_sub(*lo)?;
                table.get(d as usize).copied().filter(|&i| i != u32::MAX)
            }
            Remap::Search(ids) => ids.binary_search(&v).ok().map(|i| i as u32),
        }
    }
}

/// Rewrites `counts[w][v]` (per-worker degree contributions) into each
/// worker's exclusive prefix within row `v` and returns the global row
/// offsets. Parallel over vertex ranges: each task owns a disjoint set
/// of columns across all worker rows.
fn exclusive_offsets(pool: &WorkerPool, n: usize, counts: &mut [Vec<u32>]) -> Vec<u64> {
    let mut offsets = vec![0u64; n + 1];
    {
        let off = SharedSlice::new(offsets.as_mut_ptr());
        let rows: Vec<SharedSlice<u32>> =
            counts.iter_mut().map(|c| SharedSlice::new(c.as_mut_ptr())).collect();
        pool.run(n, |_, vrange| {
            for v in vrange {
                let mut acc = 0u64;
                for row in &rows {
                    // SAFETY: vertex ranges are disjoint; only this task
                    // touches column v of any row.
                    let cell = unsafe { row.at(v) };
                    let c = *cell;
                    *cell = acc as u32;
                    acc += c as u64;
                }
                debug_assert!(acc <= u32::MAX as u64, "row degree overflows u32 cursor");
                unsafe { *off.at(v + 1) = acc };
            }
        });
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    offsets
}

impl Csr {
    /// Builds the CSR form of `g` sequentially (the inline pool).
    ///
    /// Fails with [`Error::InvalidGraph`] when an edge endpoint is not a
    /// declared vertex — possible only for graphs that bypassed
    /// [`GraphBuilder`](super::GraphBuilder) validation.
    pub fn from_graph(g: &Graph) -> Result<Csr> {
        Csr::from_graph_with(g, &WorkerPool::inline())
    }

    /// Builds the CSR form of `g` on `pool`. Bit-identical to
    /// [`Csr::from_graph`] for every pool width (see the module docs).
    pub fn from_graph_with(g: &Graph, pool: &WorkerPool) -> Result<Csr> {
        crate::fault::checkpoint(crate::fault::FaultSite::Build)?;
        let n = g.vertex_count();
        let vertex_ids: Box<[VertexId]> = g.vertices().into();
        let remap = Remap::new(&vertex_ids);
        let directed = g.is_directed();
        let weighted = g.is_weighted();
        let edges = g.edges();
        let m = edges.len();

        // Pass 1 — remap endpoints and count per-worker degrees over
        // contiguous edge chunks.
        let mut endpoints: Vec<(u32, u32, f64)> = vec![(0, 0, 0.0); m];
        let counted = {
            let ep = SharedSlice::new(endpoints.as_mut_ptr());
            pool.run(m, |_, chunk| -> Result<(Vec<u32>, Vec<u32>)> {
                let mut out_cnt = vec![0u32; n];
                let mut in_cnt = vec![0u32; if directed { n } else { 0 }];
                for i in chunk {
                    let e = &edges[i];
                    let (s, d) = match (remap.index_of(e.src), remap.index_of(e.dst)) {
                        (Some(s), Some(d)) => (s, d),
                        _ => {
                            return Err(Error::InvalidGraph(format!(
                                "edge ({}, {}) references undeclared vertex",
                                e.src, e.dst
                            )))
                        }
                    };
                    // SAFETY: edge chunks are disjoint; only this worker
                    // writes slot i.
                    unsafe { *ep.at(i) = (s, d, e.weight) };
                    out_cnt[s as usize] += 1;
                    if directed {
                        in_cnt[d as usize] += 1;
                    } else {
                        out_cnt[d as usize] += 1;
                    }
                }
                Ok((out_cnt, in_cnt))
            })
        };
        let mut out_counts = Vec::with_capacity(counted.len());
        let mut in_counts = Vec::with_capacity(counted.len());
        for worker in counted {
            let (o, i) = worker?;
            out_counts.push(o);
            in_counts.push(i);
        }

        // Pass 2 — per-worker counts → global offsets + exclusive cursors.
        crate::fault::checkpoint(crate::fault::FaultSite::Build)?;
        let out_offsets = exclusive_offsets(pool, n, &mut out_counts);
        let in_offsets =
            if directed { exclusive_offsets(pool, n, &mut in_counts) } else { Vec::new() };

        // Pass 3 — scatter: worker w fills the slots its exclusive
        // cursors reserve, so no two workers ever write the same index
        // and the layout is thread-count-independent after the row sort.
        let stored_out = out_offsets[n] as usize;
        let mut out_targets = vec![0u32; stored_out];
        let mut out_weights = vec![1.0f64; stored_out];
        let stored_in = if directed { *in_offsets.last().unwrap() as usize } else { 0 };
        let mut in_targets = vec![0u32; stored_in];
        let mut in_weights = vec![1.0f64; stored_in];
        {
            let tgt = SharedSlice::new(out_targets.as_mut_ptr());
            let wts = SharedSlice::new(out_weights.as_mut_ptr());
            let itgt = SharedSlice::new(in_targets.as_mut_ptr());
            let iwts = SharedSlice::new(in_weights.as_mut_ptr());
            let out_cursors: Vec<SharedSlice<u32>> =
                out_counts.iter_mut().map(|c| SharedSlice::new(c.as_mut_ptr())).collect();
            let in_cursors: Vec<SharedSlice<u32>> =
                in_counts.iter_mut().map(|c| SharedSlice::new(c.as_mut_ptr())).collect();
            let endpoints = &endpoints;
            pool.run(m, |w, chunk| {
                // SAFETY (whole loop): cursor row w belongs to worker w
                // alone; slot indices derived from exclusive cursors are
                // globally unique.
                for i in chunk {
                    let (s, d, weight) = endpoints[i];
                    unsafe {
                        let c = out_cursors[w].at(s as usize);
                        let pos = out_offsets[s as usize] as usize + *c as usize;
                        *c += 1;
                        *tgt.at(pos) = d;
                        *wts.at(pos) = weight;
                        if directed {
                            let c = in_cursors[w].at(d as usize);
                            let pos = in_offsets[d as usize] as usize + *c as usize;
                            *c += 1;
                            *itgt.at(pos) = s;
                            *iwts.at(pos) = weight;
                        } else {
                            let c = out_cursors[w].at(d as usize);
                            let pos = out_offsets[d as usize] as usize + *c as usize;
                            *c += 1;
                            *tgt.at(pos) = s;
                            *wts.at(pos) = weight;
                        }
                    }
                }
            });
        }

        // Pass 4 — sort every row by (target, weight), a total order:
        // the final layout is independent of scatter order, hence of the
        // thread count. Parallel over vertex ranges (disjoint rows).
        let sort_rows = |offsets: &[u64], targets: &mut Vec<u32>, weights: &mut Vec<f64>| {
            let tgt = SharedSlice::new(targets.as_mut_ptr());
            let wts = SharedSlice::new(weights.as_mut_ptr());
            pool.run(n, |_, vrange| {
                for v in vrange {
                    let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                    if hi - lo <= 1 {
                        continue;
                    }
                    // SAFETY: rows are disjoint slices and vertex ranges
                    // are disjoint.
                    let trow = unsafe { tgt.slice_mut(lo, hi - lo) };
                    let wrow = unsafe { wts.slice_mut(lo, hi - lo) };
                    let mut row: Vec<(u32, f64)> =
                        trow.iter().copied().zip(wrow.iter().copied()).collect();
                    row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    for (k, (t, w)) in row.into_iter().enumerate() {
                        trow[k] = t;
                        wrow[k] = w;
                    }
                }
            });
        };
        sort_rows(&out_offsets, &mut out_targets, &mut out_weights);
        if directed {
            sort_rows(&in_offsets, &mut in_targets, &mut in_weights);
        }

        Ok(Csr {
            directed,
            weighted,
            vertex_ids,
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            out_weights: out_weights.into(),
            in_offsets: in_offsets.into(),
            in_targets: in_targets.into(),
            in_weights: in_weights.into(),
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of *logical* edges (undirected edges counted once), matching
    /// the dataset's `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        let stored = self.out_targets.len();
        if self.directed {
            stored
        } else {
            stored / 2
        }
    }

    /// Number of stored arcs (2·|E| for undirected graphs). This is the unit
    /// the engines' work counters use for "edges scanned".
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// True for directed graphs.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// True when edge weights are meaningful.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Sparse id of dense index `u`.
    #[inline]
    pub fn id_of(&self, u: u32) -> VertexId {
        self.vertex_ids[u as usize]
    }

    /// All sparse ids, sorted (dense order).
    #[inline]
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertex_ids
    }

    /// Dense index of a sparse id, if present.
    #[inline]
    pub fn index_of(&self, v: VertexId) -> Option<u32> {
        self.vertex_ids.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Out-neighbour row of `u` (sorted). For undirected graphs this is the
    /// full neighbourhood.
    #[inline]
    pub fn out_neighbors(&self, u: u32) -> &[u32] {
        let (lo, hi) = self.out_range(u);
        &self.out_targets[lo..hi]
    }

    /// Weights parallel to [`Csr::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, u: u32) -> &[f64] {
        let (lo, hi) = self.out_range(u);
        &self.out_weights[lo..hi]
    }

    /// In-neighbour row of `u` (sorted); aliases the out row for undirected
    /// graphs.
    #[inline]
    pub fn in_neighbors(&self, u: u32) -> &[u32] {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            &self.in_targets[lo..hi]
        } else {
            self.out_neighbors(u)
        }
    }

    /// Weights parallel to [`Csr::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, u: u32) -> &[f64] {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            &self.in_weights[lo..hi]
        } else {
            self.out_weights(u)
        }
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: u32) -> usize {
        let (lo, hi) = self.out_range(u);
        hi - lo
    }

    /// In-degree of `u` (== out-degree for undirected graphs).
    #[inline]
    pub fn in_degree(&self, u: u32) -> usize {
        if self.directed {
            let (lo, hi) = self.in_range(u);
            hi - lo
        } else {
            self.out_degree(u)
        }
    }

    /// True if the arc `u -> v` exists (`O(log d)`).
    #[inline]
    pub fn has_out_edge(&self, u: u32, v: u32) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The *union* neighbourhood of `u` — distinct vertices adjacent via an
    /// in- or out-edge, excluding `u` itself. This is `N(v)` in the LCC
    /// definition. Sorted output.
    pub fn neighborhood_union(&self, u: u32) -> Vec<u32> {
        if !self.directed {
            // Rows are sorted and self loops are excluded by the data model.
            return self.out_neighbors(u).to_vec();
        }
        let out = self.out_neighbors(u);
        let inn = self.in_neighbors(u);
        let mut merged = Vec::with_capacity(out.len() + inn.len());
        let (mut i, mut j) = (0, 0);
        while i < out.len() && j < inn.len() {
            match out[i].cmp(&inn[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(out[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(inn[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(out[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&out[i..]);
        merged.extend_from_slice(&inn[j..]);
        merged.dedup();
        merged
    }

    /// Estimated resident size in bytes; used by upload-phase accounting.
    pub fn resident_bytes(&self) -> u64 {
        (self.vertex_ids.len() * 8
            + (self.out_offsets.len() + self.in_offsets.len()) * 8
            + (self.out_targets.len() + self.in_targets.len()) * 4
            + (self.out_weights.len() + self.in_weights.len()) * 8) as u64
    }

    #[inline]
    fn out_range(&self, u: u32) -> (usize, usize) {
        (self.out_offsets[u as usize] as usize, self.out_offsets[u as usize + 1] as usize)
    }

    #[inline]
    fn in_range(&self, u: u32) -> (usize, usize) {
        (self.in_offsets[u as usize] as usize, self.in_offsets[u as usize + 1] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn directed_graph() -> Graph {
        // 10 -> 20, 10 -> 30, 20 -> 30, 30 -> 10
        let mut b = GraphBuilder::new(true);
        for v in [10u64, 20, 30] {
            b.add_vertex(v);
        }
        b.add_edge(10, 20);
        b.add_edge(10, 30);
        b.add_edge(20, 30);
        b.add_edge(30, 10);
        b.build().unwrap()
    }

    #[test]
    fn dense_mapping_is_sorted_order() {
        let csr = directed_graph().to_csr();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.id_of(0), 10);
        assert_eq!(csr.id_of(2), 30);
        assert_eq!(csr.index_of(20), Some(1));
        assert_eq!(csr.index_of(99), None);
    }

    #[test]
    fn directed_adjacency() {
        let csr = directed_graph().to_csr();
        assert_eq!(csr.out_neighbors(0), &[1, 2]); // 10 -> {20, 30}
        assert_eq!(csr.out_neighbors(2), &[0]); // 30 -> {10}
        assert_eq!(csr.in_neighbors(2), &[0, 1]); // 30 <- {10, 20}
        assert_eq!(csr.in_degree(0), 1);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.num_arcs(), 4);
        assert!(csr.has_out_edge(0, 1));
        assert!(!csr.has_out_edge(1, 0));
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 3);
        let g = b.build().unwrap();
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.num_arcs(), 6);
        assert_eq!(csr.out_neighbors(1), &[0, 2]);
        assert_eq!(csr.in_neighbors(1), &[0, 2]);
        assert_eq!(csr.out_degree(0), 2);
        assert!(csr.has_out_edge(3, 0));
    }

    #[test]
    fn weights_follow_sorted_targets() {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.set_weighted(true);
        b.add_weighted_edge(0, 2, 2.5);
        b.add_weighted_edge(0, 1, 1.5);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(csr.out_neighbors(0), &[1, 2]);
        assert_eq!(csr.out_weights(0), &[1.5, 2.5]);
        assert_eq!(csr.in_weights(2), &[2.5]);
    }

    #[test]
    fn neighborhood_union_directed() {
        // 0 -> 1, 1 -> 0 (reciprocal), 0 -> 2, 3 -> 0
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 2);
        b.add_edge(3, 0);
        let csr = b.build().unwrap().to_csr();
        assert_eq!(csr.neighborhood_union(0), vec![1, 2, 3]);
        assert_eq!(csr.neighborhood_union(2), vec![0]);
    }

    #[test]
    fn undeclared_endpoint_is_invalid_graph_not_panic() {
        use crate::graph::Edge;
        // `from_parts` bypasses builder validation, the only way an edge
        // can reference a vertex that was never declared.
        let g = Graph::from_parts(true, false, vec![1, 2], vec![Edge::new(1, 3)]);
        let err = Csr::from_graph(&g).unwrap_err();
        assert!(matches!(err, crate::error::Error::InvalidGraph(_)), "{err}");
        assert!(err.to_string().contains("undeclared vertex"), "{err}");
        // The parallel build reports the same error.
        let pool = crate::pool::WorkerPool::new(3);
        assert!(Csr::from_graph_with(&g, &pool).is_err());
        assert!(g.try_to_csr().is_err());
    }

    #[test]
    fn remap_strategies_agree() {
        // Contiguous ids (offset), clustered ids (table), and sparse ids
        // spanning a wide range (binary search) must all produce the
        // same adjacency as the sorted-order dense mapping promises.
        for ids in [
            vec![0u64, 1, 2, 3],
            vec![100, 101, 102, 103],
            vec![10, 12, 13, 19],
            vec![5, 1 << 20, 1 << 40, 1 << 60],
            // Full-range span: `hi - lo + 1` overflows u64 and must fall
            // back to binary search instead of panicking.
            vec![0, 1, u64::MAX - 1, u64::MAX],
        ] {
            let mut b = GraphBuilder::new(true);
            for &v in &ids {
                b.add_vertex(v);
            }
            b.add_edge(ids[0], ids[2]);
            b.add_edge(ids[3], ids[1]);
            let csr = b.build().unwrap().to_csr();
            assert_eq!(csr.out_neighbors(0), &[2], "ids={ids:?}");
            assert_eq!(csr.out_neighbors(3), &[1], "ids={ids:?}");
            assert_eq!(csr.in_degree(2), 1);
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // A mid-sized pseudo-random graph, built inline and on pools of
        // several widths: offsets, targets and weights must be identical.
        for directed in [true, false] {
            let mut b = GraphBuilder::new(directed);
            b.set_weighted(true);
            b.dedup_edges(true);
            let n = 257u64;
            for v in 0..n {
                b.add_vertex(v);
            }
            let mut x = 0x5EEDu64;
            for _ in 0..2048 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = (x >> 33) % n;
                let d = (x >> 13) % n;
                if s != d {
                    b.add_weighted_edge(s, d, ((x >> 3) % 97) as f64 / 7.0);
                }
            }
            let g = b.build().unwrap();
            let seq = g.to_csr();
            for threads in [2u32, 3, 8] {
                let pool = crate::pool::WorkerPool::new(threads);
                let par = g.to_csr_with(&pool).unwrap();
                assert_eq!(par.num_vertices(), seq.num_vertices());
                assert_eq!(par.num_arcs(), seq.num_arcs());
                for u in 0..seq.num_vertices() as u32 {
                    assert_eq!(par.out_neighbors(u), seq.out_neighbors(u), "u={u}");
                    assert_eq!(par.out_weights(u), seq.out_weights(u), "u={u}");
                    assert_eq!(par.in_neighbors(u), seq.in_neighbors(u), "u={u}");
                    assert_eq!(par.in_weights(u), seq.in_weights(u), "u={u}");
                }
            }
        }
    }

    #[test]
    fn resident_bytes_positive_and_monotone() {
        let small = directed_graph().to_csr();
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(100);
        for i in 0..99u64 {
            b.add_edge(i, i + 1);
        }
        let big = b.build().unwrap().to_csr();
        assert!(big.resident_bytes() > small.resident_bytes());
    }
}
