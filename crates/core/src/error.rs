//! Error type shared across the Graphalytics crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by graph construction, I/O, and benchmark execution.
#[derive(Debug)]
pub enum Error {
    /// A graph violated a data-model invariant (Section 2.2.1): duplicate
    /// edge, self loop, or an edge endpoint that is not a declared vertex.
    InvalidGraph(String),
    /// A malformed vertex/edge file or benchmark configuration file.
    Parse { file: String, line: u64, message: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An algorithm was asked to run with missing or inconsistent
    /// parameters (e.g. SSSP on an unweighted graph).
    InvalidParameters(String),
    /// A platform does not implement the requested algorithm
    /// (e.g. LCC on PGX.D in the paper's evaluation).
    Unsupported { platform: String, algorithm: String },
    /// A dataset id or name that is not in the benchmark registry
    /// (Tables 3–4).
    UnknownDataset(String),
    /// A platform name that matches neither a model name nor a paper
    /// analogue (Table 5).
    UnknownPlatform(String),
    /// The (simulated) system ran out of memory; maps to the paper's
    /// crash-type SLA violations (Sections 2.3 and 4.6).
    OutOfMemory { required_bytes: u64, available_bytes: u64 },
    /// A benchmark job exceeded its SLA makespan budget (Section 2.3).
    SlaViolation { makespan_secs: f64, limit_secs: f64 },
    /// Output validation against the reference implementation failed.
    ValidationFailed(String),
    /// The run observed cooperative cancellation at a checkpoint
    /// (operator `DELETE /jobs/:id`, or a scripted cancel fault).
    Cancelled,
    /// The run's armed deadline passed before completion.
    DeadlineExceeded { timeout_secs: f64 },
    /// A fault deliberately injected by the fault plane (`core::fault`).
    /// Transient faults are retried by the service with bounded backoff;
    /// permanent ones are terminal.
    Injected { site: &'static str, transient: bool },
    /// Anything else.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
            Error::Parse { file, line, message } => {
                write!(f, "parse error in {file}:{line}: {message}")
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            Error::Unsupported { platform, algorithm } => {
                write!(f, "platform {platform} does not support algorithm {algorithm}")
            }
            Error::UnknownDataset(id) => write!(f, "unknown dataset {id}"),
            Error::UnknownPlatform(name) => write!(f, "unknown platform {name}"),
            Error::OutOfMemory { required_bytes, available_bytes } => write!(
                f,
                "out of memory: required {required_bytes} B, available {available_bytes} B"
            ),
            Error::SlaViolation { makespan_secs, limit_secs } => write!(
                f,
                "SLA violation: makespan {makespan_secs:.1}s exceeds limit {limit_secs:.1}s"
            ),
            Error::ValidationFailed(msg) => write!(f, "output validation failed: {msg}"),
            Error::Cancelled => f.write_str("cancelled"),
            Error::DeadlineExceeded { timeout_secs } => {
                write!(f, "deadline exceeded: run did not finish within {timeout_secs:.3}s")
            }
            Error::Injected { site, transient } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "injected {class} fault at {site}")
            }
            Error::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True when the error counts as a *failed job* under the benchmark SLA
    /// (crash or timeout), as opposed to a configuration/user error.
    pub fn breaks_sla(&self) -> bool {
        matches!(self, Error::OutOfMemory { .. } | Error::SlaViolation { .. })
    }

    /// True for injected-transient faults — the only class the service
    /// retries with backoff.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Injected { transient: true, .. })
    }

    /// True for errors produced by the fault/cancellation plane itself
    /// (as opposed to genuine configuration or data errors).
    pub fn is_fault_control(&self) -> bool {
        matches!(
            self,
            Error::Cancelled | Error::DeadlineExceeded { .. } | Error::Injected { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::OutOfMemory { required_bytes: 10, available_bytes: 5 };
        assert!(e.to_string().contains("out of memory"));
        assert!(e.breaks_sla());
        let e = Error::SlaViolation { makespan_secs: 4000.0, limit_secs: 3600.0 };
        assert!(e.breaks_sla());
        let e = Error::InvalidGraph("self loop".into());
        assert!(!e.breaks_sla());
        assert!(e.to_string().contains("self loop"));
        // Bad-request errors are user errors, not SLA failures.
        let e = Error::UnknownDataset("R99".into());
        assert!(!e.breaks_sla());
        assert_eq!(e.to_string(), "unknown dataset R99");
        let e = Error::UnknownPlatform("quantum".into());
        assert!(!e.breaks_sla());
        assert_eq!(e.to_string(), "unknown platform quantum");
    }

    #[test]
    fn io_error_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
