//! Block construction.
//!
//! Datagen generates friendships only between persons falling in the same
//! *block*: persons are sorted along a correlation dimension and the sorted
//! sequence is cut into fixed-size blocks. Consecutive persons in a block
//! have similar attribute values, so windowed/community wiring inside the
//! block yields the correlated structure ("persons with similar
//! characteristics are more likely to be connected").

use crate::person::{Dimension, Person};

/// Returns person *indices* (into the input slice) sorted along `dim` and
/// partitioned into blocks of at most `block_size`.
pub fn blocks_along(persons: &[Person], dim: Dimension, block_size: u32) -> Vec<Vec<u32>> {
    assert!(block_size >= 2, "blocks must hold at least two persons");
    let mut order: Vec<u32> = (0..persons.len() as u32).collect();
    order.sort_unstable_by_key(|&i| dim.key(&persons[i as usize]));
    order
        .chunks(block_size as usize)
        .map(|chunk| chunk.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::generate_persons;

    #[test]
    fn blocks_cover_all_persons_once() {
        let persons = generate_persons(1000, 10.0, 100, 5);
        let blocks = blocks_along(&persons, Dimension::Interest, 128);
        let mut seen = vec![false; 1000];
        for b in &blocks {
            assert!(b.len() <= 128);
            for &i in b {
                assert!(!seen[i as usize], "person {i} in two blocks");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // ceil(1000 / 128) = 8 blocks.
        assert_eq!(blocks.len(), 8);
    }

    #[test]
    fn blocks_are_sorted_along_dimension() {
        let persons = generate_persons(500, 10.0, 100, 6);
        for dim in Dimension::ALL {
            let blocks = blocks_along(&persons, dim, 64);
            let flat: Vec<u32> = blocks.iter().flatten().copied().collect();
            for w in flat.windows(2) {
                let ka = dim.key(&persons[w[0] as usize]);
                let kb = dim.key(&persons[w[1] as usize]);
                assert!(ka <= kb, "ordering violated along {dim:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_block_size_rejected() {
        let persons = generate_persons(10, 5.0, 10, 1);
        blocks_along(&persons, Dimension::Random, 1);
    }
}
