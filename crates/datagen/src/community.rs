//! Tunable-clustering-coefficient edge generation (the paper's extension).
//!
//! "We have implemented an edge generator which allows tuning the average
//! clustering coefficient of the resulting friendship graph. The method
//! relies on constructing a graph with a core-periphery community
//! structure." (Section 2.5.1)
//!
//! The construction: a sorted block is cut into *communities*. A community
//! wires its members with an internal density `p` chosen from the target
//! clustering coefficient (in a dense random subgraph the probability that
//! two of a vertex's neighbours are themselves connected is ≈ the internal
//! density, so `p ≈ target_cc`). Community *size* is derived from the
//! members' degree budgets — a member that needs `d` intra-community
//! friends under density `p` needs a community of roughly `d/p` members —
//! which preserves the degree distribution while hitting the density.
//! Within a community the first 50% of members form the *core* and are wired
//! at boosted density; the remainder form the *periphery* at reduced
//! density, giving the core–periphery shape the paper describes (and, as in
//! real social networks, a small diameter once consecutive communities are
//! bridged).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::person::{Dimension, Person};

/// Density boost for core–core pairs and damping for periphery pairs.
/// Chosen to keep the *average* internal density at `p` when the core is
/// half the community: 0.25·boost + 0.5·mixed + 0.25·damp = 1.
const CORE_BOOST: f64 = 1.5;
const MIXED_FACTOR: f64 = 1.0;
const PERIPHERY_DAMP: f64 = 0.5;

/// Generates one community-structured pass over a block.
///
/// Returns `(src, dst)` person-id pairs; duplicates across passes are
/// possible and removed by the flow's merge step.
pub fn community_pass(
    persons: &[Person],
    block: &[u32],
    dim: Dimension,
    target_cc: f64,
    rng: &mut SmallRng,
) -> Vec<(u64, u64)> {
    let p = target_cc.clamp(0.02, 0.95);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut prev_first: Option<u64> = None;
    while start < block.len() {
        // Community size from the degree budget of its would-be first
        // member: d_intra members wired at density p need ~d/p peers.
        let first = &persons[block[start] as usize];
        let d_intra = (first.target_degree as f64 * dim.degree_fraction()).max(1.0);
        let size = ((d_intra / p).ceil() as usize + 1).clamp(3, block.len() - start.min(block.len() - 1));
        let end = (start + size).min(block.len());
        let members = &block[start..end];
        wire_community(persons, members, p, &mut out, rng);
        // Bridge consecutive communities so they are "weakly connected to
        // each other" rather than disconnected cliques.
        let this_first = persons[members[0] as usize].id;
        if let Some(prev) = prev_first {
            if prev != this_first {
                out.push((prev, this_first));
            }
        }
        prev_first = Some(this_first);
        start = end;
    }
    out
}

/// Wires one community with core–periphery densities averaging `p`.
fn wire_community(
    persons: &[Person],
    members: &[u32],
    p: f64,
    out: &mut Vec<(u64, u64)>,
    rng: &mut SmallRng,
) {
    let s = members.len();
    if s < 2 {
        return;
    }
    let core = s.div_ceil(2);
    for i in 0..s {
        for j in (i + 1)..s {
            let factor = match (i < core, j < core) {
                (true, true) => CORE_BOOST,
                (false, false) => PERIPHERY_DAMP,
                _ => MIXED_FACTOR,
            };
            if rng.random::<f64>() < (p * factor).min(1.0) {
                let (a, b) = (persons[members[i] as usize].id, persons[members[j] as usize].id);
                out.push((a, b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::generate_persons;
    use graphalytics_core::graph::{GraphBuilder, GraphStats};
    use rand::SeedableRng;

    fn generate_and_measure(target_cc: f64, n: u64) -> GraphStats {
        let persons = generate_persons(n, 12.0, 60, 17);
        let block: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(23);
        let edges = community_pass(&persons, &block, Dimension::University, target_cc, &mut rng);
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(n);
        b.dedup_edges(true);
        for (s, d) in edges {
            if s != d {
                b.add_edge(s, d);
            }
        }
        GraphStats::compute(&b.build().unwrap().to_csr())
    }

    #[test]
    fn clustering_tracks_target() {
        let low = generate_and_measure(0.05, 800);
        let high = generate_and_measure(0.30, 800);
        assert!(
            high.avg_clustering_coefficient > low.avg_clustering_coefficient + 0.08,
            "low {:.3} vs high {:.3}",
            low.avg_clustering_coefficient,
            high.avg_clustering_coefficient
        );
        // Rough absolute agreement (single pass, isolated vertices drag the
        // mean down, so allow generous bounds).
        assert!(high.avg_clustering_coefficient > 0.15);
        assert!(low.avg_clustering_coefficient < 0.15);
    }

    #[test]
    fn communities_are_bridged() {
        let s = generate_and_measure(0.3, 500);
        // Bridging keeps the block from fragmenting into one component per
        // community: nearly everything is in one weak component.
        assert!(
            (s.components as f64) < 0.05 * 500.0,
            "too many components: {}",
            s.components
        );
    }

    #[test]
    fn higher_target_cc_means_denser_communities() {
        let persons = generate_persons(400, 10.0, 50, 3);
        let block: Vec<u32> = (0..400).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let sparse =
            community_pass(&persons, &block, Dimension::Interest, 0.05, &mut rng).len();
        let mut rng = SmallRng::seed_from_u64(1);
        let dense = community_pass(&persons, &block, Dimension::Interest, 0.4, &mut rng).len();
        // Density p rises but community size shrinks as 1/p, so the edge
        // count stays the same order of magnitude; both must be non-trivial.
        assert!(sparse > 100 && dense > 100);
    }
}
