//! Mini MapReduce cost model.
//!
//! Datagen runs on Hadoop; Section 4.8 evaluates it on DAS-4 (2010-era
//! nodes: 2× Intel Xeon E5620, 24 GiB RAM, spinning disks, 1 Gbit/s
//! Ethernet) with "one master, the rest workers, 6 reducers per worker".
//! We do not have a Hadoop cluster, so the *costs* of each generation step
//! are accounted on this model while the generation itself runs for real
//! (see `flow`). The model has exactly the terms the paper's analysis
//! relies on:
//!
//! * a fixed per-job spawn overhead ("the overhead incurred by Hadoop when
//!   spawning the jobs, which becomes more negligible the larger the scale
//!   factor is");
//! * scan (read/write) cost proportional to records moved, divided over the
//!   cluster's reducer slots;
//! * external-sort cost `n·log2(n)` per record sorted, divided over slots.

/// A simulated Hadoop cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HadoopCluster {
    /// Worker machines (the master is extra and not counted).
    pub workers: u32,
    /// Reducer slots per worker ("1 per core", 6 on DAS-4).
    pub reducers_per_worker: u32,
    /// Fixed overhead per MapReduce job, seconds.
    pub job_spawn_overhead_s: f64,
    /// Records scanned (read or written) per second per slot.
    pub scan_rate: f64,
    /// Sort throughput coefficient: seconds per (record · log2(records))
    /// per slot.
    pub sort_coeff: f64,
}

impl HadoopCluster {
    /// The DAS-4 configuration of Section 4.8. Rates are calibrated so that
    /// Datagen v0.2.6 generates a billion-edge graph (SF 1000) in ≈44
    /// minutes on 16 machines, as the paper reports.
    pub fn das4(workers: u32) -> Self {
        HadoopCluster {
            workers,
            reducers_per_worker: 6,
            job_spawn_overhead_s: 35.0,
            scan_rate: 12_000.0,
            sort_coeff: 1.0 / 0.2e6,
        }
    }

    /// A single local node (used when callers only want the graph).
    pub fn single_node() -> Self {
        HadoopCluster::das4(1)
    }

    /// Total reducer slots.
    pub fn slots(&self) -> u32 {
        self.workers * self.reducers_per_worker
    }

    /// Cost of one MapReduce job in simulated seconds.
    ///
    /// `records_in` are read, `records_sorted` go through the external
    /// sort, `records_out` are written. `parallel_share` scales the slots
    /// available to this job (the new flow runs its independent steps
    /// concurrently, so each gets a share of the cluster).
    pub fn job_seconds(
        &self,
        records_in: u64,
        records_sorted: u64,
        records_out: u64,
        parallel_share: f64,
    ) -> f64 {
        let slots = (self.slots() as f64 * parallel_share).max(1.0);
        let scan = (records_in + records_out) as f64 / (self.scan_rate * slots);
        let sort = if records_sorted > 1 {
            let n = records_sorted as f64;
            n * n.log2() * self.sort_coeff / slots
        } else {
            0.0
        };
        self.job_spawn_overhead_s + scan + sort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_workers_is_faster() {
        let small = HadoopCluster::das4(4);
        let big = HadoopCluster::das4(16);
        let (i, s, o) = (100_000_000, 100_000_000, 100_000_000);
        assert!(big.job_seconds(i, s, o, 1.0) < small.job_seconds(i, s, o, 1.0));
    }

    #[test]
    fn spawn_overhead_dominates_tiny_jobs() {
        let c = HadoopCluster::das4(16);
        let t = c.job_seconds(1000, 1000, 1000, 1.0);
        assert!((t - c.job_spawn_overhead_s).abs() < 1.0);
    }

    #[test]
    fn parallel_share_slows_a_single_job() {
        let c = HadoopCluster::das4(8);
        let full = c.job_seconds(10_000_000, 10_000_000, 10_000_000, 1.0);
        let third = c.job_seconds(10_000_000, 10_000_000, 10_000_000, 1.0 / 3.0);
        assert!(third > full);
    }

    #[test]
    fn slots_product() {
        assert_eq!(HadoopCluster::das4(16).slots(), 96);
        assert_eq!(HadoopCluster::single_node().slots(), 6);
    }
}
