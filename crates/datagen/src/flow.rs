//! Execution flows: Datagen v0.2.1 (old) vs v0.2.6 (new), Figure 3.
//!
//! Both flows run the same three edge-generation steps (one per correlation
//! dimension) and produce the *same* final graph. They differ in structure:
//!
//! * **old (v0.2.1)** — steps are *dependent*: step `i+1` reads everything
//!   produced so far (persons and all edges from steps `0..=i`), re-sorts
//!   it by its correlation dimension, and writes the grown dataset back.
//!   Step cost therefore grows with every step, and steps serialize.
//!   Duplicates never materialize because each step dedups incrementally.
//! * **new (v0.2.6)** — steps are *independent*: each sorts only the person
//!   table, writes its own edge file, and a final merge job removes
//!   duplicates. Steps can run concurrently on the cluster; per-step cost
//!   is constant.
//!
//! The real computation happens locally (and is timed); the cluster-level
//! cost of every job is simultaneously accounted on the
//! [`crate::hadoop::HadoopCluster`] model, which is what the
//! Section 4.8 experiment (Figure 10) reports.

use std::time::Instant;

use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Graph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::blocks::blocks_along;
use crate::community::community_pass;
use crate::degree::mean_degree;
use crate::edges::{edge_weight, window_pass};
use crate::hadoop::HadoopCluster;
use crate::person::{generate_persons, Dimension};
use crate::DatagenConfig;

/// Which execution flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// v0.2.1: dependent steps, cumulative sorting.
    Old,
    /// v0.2.6: independent steps + merge (this paper's optimization).
    New,
}

impl std::fmt::Display for FlowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowKind::Old => f.write_str("v0.2.1 (old)"),
            FlowKind::New => f.write_str("v0.2.6 (new)"),
        }
    }
}

/// Cost record for one MapReduce job of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCost {
    pub name: String,
    pub records_in: u64,
    pub records_sorted: u64,
    pub records_out: u64,
    /// Simulated cluster seconds for this job.
    pub sim_seconds: f64,
}

/// Full cost report of a generation run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub flow: FlowKind,
    pub steps: Vec<StepCost>,
    /// Simulated wall time on the cluster: sum of job times for the old
    /// flow (dependent steps); max of the concurrent steps plus the merge
    /// for the new flow.
    pub sim_seconds: f64,
    /// Real local execution time of the generation.
    pub wall_seconds: f64,
    pub edges_before_dedup: u64,
    pub edges_after_dedup: u64,
}

/// Analytic cluster-time prediction for a generation run that is too
/// large to execute (the Section 4.8 experiment reaches 10 billion
/// edges). Applies exactly the same per-job accounting as [`run`], with
/// the step record counts estimated from the degree fit: each of the
/// three steps produces about a third of the (pre-dedup) edge volume,
/// and deduplication removes ~10% (the overlap measured on executed
/// configurations).
pub fn analytic_sim_seconds(persons: u64, flow: FlowKind, cluster: &HadoopCluster) -> f64 {
    let final_edges = crate::degree::expected_edges(persons);
    let produced = final_edges / 0.9;
    let step_out = (produced / 3.0) as u64;
    let n = persons;
    match flow {
        FlowKind::Old => {
            let mut cumulative = 0u64;
            let mut total = 0.0;
            for _ in 0..3 {
                let records_in = n + cumulative;
                let sorted = records_in + step_out;
                cumulative = (cumulative + step_out).min(final_edges as u64);
                let out = n + cumulative;
                total += cluster.job_seconds(records_in, sorted, out, 1.0);
            }
            total
        }
        FlowKind::New => {
            let share = 1.0 / 3.0;
            let step = cluster.job_seconds(n, n, step_out, share);
            // The steps emit sorted runs; deduplicating k sorted files is
            // a linear merge, not an n·log n sort.
            let merge = cluster.job_seconds(produced as u64, 0, final_edges as u64, 1.0);
            step + merge
        }
    }
}

/// Runs generation under `cfg` and accounts costs on `cluster`.
pub fn run(cfg: DatagenConfig, cluster: &HadoopCluster) -> (Graph, FlowReport) {
    run_with(cfg, cluster, &WorkerPool::inline())
}

/// Runs generation under `cfg`, finalizing the edge list (the
/// sort-dominated materialization step) on `pool`. The per-block RNG
/// streams are keyed by `(seed, step, block)` — never by the pool — so
/// the output graph is identical to [`run`] for every pool width.
pub fn run_with(
    cfg: DatagenConfig,
    cluster: &HadoopCluster,
    pool: &WorkerPool,
) -> (Graph, FlowReport) {
    let start = Instant::now();
    let n = cfg.persons;
    let persons = generate_persons(n, mean_degree(n), cfg.max_degree, cfg.seed);

    // Produce the three steps' edge lists. Identical for both flows: the
    // RNG stream is keyed by (seed, step, block), never by flow.
    let mut step_edges: Vec<Vec<(u64, u64)>> = Vec::with_capacity(3);
    for (si, dim) in Dimension::ALL.iter().enumerate() {
        let blocks = blocks_along(&persons, *dim, cfg.block_size);
        let mut edges = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let mut rng =
                SmallRng::seed_from_u64(cfg.seed ^ ((si as u64 + 1) << 32) ^ (bi as u64));
            let mut pass = match (cfg.target_cc, dim) {
                (Some(cc), Dimension::University | Dimension::Interest) => {
                    community_pass(&persons, block, *dim, cc, &mut rng)
                }
                _ => window_pass(&persons, block, *dim, &mut rng),
            };
            edges.append(&mut pass);
        }
        // Canonicalize orientation once, so dedup is a plain sort-dedup.
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        step_edges.push(edges);
    }
    let produced: u64 = step_edges.iter().map(|s| s.len() as u64).sum();

    // Execute the flow's sorting/merging structure for real, while
    // accounting each job on the cluster model.
    let mut steps = Vec::new();
    let mut sim_seconds;
    let final_edges: Vec<(u64, u64)>;
    match cfg.flow {
        FlowKind::Old => {
            let mut cumulative: Vec<(u64, u64)> = Vec::new();
            sim_seconds = 0.0;
            for (si, edges) in step_edges.into_iter().enumerate() {
                let in_records = n + cumulative.len() as u64;
                let produced_here = edges.len() as u64;
                // The old flow re-sorts everything it read plus what it
                // produced — this is the growing cost the paper's Figure 3
                // illustrates with step lengths.
                cumulative.extend(edges);
                cumulative.sort_unstable();
                cumulative.dedup();
                let sorted = in_records + produced_here;
                let out = n + cumulative.len() as u64;
                let sim = cluster.job_seconds(in_records, sorted, out, 1.0);
                sim_seconds += sim;
                steps.push(StepCost {
                    name: format!("step{si}"),
                    records_in: in_records,
                    records_sorted: sorted,
                    records_out: out,
                    sim_seconds: sim,
                });
            }
            final_edges = cumulative;
        }
        FlowKind::New => {
            // Independent steps: each sorts only the person table and
            // writes its own file; they share the cluster concurrently.
            let share = 1.0 / step_edges.len() as f64;
            let mut slowest: f64 = 0.0;
            for (si, edges) in step_edges.iter().enumerate() {
                let sim = cluster.job_seconds(n, n, edges.len() as u64, share);
                slowest = slowest.max(sim);
                steps.push(StepCost {
                    name: format!("step{si}"),
                    records_in: n,
                    records_sorted: n,
                    records_out: edges.len() as u64,
                    sim_seconds: sim,
                });
            }
            // Merge: read all edge files, sort, dedup, write.
            let mut merged: Vec<(u64, u64)> = step_edges.into_iter().flatten().collect();
            merged.sort_unstable();
            merged.dedup();
            // Linear merge of pre-sorted step outputs (no sort phase).
            let merge_sim = cluster.job_seconds(produced, 0, merged.len() as u64, 1.0);
            steps.push(StepCost {
                name: "merge".into(),
                records_in: produced,
                records_sorted: produced,
                records_out: merged.len() as u64,
                sim_seconds: merge_sim,
            });
            sim_seconds = slowest + merge_sim;
            final_edges = merged;
        }
    }

    // Materialize the graph.
    let mut b = GraphBuilder::new(false);
    b.set_weighted(cfg.weighted);
    b.reserve(n as usize, final_edges.len());
    b.add_vertex_range(n);
    for (s, d) in &final_edges {
        if s == d {
            continue;
        }
        let w = if cfg.weighted { edge_weight(*s, *d) } else { 1.0 };
        b.add_weighted_edge(*s, *d, w);
    }
    b.dedup_edges(true);
    let graph = b.build_with(pool).expect("datagen output satisfies the data model");

    let report = FlowReport {
        flow: cfg.flow,
        steps,
        sim_seconds,
        wall_seconds: start.elapsed().as_secs_f64(),
        edges_before_dedup: produced,
        edges_after_dedup: final_edges.len() as u64,
    };
    (graph, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(flow: FlowKind) -> DatagenConfig {
        DatagenConfig::with_persons(800).with_flow(flow)
    }

    #[test]
    fn old_flow_costs_grow_per_step() {
        let cluster = HadoopCluster::das4(4);
        let (_, report) = run(cfg(FlowKind::Old), &cluster);
        assert_eq!(report.steps.len(), 3);
        assert!(report.steps[1].records_in > report.steps[0].records_in);
        assert!(report.steps[2].records_in > report.steps[1].records_in);
    }

    #[test]
    fn new_flow_steps_are_constant_cost() {
        let cluster = HadoopCluster::das4(4);
        let (_, report) = run(cfg(FlowKind::New), &cluster);
        assert_eq!(report.steps.len(), 4); // 3 steps + merge
        assert_eq!(report.steps[0].records_in, 800);
        assert_eq!(report.steps[1].records_in, 800);
        assert_eq!(report.steps[2].records_in, 800);
        assert_eq!(report.steps[3].name, "merge");
    }

    #[test]
    fn new_flow_simulated_faster_at_scale() {
        // At a scale where edges dominate persons, the independent flow
        // must beat the cumulative-sort flow — the Section 4.8 result.
        let cluster = HadoopCluster::das4(16);
        let config = DatagenConfig::with_persons(5_000);
        let (_, old) = run(config.with_flow(FlowKind::Old), &cluster);
        let (_, new) = run(config.with_flow(FlowKind::New), &cluster);
        assert!(
            new.sim_seconds < old.sim_seconds,
            "new {:.1}s should beat old {:.1}s",
            new.sim_seconds,
            old.sim_seconds
        );
    }

    #[test]
    fn dedup_monotonicity() {
        let cluster = HadoopCluster::single_node();
        let (g, report) = run(cfg(FlowKind::New), &cluster);
        assert!(report.edges_after_dedup <= report.edges_before_dedup);
        assert_eq!(g.edge_count() as u64, report.edges_after_dedup);
        assert!(report.wall_seconds > 0.0);
    }
}
