//! Person generation with correlated attributes.
//!
//! SNB Datagen's defining property is *correlation*: a person's university,
//! interests and activity level are drawn from skewed distributions, and
//! friendship probability depends on attribute similarity. We reproduce the
//! attribute machinery with three correlation dimensions:
//!
//! * `university` — where the person studied (Zipf-distributed);
//! * `interest`   — main interest/hobby (Zipf-distributed);
//! * `random`     — a uniform shuffle key, providing the uncorrelated
//!   residual dimension exactly like Datagen's third pass.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One synthetic person.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Person {
    /// Vertex id in the output graph (`0..persons`).
    pub id: u64,
    /// University attribute (small Zipf-skewed domain).
    pub university: u16,
    /// Interest attribute (larger Zipf-skewed domain).
    pub interest: u16,
    /// Uniform key for the uncorrelated dimension.
    pub random_key: u64,
    /// Target friendship degree (from the Facebook fit, capped).
    pub target_degree: u32,
}

/// A correlation dimension along which persons are sorted before windowed
/// edge generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    University,
    Interest,
    Random,
}

impl Dimension {
    /// The three SNB-style passes in order.
    pub const ALL: [Dimension; 3] = [Dimension::University, Dimension::Interest, Dimension::Random];

    /// Sort key of `p` along this dimension. The secondary id component
    /// makes sorting deterministic.
    pub fn key(self, p: &Person) -> (u64, u64) {
        match self {
            Dimension::University => (p.university as u64, p.id),
            Dimension::Interest => (p.interest as u64, p.id),
            Dimension::Random => (p.random_key, p.id),
        }
    }

    /// Fraction of each person's degree budget spent in this pass.
    /// SNB attributes roughly 45% / 45% / 10% to the two correlated passes
    /// and the random pass.
    pub fn degree_fraction(self) -> f64 {
        match self {
            Dimension::University => 0.45,
            Dimension::Interest => 0.45,
            Dimension::Random => 0.10,
        }
    }
}

/// Draws a Zipf-like value in `0..domain` (rank-1 most likely).
fn zipf(rng: &mut SmallRng, domain: u16, exponent: f64) -> u16 {
    // Inverse-CDF sampling on a truncated zeta distribution would need a
    // normalization table; for generator purposes the standard rejection
    // trick over ranks is enough and allocation-free.
    loop {
        let u: f64 = rng.random();
        let rank = ((domain as f64).powf(1.0 - exponent) * u + (1.0 - u)).powf(1.0 / (1.0 - exponent));
        if rank >= 1.0 && rank <= domain as f64 {
            return (rank as u16).saturating_sub(1);
        }
    }
}

/// Generates `n` persons deterministically from `seed`.
///
/// `mean_degree` is the Facebook-fit mean for this network size; individual
/// target degrees follow a discretized exponential around it (bounded by
/// `max_degree`), matching the bounded-skew shape of social friend counts.
pub fn generate_persons(n: u64, mean_degree: f64, max_degree: u32, seed: u64) -> Vec<Person> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let universities = ((n as f64).sqrt() as u16).clamp(8, 2000);
    let interests = ((n as f64).sqrt() as u16 * 2).clamp(16, 8000);
    let mut persons = Vec::with_capacity(n as usize);
    for id in 0..n {
        let u: f64 = rng.random::<f64>().max(1e-12);
        // Exponential with mean `mean_degree`, shifted to at least 1.
        let degree = (-u.ln() * mean_degree).round().clamp(1.0, max_degree as f64) as u32;
        persons.push(Person {
            id,
            university: zipf(&mut rng, universities, 1.5),
            interest: zipf(&mut rng, interests, 1.4),
            random_key: rng.random(),
            target_degree: degree,
        });
    }
    persons
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate_persons(100, 10.0, 50, 7);
        let b = generate_persons(100, 10.0, 50, 7);
        assert_eq!(a, b);
        let c = generate_persons(100, 10.0, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn degrees_bounded_and_positive() {
        let persons = generate_persons(2000, 20.0, 100, 3);
        for p in &persons {
            assert!(p.target_degree >= 1 && p.target_degree <= 100);
        }
        let mean: f64 =
            persons.iter().map(|p| p.target_degree as f64).sum::<f64>() / persons.len() as f64;
        assert!((10.0..=30.0).contains(&mean), "mean degree {mean} off target");
    }

    #[test]
    fn attributes_are_skewed() {
        let persons = generate_persons(5000, 10.0, 100, 11);
        let top_university =
            persons.iter().filter(|p| p.university == 0).count() as f64 / persons.len() as f64;
        let uniform_share = 1.0 / ((5000f64).sqrt().clamp(8.0, 2000.0));
        assert!(
            top_university > 2.0 * uniform_share,
            "rank-1 university share {top_university} not skewed"
        );
    }

    #[test]
    fn dimension_keys_sort_deterministically() {
        let persons = generate_persons(50, 5.0, 20, 1);
        for dim in Dimension::ALL {
            let mut sorted = persons.clone();
            sorted.sort_by_key(|p| dim.key(p));
            let mut again = persons.clone();
            again.sort_by_key(|p| dim.key(p));
            assert_eq!(sorted, again);
        }
    }

    #[test]
    fn degree_fractions_sum_to_one() {
        let total: f64 = Dimension::ALL.iter().map(|d| d.degree_fraction()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
