//! The Facebook degree fit used by SNB Datagen.
//!
//! Datagen targets a "Facebook-like friendship distribution" (Section 2.5.1).
//! The SNB paper models the mean friend count of a network with `n` members
//! as
//!
//! ```text
//! mean_degree(n) = n ^ (0.512 - 0.028 · log10(n))
//! ```
//!
//! which reproduces Facebook's measured growth of mean degree with network
//! size. Since each friendship contributes degree to two persons, a network
//! of `n` persons has about `n · mean_degree(n) / 2` edges; the inverse,
//! [`persons_for_edges`], is what scale factors ("millions of edges") are
//! resolved through.

/// Mean friendship degree for a network of `n` persons (Facebook fit).
pub fn mean_degree(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    nf.powf(0.512 - 0.028 * nf.log10())
}

/// Expected number of friendship edges for `n` persons.
pub fn expected_edges(n: u64) -> f64 {
    n as f64 * mean_degree(n) / 2.0
}

/// Smallest person count whose expected edge count reaches `edges`
/// (binary search over the monotone region of the fit).
pub fn persons_for_edges(edges: u64) -> u64 {
    let (mut lo, mut hi) = (2u64, 1u64 << 40);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_edges(mid) < edges as f64 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_matches_paper_dataset_sizes() {
        // Table 4: datagen-100 has 1.67M persons and 102M edges, i.e. mean
        // degree ≈ 122. The fit should land within ~15%.
        let d = mean_degree(1_670_000);
        assert!((100.0..=145.0).contains(&d), "mean degree {d}");
        let e = expected_edges(1_670_000) / 1.0e6;
        assert!((85.0..=120.0).contains(&e), "expected {e}M edges");
    }

    #[test]
    fn inverse_is_consistent() {
        for &edges in &[10_000u64, 1_000_000, 100_000_000] {
            let n = persons_for_edges(edges);
            let got = expected_edges(n);
            assert!(got >= edges as f64, "n={n} gives {got} < {edges}");
            let below = expected_edges(n - 1);
            assert!(below < edges as f64 * 1.001);
        }
    }

    #[test]
    fn mean_degree_grows_with_n() {
        assert!(mean_degree(10_000) > mean_degree(1_000));
        assert!(mean_degree(1_000_000) > mean_degree(10_000));
        assert_eq!(mean_degree(1), 0.0);
    }
}
