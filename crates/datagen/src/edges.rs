//! Windowed correlated edge generation (the classic Datagen pass).
//!
//! Within a block (already sorted along a correlation dimension),
//! person `i` connects to persons at nearby ranks with geometrically
//! decaying probability — "consecutive persons in a block must have a larger
//! probability to connect" (Section 2.5.1). Each pass consumes a fraction of
//! every person's degree budget (see [`Dimension::degree_fraction`]).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::person::{Dimension, Person};

/// Geometric decay parameter: probability of picking rank distance `d`
/// is proportional to `GEOMETRIC_Q^(d-1)`.
pub const GEOMETRIC_Q: f64 = 0.85;

/// Generates one pass of windowed edges for a single block.
///
/// `block` holds person indices in sorted order. Returns `(src, dst)` person
/// *id* pairs (unordered semantics; duplicates possible across passes —
/// deduplication is the flow's job, which is exactly the paper's Figure 3
/// story).
pub fn window_pass(
    persons: &[Person],
    block: &[u32],
    dim: Dimension,
    rng: &mut SmallRng,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let len = block.len();
    for (rank, &pi) in block.iter().enumerate() {
        let p = &persons[pi as usize];
        // Budget for this pass; each edge serves two endpoints, so halve.
        let budget =
            ((p.target_degree as f64 * dim.degree_fraction()) / 2.0).round().max(1.0) as u32;
        for _ in 0..budget {
            let offset = sample_geometric(rng);
            let j = rank + offset as usize;
            if j >= len {
                continue;
            }
            let q = &persons[block[j] as usize];
            if p.id != q.id {
                out.push((p.id, q.id));
            }
        }
    }
    out
}

/// Samples a rank distance ≥ 1 with geometric decay.
fn sample_geometric(rng: &mut SmallRng) -> u32 {
    let u: f64 = rng.random::<f64>().max(1e-15);
    let d = 1.0 + u.ln() / GEOMETRIC_Q.ln();
    d.min(1_000.0) as u32 + 1
}

/// Deterministic edge weight derived from the endpoint pair, so both flows
/// and all passes assign identical weights to identical edges.
pub fn edge_weight(a: u64, b: u64) -> f64 {
    let (lo, hi) = (a.min(b), a.max(b));
    let mut h = lo.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hi.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 31;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::generate_persons;
    use rand::SeedableRng;

    #[test]
    fn pass_respects_block_membership() {
        let persons = generate_persons(200, 8.0, 40, 2);
        let block: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = window_pass(&persons, &block, Dimension::University, &mut rng);
        assert!(!edges.is_empty());
        for &(a, b) in &edges {
            assert!(a < 100 && b < 100, "edge ({a},{b}) leaves the block");
            assert_ne!(a, b);
        }
    }

    #[test]
    fn nearby_ranks_preferred() {
        let persons = generate_persons(1000, 20.0, 60, 3);
        let block: Vec<u32> = (0..1000).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let edges = window_pass(&persons, &block, Dimension::Random, &mut rng);
        let near = edges.iter().filter(|&&(a, b)| a.abs_diff(b) <= 5).count();
        let far = edges.iter().filter(|&&(a, b)| a.abs_diff(b) > 50).count();
        assert!(near > far * 2, "near {near} vs far {far}: locality lost");
    }

    #[test]
    fn weight_is_symmetric_and_unit_interval() {
        for (a, b) in [(1u64, 2u64), (100, 3), (42, 42_000)] {
            let w = edge_weight(a, b);
            assert_eq!(w, edge_weight(b, a));
            assert!((0.0..1.0).contains(&w));
        }
        assert_ne!(edge_weight(1, 2), edge_weight(1, 3));
    }

    #[test]
    fn geometric_sampler_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let d = sample_geometric(&mut rng);
            assert!(d >= 1);
        }
    }
}
