//! # graphalytics-datagen
//!
//! A from-scratch reproduction of the LDBC Social Network Benchmark data
//! generator (*Datagen*) as used and extended by the Graphalytics paper
//! (Section 2.5.1):
//!
//! * **correlated person generation** — persons carry attributes
//!   (university, interest) drawn from skewed distributions; persons with
//!   similar attributes are more likely to become friends ([`person`]);
//! * **Facebook-like degree distribution** — mean degree grows with network
//!   size following the Facebook fit used by SNB ([`degree`]);
//! * **block-based correlated edge generation** — persons are sorted along a
//!   correlation dimension and partitioned into blocks; friendship
//!   probability decays with rank distance inside a block ([`blocks`],
//!   [`edges`]);
//! * **tunable clustering coefficient** — the paper's novel contribution: an
//!   edge generator that builds core–periphery communities sized so the
//!   resulting graph matches a target average clustering coefficient
//!   ([`community`], Figure 2);
//! * **old vs. new execution flow** — v0.2.1's dependent, cumulative-sort
//!   step chain versus v0.2.6's independent steps + merge (Figure 3),
//!   executed for real and accounted on a mini-MapReduce cost model
//!   ([`flow`], [`hadoop`]) to reproduce the Section 4.8 evaluation
//!   (Figure 10).
//!
//! ```
//! use graphalytics_datagen::DatagenConfig;
//! let g = DatagenConfig::with_persons(500).generate();
//! assert!(!g.is_directed());
//! assert!(g.edge_count() > 0);
//! ```

pub mod blocks;
pub mod community;
pub mod degree;
pub mod edges;
pub mod flow;
pub mod hadoop;
pub mod person;

pub use flow::{FlowKind, FlowReport, StepCost};
pub use hadoop::HadoopCluster;
pub use person::Person;

use graphalytics_core::Graph;

/// Datagen configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatagenConfig {
    /// Number of persons (vertices) to generate.
    pub persons: u64,
    /// Target average clustering coefficient; `None` uses the classic
    /// window-based generator (natural clustering ≈ 0.1).
    pub target_cc: Option<f64>,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
    /// Maximum degree cap (Facebook caps at 5000; SNB uses 1000).
    pub max_degree: u32,
    /// Block size for the correlated edge-generation passes.
    pub block_size: u32,
    /// Execution flow to use (results are identical; costs differ).
    pub flow: FlowKind,
    /// Attach deterministic `[0,1)` edge weights (Graphalytics' Datagen
    /// datasets are weighted so SSSP can run on them).
    pub weighted: bool,
}

impl DatagenConfig {
    /// Configuration for an explicit person count.
    pub fn with_persons(persons: u64) -> Self {
        DatagenConfig {
            persons,
            target_cc: None,
            seed: 0xDA7A_6E4E,
            max_degree: 1000,
            block_size: 512,
            flow: FlowKind::New,
            weighted: true,
        }
    }

    /// Configuration for an SNB-style *scale factor*: "scale factors reflect
    /// the approximate number of generated edges in millions" (Section 4.8).
    /// The person count is solved from the Facebook degree fit.
    pub fn with_scale_factor(sf: f64) -> Self {
        let edges = (sf * 1.0e6).max(1.0) as u64;
        Self::with_persons(degree::persons_for_edges(edges))
    }

    /// Builder-style target clustering coefficient.
    pub fn with_target_cc(mut self, cc: f64) -> Self {
        assert!((0.0..=1.0).contains(&cc), "clustering coefficient must be in [0,1]");
        self.target_cc = Some(cc);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style flow selection.
    pub fn with_flow(mut self, flow: FlowKind) -> Self {
        self.flow = flow;
        self
    }

    /// Generates the person–person friendship graph.
    pub fn generate(self) -> Graph {
        self.generate_with_report(&HadoopCluster::single_node()).0
    }

    /// Generates the graph, finalizing the edge list on `pool` (see
    /// [`flow::run_with`]); output is identical to
    /// [`DatagenConfig::generate`] for every pool width.
    pub fn generate_with(self, pool: &graphalytics_core::pool::WorkerPool) -> Graph {
        flow::run_with(self, &HadoopCluster::single_node(), pool).0
    }

    /// Generates the graph and reports per-step costs on the given
    /// (simulated) Hadoop cluster — the entry point of the Section 4.8
    /// data-generation self-test.
    pub fn generate_with_report(self, cluster: &HadoopCluster) -> (Graph, FlowReport) {
        flow::run(self, cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let g = DatagenConfig::with_persons(400).generate();
        g.validate().unwrap();
        assert_eq!(g.vertex_count(), 400);
        assert!(g.is_weighted());
    }

    #[test]
    fn deterministic_across_flows() {
        // Figure 3's key property: the new flow merges duplicate edges so
        // both flows produce the same final graph.
        let old = DatagenConfig::with_persons(300).with_flow(FlowKind::Old).generate();
        let new = DatagenConfig::with_persons(300).with_flow(FlowKind::New).generate();
        assert_eq!(old.vertices(), new.vertices());
        let pairs = |g: &Graph| g.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>();
        assert_eq!(pairs(&old), pairs(&new));
    }

    #[test]
    fn pool_generation_is_bit_identical_to_sequential() {
        let sequential = DatagenConfig::with_persons(300).generate();
        let pool = graphalytics_core::pool::WorkerPool::new(4);
        let pooled = DatagenConfig::with_persons(300).generate_with(&pool);
        assert_eq!(sequential.vertices(), pooled.vertices());
        assert_eq!(sequential.edges(), pooled.edges());
    }

    #[test]
    fn seed_changes_output() {
        let a = DatagenConfig::with_persons(200).with_seed(1).generate();
        let b = DatagenConfig::with_persons(200).with_seed(2).generate();
        assert_ne!(
            a.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            b.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scale_factor_hits_edge_target_roughly() {
        let cfg = DatagenConfig::with_scale_factor(0.01); // ~10k edges
        let g = cfg.generate();
        let e = g.edge_count() as f64;
        assert!(e > 2_000.0 && e < 50_000.0, "got {e} edges");
    }

    #[test]
    fn target_cc_is_monotone() {
        let measure = |cc: f64| {
            let g = DatagenConfig::with_persons(600).with_target_cc(cc).generate();
            let stats = graphalytics_core::graph::GraphStats::compute(&g.to_csr());
            stats.avg_clustering_coefficient
        };
        let low = measure(0.05);
        let high = measure(0.3);
        assert!(
            high > low + 0.05,
            "cc targets must be distinguishable: low {low:.3}, high {high:.3}"
        );
    }
}
