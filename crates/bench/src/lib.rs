//! # graphalytics-bench
//!
//! Reproduction targets for every table and figure in the paper's
//! evaluation, plus Criterion micro-benchmarks.
//!
//! One binary per artifact (run with `cargo run --release -p
//! graphalytics-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `repro_table1`  | Table 1 — algorithm-class surveys + 2-stage selection |
//! | `repro_table2`  | Tables 2–4 — scale classes and the dataset registry |
//! | `repro_fig2`    | Figure 2 — Datagen clustering-coefficient tuning (runs real generation + Louvain) |
//! | `repro_fig4`    | Figure 4 — dataset variety, T_proc |
//! | `repro_fig5`    | Figure 5 — EPS / EVPS |
//! | `repro_fig6`    | Figure 6 — algorithm variety |
//! | `repro_fig7`    | Figure 7 — vertical scalability |
//! | `repro_fig8`    | Figure 8 — strong horizontal scalability |
//! | `repro_fig9`    | Figure 9 — weak horizontal scalability |
//! | `repro_fig10`   | Figure 10 — Datagen flows and cluster scaling |
//! | `repro_table8`  | Table 8 — makespan vs T_proc breakdown |
//! | `repro_table9`  | Table 9 — vertical speedups |
//! | `repro_table10` | Table 10 — stress-test failure points |
//! | `repro_table11` | Table 11 — variability (mean, CV) |
//! | `repro_all`     | everything above, in order |
//!
//! Two trajectory tools ride along: `repro_bench` measures this
//! repository's own hot paths (upload-phase EPS and per-run EVPS per
//! engine, CSR build throughput, runtime-backend baselines) into
//! `BENCH_pr<N>.json`, and `bench_compare` diffs two such artifacts,
//! failing on >30% EVPS regressions over shared metrics (the CI gate).
//!
//! Criterion benches (`cargo bench -p graphalytics-bench`) cover the real
//! execution paths: reference kernels, all six engines, both generators
//! and the partitioners.

use graphalytics_harness::experiments::ExperimentSuite;

/// The suite used by all reproduction binaries: deterministic noise on
/// (variability needs it; other figures tolerate the ±CV jitter exactly
/// like the paper's measurements do).
pub fn suite() -> ExperimentSuite {
    ExperimentSuite::new()
}

/// Noise-free suite for speedup tables (pure model output).
pub fn quiet_suite() -> ExperimentSuite {
    ExperimentSuite::without_noise()
}

/// Prints a standard header for a reproduction binary.
pub fn banner(what: &str, source: &str) {
    println!("================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {source}");
    println!("Mode: analytic (published dataset sizes, simulated DAS-5)");
    println!("================================================================\n");
}
