//! `repro_bench` — the perf-trajectory emitter.
//!
//! Measures the hot paths this repository's refactors target and writes
//! `BENCH_pr10.json`:
//!
//! * **upload** — CSR build throughput (edges/s), sequential baseline vs
//!   the pool build at widths 1/2/4/8, plus parallel edge-file parsing;
//! * **runtime** — one superstep-heavy engine kernel (Pregel PageRank)
//!   on the *spawning* backend (the pre-refactor per-superstep thread
//!   spawn) vs the persistent pool, same width, same output;
//! * **engines** — the platform lifecycle, phase by phase: per-engine
//!   *upload-phase* EPS (edges/s of `Platform::upload`, reported
//!   separately per the paper's load-vs-process split) and per-algorithm
//!   *per-run* EVPS ((|V|+|E|)/s of `Platform::run` alone, upload
//!   excluded) for all six engines on the shared pool, plus 1/2/4/8
//!   width scaling for representative kernels;
//! * **sharded** — the sharded execution path: per-run EVPS and
//!   inter-shard message volume at shards = 1/2/4 for the engines with
//!   a sharded run path (pregel, pushpull), same output at every count;
//! * **monitor_overhead** — the Granula-monitor gate: the same sharded
//!   kernels with per-superstep tracing off vs on. Outputs must be
//!   bit-identical and the EVPS cost of tracing must stay under 3%
//!   (both asserted);
//! * **fault_plane_overhead** — the fault-plane gate, same shape: the
//!   same kernels with the fault/cancellation scope absent vs installed
//!   with an empty script and an unfired token. Outputs bit-identical,
//!   armed-but-idle checkpoint cost under 3% EVPS (both asserted);
//! * **traversal** — the parallel traversal kernels: BFS and SSSP EVPS
//!   at pool widths 1/2/4/8 on a larger instance (outputs asserted
//!   identical across widths, width 4 ≥ width 1 asserted in full mode),
//!   delta-stepping edge work + one-time `TraversalPrep` split cost vs
//!   the label-correcting baseline, and the bit-packed frontier's
//!   resident footprint vs the old `Vec<bool>` layout;
//! * **mutation** — the streaming-mutation trade: batch apply
//!   throughput, then incremental recompute (delta-log apply + cached
//!   WCC labels / PageRank warm start) vs the full pipeline a
//!   non-incremental engine needs (materialize the merged CSR, upload,
//!   run cold) at mutation rates 1% / 5% / 20% of the base edge
//!   count, plus the cost of an explicit delta-log compaction. WCC is
//!   asserted bit-identical and PageRank within validator epsilon of
//!   the cold run at every rate; in full mode incremental must win at
//!   rates ≤ 5% (the 20% column documents the crossover).
//!
//! ```text
//! cargo run --release -p graphalytics-bench --bin repro_bench
//! cargo run --release -p graphalytics-bench --bin repro_bench -- --smoke
//! ```
//!
//! `--smoke` shrinks every instance and writes to
//! `target/BENCH_smoke.json` (the CI bench-smoke job); `--out <path>`
//! overrides the output path. `bench_compare` diffs two artifacts and
//! gates CI on EVPS regressions.

use std::sync::Arc;
use std::time::Instant;

use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Algorithm, Csr};
use graphalytics_engines::{all_platforms, platform_by_name, Platform, RunContext, ShardPlan};
use graphalytics_granula::json::Json;
use graphalytics_graph500::Graph500Config;

/// Median wall seconds over `reps` runs of `f` (one warm-up first).
fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Minimum wall seconds over `reps` runs of `f` (two warm-ups first).
/// The engine kernels complete in microseconds at bench scale, where
/// scheduler and container interference only ever *add* time — the
/// minimum is the stable signal, so the cross-PR EVPS gate compares
/// best-of-N rather than noisy medians.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    f();
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn num(x: f64) -> Json {
    // Round to keep the committed artifact stable-looking and diffable.
    Json::Num((x * 1e6).round() / 1e6)
}

struct Config {
    build_scale: u32,
    kernel_scale: u32,
    runtime_scale: u32,
    traversal_scale: u32,
    mutation_scale: u32,
    pagerank_iterations: u32,
    reps: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        build_scale: 14,
        kernel_scale: 11,
        runtime_scale: 10,
        traversal_scale: 15,
        mutation_scale: 13,
        pagerank_iterations: 50,
        reps: 5,
        out: "BENCH_pr10.json".to_string(),
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.build_scale = 10;
                cfg.kernel_scale = 8;
                cfg.runtime_scale = 8;
                // Stays above DELTA_MIN_ARCS so the smoke run still
                // exercises the delta-stepping section.
                cfg.traversal_scale = 14;
                cfg.mutation_scale = 10;
                cfg.pagerank_iterations = 10;
                cfg.reps = 2;
                cfg.out = "target/BENCH_smoke.json".to_string();
                cfg.smoke = true;
            }
            "--out" => cfg.out = args.next().expect("--out takes a path"),
            other => {
                eprintln!("unknown argument {other}; supported: --smoke, --out <path>");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// CSR-build throughput: sequential baseline and pool widths 1/2/4/8.
fn bench_upload(cfg: &Config) -> Json {
    let graph = Graph500Config::new(cfg.build_scale).with_seed(7).with_weights(true).generate();
    let edges = graph.edge_count() as f64;
    let seq_secs = median_secs(cfg.reps, || {
        std::hint::black_box(graph.try_to_csr().unwrap());
    });
    let mut widths = Vec::new();
    for threads in [1u32, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        let secs = median_secs(cfg.reps, || {
            std::hint::black_box(graph.to_csr_with(&pool).unwrap());
        });
        widths.push(Json::obj(vec![
            ("threads", Json::Num(threads as f64)),
            ("secs", num(secs)),
            ("build_eps", num(edges / secs)),
        ]));
    }

    // Parallel edge-file parsing, the other half of the upload path.
    let dir = std::env::temp_dir().join(format!("galy-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (vp, ep) = (dir.join("g.v"), dir.join("g.e"));
    graphalytics_core::graph::write_vertex_file(&graph, &vp).unwrap();
    graphalytics_core::graph::write_edge_file(&graph, &ep).unwrap();
    let parse_seq = median_secs(cfg.reps, || {
        std::hint::black_box(
            graphalytics_core::graph::read_graph(&vp, &ep, graph.is_directed(), true).unwrap(),
        );
    });
    let pool = WorkerPool::new(4);
    let parse_pool = median_secs(cfg.reps, || {
        std::hint::black_box(
            graphalytics_core::graph::read_graph_with(&vp, &ep, graph.is_directed(), true, &pool)
                .unwrap(),
        );
    });
    std::fs::remove_dir_all(&dir).ok();

    Json::obj(vec![
        ("generator", Json::str(format!("graph500-{}", cfg.build_scale))),
        ("vertices", Json::Num(graph.vertex_count() as f64)),
        ("edges", Json::Num(graph.edge_count() as f64)),
        (
            "csr_build",
            Json::obj(vec![
                ("sequential_secs", num(seq_secs)),
                ("sequential_eps", num(edges / seq_secs)),
                ("pool", Json::Arr(widths)),
            ]),
        ),
        (
            "edge_file_parse",
            Json::obj(vec![
                ("sequential_secs", num(parse_seq)),
                ("pool4_secs", num(parse_pool)),
            ]),
        ),
    ])
}

/// One upload → run execution on `pool`, for benchmarking call sites.
/// Tracing is off: the gated trajectory metrics time the bare kernels
/// (directly comparable with pre-monitor artifacts), while the
/// `monitor_overhead` section prices tracing separately and explicitly.
fn run_on(
    platform: &dyn Platform,
    loaded: &dyn graphalytics_engines::LoadedGraph,
    algorithm: Algorithm,
    params: &AlgorithmParams,
    pool: &WorkerPool,
) -> graphalytics_engines::Execution {
    let mut ctx = RunContext::new(pool);
    ctx.set_tracing(false);
    platform.run(loaded, algorithm, params, &mut ctx).unwrap()
}

/// The PR 3 headline, preserved for trajectory comparisons: the same
/// kernel on the pre-refactor spawn-per-superstep backend vs the
/// persistent pool. Upload happens once per backend outside the timed
/// body (the lifecycle split).
fn bench_runtime_baseline(cfg: &Config) -> Json {
    let graph =
        Graph500Config::new(cfg.runtime_scale).with_seed(3).with_weights(true).generate();
    let csr = Arc::new(graph.try_to_csr().unwrap());
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: cfg.pagerank_iterations,
        damping_factor: 0.85,
        cdlp_iterations: 10,
    };
    let engine = platform_by_name("pregel").unwrap();
    let width = 4u32;

    let spawning = WorkerPool::spawning(width);
    let persistent = WorkerPool::new(width);
    let loaded_spawning = engine.upload(csr.clone(), &spawning).unwrap();
    let loaded_persistent = engine.upload(csr.clone(), &persistent).unwrap();
    let spawning_secs = median_secs(cfg.reps, || {
        std::hint::black_box(run_on(
            engine.as_ref(),
            loaded_spawning.as_ref(),
            Algorithm::PageRank,
            &params,
            &spawning,
        ));
    });
    let pool_secs = median_secs(cfg.reps, || {
        std::hint::black_box(run_on(
            engine.as_ref(),
            loaded_persistent.as_ref(),
            Algorithm::PageRank,
            &params,
            &persistent,
        ));
    });
    // Identical outputs, by construction — assert it, since the whole
    // point of the comparison is "same answer, cheaper superstep".
    let a = run_on(engine.as_ref(), loaded_spawning.as_ref(), Algorithm::PageRank, &params, &spawning);
    let b = run_on(
        engine.as_ref(),
        loaded_persistent.as_ref(),
        Algorithm::PageRank,
        &params,
        &persistent,
    );
    assert_eq!(a.output, b.output, "backends must agree bit-for-bit");
    engine.delete(loaded_spawning);
    engine.delete(loaded_persistent);

    Json::obj(vec![
        ("engine", Json::str("pregel")),
        ("algorithm", Json::str("pr")),
        ("graph", Json::str(format!("graph500-{}", cfg.runtime_scale))),
        ("pagerank_iterations", Json::Num(cfg.pagerank_iterations as f64)),
        ("threads", Json::Num(width as f64)),
        ("spawn_per_superstep_secs", num(spawning_secs)),
        ("worker_pool_secs", num(pool_secs)),
        ("speedup", num(spawning_secs / pool_secs)),
    ])
}

/// The lifecycle, phase by phase: per-engine upload EPS, per-algorithm
/// per-run EVPS (upload excluded), plus width scaling for two
/// representative kernels.
fn bench_engines(cfg: &Config) -> Json {
    let graph =
        Graph500Config::new(cfg.kernel_scale).with_seed(11).with_weights(true).generate();
    let csr: Arc<Csr> = Arc::new(graph.try_to_csr().unwrap());
    let vpe = (csr.num_vertices() + csr.num_edges()) as f64;
    let edges = csr.num_edges() as f64;
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: 10,
        damping_factor: 0.85,
        cdlp_iterations: 5,
    };
    let pool = WorkerPool::new(4);

    let mut engines = Vec::new();
    let mut uploads = Vec::new();
    for platform in all_platforms() {
        // Upload phase, timed on its own (the paper's load-vs-process
        // split): EPS here is edges per *upload* second. The upload and
        // kernel loops below take 4× reps: these are the cross-PR gated
        // metrics, and on a timeshared host the minimum needs more
        // samples to converge on the true floor.
        let upload_secs = best_secs(cfg.reps * 4, || {
            let loaded = platform.upload(csr.clone(), &pool).unwrap();
            platform.delete(std::hint::black_box(loaded));
        });
        uploads.push(Json::obj(vec![
            ("engine", Json::str(platform.name())),
            ("secs", num(upload_secs)),
            ("upload_eps", num(edges / upload_secs)),
        ]));

        // Execute phase: one upload outside the timed body, per-run EVPS.
        let loaded = platform.upload(csr.clone(), &pool).unwrap();
        let mut algs = Vec::new();
        for algorithm in Algorithm::ALL {
            if !platform.supports(algorithm) {
                continue;
            }
            let secs = best_secs(cfg.reps * 4, || {
                std::hint::black_box(run_on(
                    platform.as_ref(),
                    loaded.as_ref(),
                    algorithm,
                    &params,
                    &pool,
                ));
            });
            algs.push(Json::obj(vec![
                ("algorithm", Json::str(algorithm.acronym())),
                ("secs", num(secs)),
                ("evps", num(vpe / secs)),
            ]));
        }
        platform.delete(loaded);
        engines.push(Json::obj(vec![
            ("engine", Json::str(platform.name())),
            ("kernels", Json::Arr(algs)),
        ]));
    }

    let mut scaling = Vec::new();
    for (engine, algorithm) in [("native", Algorithm::PageRank), ("spmv", Algorithm::Cdlp)] {
        let platform = platform_by_name(engine).unwrap();
        let mut widths = Vec::new();
        for threads in [1u32, 2, 4, 8] {
            let wpool = WorkerPool::new(threads);
            let loaded = platform.upload(csr.clone(), &wpool).unwrap();
            let secs = best_secs(cfg.reps * 2, || {
                std::hint::black_box(run_on(
                    platform.as_ref(),
                    loaded.as_ref(),
                    algorithm,
                    &params,
                    &wpool,
                ));
            });
            platform.delete(loaded);
            widths.push(Json::obj(vec![
                ("threads", Json::Num(threads as f64)),
                ("secs", num(secs)),
                ("evps", num(vpe / secs)),
            ]));
        }
        scaling.push(Json::obj(vec![
            ("engine", Json::str(engine)),
            ("algorithm", Json::str(algorithm.acronym())),
            ("widths", Json::Arr(widths)),
        ]));
    }

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{}", cfg.kernel_scale))),
        ("vertices", Json::Num(csr.num_vertices() as f64)),
        ("edges", Json::Num(csr.num_edges() as f64)),
        ("pool_threads", Json::Num(4.0)),
        ("upload_phase", Json::Arr(uploads)),
        ("per_algorithm", Json::Arr(engines)),
        ("thread_scaling", Json::Arr(scaling)),
    ])
}

/// The sharded execution path: per-run EVPS and inter-shard traffic at
/// shards = 1/2/4, for the engines with a sharded run path. The outputs
/// are bit-identical at every shard count (asserted), so the columns
/// isolate the cost of partitioned execution itself.
fn bench_sharded(cfg: &Config) -> Json {
    let graph =
        Graph500Config::new(cfg.kernel_scale).with_seed(11).with_weights(true).generate();
    let csr: Arc<Csr> = Arc::new(graph.try_to_csr().unwrap());
    let vpe = (csr.num_vertices() + csr.num_edges()) as f64;
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: 10,
        damping_factor: 0.85,
        cdlp_iterations: 5,
    };
    let pool = WorkerPool::new(4);

    let mut engines = Vec::new();
    for name in ["pregel", "pushpull"] {
        let platform = platform_by_name(name).unwrap();
        let mut rows = Vec::new();
        let mut baselines: Vec<(Algorithm, graphalytics_core::AlgorithmOutput)> = Vec::new();
        for shards in [1u32, 2, 4] {
            let plan = ShardPlan::new(shards);
            let loaded = platform.upload_sharded(csr.clone(), &plan, &pool).unwrap();
            let cut = loaded.shard_layout().map_or(0.0, |l| l.cut_fraction);
            let mut algs = Vec::new();
            for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
                let exec =
                    run_on(platform.as_ref(), loaded.as_ref(), algorithm, &params, &pool);
                match baselines.iter().find(|(a, _)| *a == algorithm) {
                    None => baselines.push((algorithm, exec.output.clone())),
                    Some((_, base)) => {
                        assert_eq!(*base, exec.output, "{name} {algorithm} at {shards} shards")
                    }
                }
                let secs = best_secs(cfg.reps * 2, || {
                    std::hint::black_box(run_on(
                        platform.as_ref(),
                        loaded.as_ref(),
                        algorithm,
                        &params,
                        &pool,
                    ));
                });
                algs.push(Json::obj(vec![
                    ("algorithm", Json::str(algorithm.acronym())),
                    ("secs", num(secs)),
                    ("evps", num(vpe / secs)),
                    ("messages", Json::Num(exec.counters.messages as f64)),
                    (
                        "inter_shard_messages",
                        Json::Num(exec.counters.inter_shard_messages as f64),
                    ),
                    ("inter_shard_bytes", Json::Num(exec.counters.inter_shard_bytes as f64)),
                ]));
            }
            platform.delete(loaded);
            rows.push(Json::obj(vec![
                ("shards", Json::Num(shards as f64)),
                ("cut_fraction", num(cut)),
                ("kernels", Json::Arr(algs)),
            ]));
        }
        engines.push(Json::obj(vec![
            ("engine", Json::str(name)),
            ("shard_counts", Json::Arr(rows)),
        ]));
    }

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{}", cfg.kernel_scale))),
        ("vertices", Json::Num(csr.num_vertices() as f64)),
        ("edges", Json::Num(csr.num_edges() as f64)),
        ("pool_threads", Json::Num(4.0)),
        ("engines", Json::Arr(engines)),
    ])
}

/// The Granula-monitor gate: the same sharded kernels with per-superstep
/// tracing off vs on. The monitor must be data-plane passive — outputs
/// bit-identical either way — and the EVPS cost of tracing must stay
/// under 3%. Both are asserted, so a committed artifact *is* the proof.
fn bench_monitor_overhead(cfg: &Config) -> Json {
    // Floor the instance size: at tiny scales the fixed per-superstep
    // span cost competes with pure dispatch noise and the 3% bound stops
    // measuring anything real. Scale 12 gives every superstep enough
    // edge work that the ratio is meaningful, in smoke mode too.
    let scale = cfg.kernel_scale.max(12);
    let graph = Graph500Config::new(scale).with_seed(11).with_weights(true).generate();
    let csr: Arc<Csr> = Arc::new(graph.try_to_csr().unwrap());
    let vpe = (csr.num_vertices() + csr.num_edges()) as f64;
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: 10,
        damping_factor: 0.85,
        cdlp_iterations: 5,
    };
    let pool = WorkerPool::new(4);
    let platform = platform_by_name("pregel").unwrap();
    let loaded = platform.upload_sharded(csr.clone(), &ShardPlan::new(2), &pool).unwrap();

    let run_traced = |tracing: bool, algorithm: Algorithm| {
        let mut ctx = RunContext::new(&pool);
        ctx.set_tracing(tracing);
        platform.run(loaded.as_ref(), algorithm, &params, &mut ctx).unwrap()
    };

    let mut kernels = Vec::new();
    let mut worst_pct = 0.0f64;
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let off = run_traced(false, algorithm);
        let on = run_traced(true, algorithm);
        assert_eq!(off.output, on.output, "monitoring must not perturb {algorithm} output");
        // A 3% bound needs sub-percent measurement noise, which single
        // millisecond-scale wall timings do not give on a shared host
        // (±2–3% jitter, much of it *low-frequency*: multi-second load
        // bursts that cover many consecutive samples). Three defenses:
        // batched samples (each timing spans ≥100 ms of back-to-back
        // runs, averaging per-run jitter), A/B/A drift correction (each
        // traced batch is ratioed against the mean of its two
        // *surrounding* untraced batches, cancelling slow drift that
        // plain off/on alternation turns into bias), and a median over
        // all rounds. The reported secs are best-of-rounds.
        let t = Instant::now();
        std::hint::black_box(run_traced(false, algorithm));
        let single = t.elapsed().as_secs_f64().max(1e-6);
        let batch = ((0.1 / single).ceil() as usize).clamp(1, 64);
        let rounds = (cfg.reps * 4).max(16);
        let time_batch = |tracing: bool| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(run_traced(tracing, algorithm));
            }
            t.elapsed().as_secs_f64() / batch as f64
        };
        let measure = || {
            time_batch(true); // warm the traced side
            let mut offs = Vec::with_capacity(rounds + 1);
            let mut ons = Vec::with_capacity(rounds);
            offs.push(time_batch(false));
            for _ in 0..rounds {
                ons.push(time_batch(true));
                offs.push(time_batch(false));
            }
            let mut ratios: Vec<f64> =
                (0..rounds).map(|i| 2.0 * ons[i] / (offs[i] + offs[i + 1])).collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let off_best = offs.iter().copied().fold(f64::INFINITY, f64::min);
            let on_best = ons.iter().copied().fold(f64::INFINITY, f64::min);
            (off_best, on_best, (ratios[ratios.len() / 2] - 1.0) * 100.0)
        };
        // Up to three independent trials, keeping the cleanest: a real
        // >3% overhead fails every trial, while a noise spike has to hit
        // all three to produce a false failure.
        let mut best = measure();
        for trial in 2..=3 {
            if best.2 <= 3.0 {
                break;
            }
            eprintln!(
                "monitor_overhead: {algorithm} measured {:.2}% — trial {trial} of 3",
                best.2
            );
            let next = measure();
            if next.2 < best.2 {
                best = next;
            }
        }
        let (secs_off, secs_on, overhead_pct) = best;
        worst_pct = worst_pct.max(overhead_pct);
        kernels.push(Json::obj(vec![
            ("algorithm", Json::str(algorithm.acronym())),
            ("untraced_secs", num(secs_off)),
            ("traced_secs", num(secs_on)),
            ("untraced_evps", num(vpe / secs_off)),
            ("traced_evps", num(vpe / secs_on)),
            ("overhead_pct", num(overhead_pct)),
        ]));
    }
    platform.delete(loaded);
    assert!(
        worst_pct <= 3.0,
        "per-superstep tracing costs {worst_pct:.2}% EVPS; the monitor budget is 3%"
    );

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{scale}"))),
        ("vertices", Json::Num(csr.num_vertices() as f64)),
        ("edges", Json::Num(csr.num_edges() as f64)),
        ("engine", Json::str("pregel")),
        ("shards", Json::Num(2.0)),
        ("pool_threads", Json::Num(4.0)),
        ("budget_pct", Json::Num(3.0)),
        ("worst_overhead_pct", num(worst_pct)),
        ("kernels", Json::Arr(kernels)),
    ])
}

/// The fault-plane gate, same shape as the monitor gate: the same
/// kernels with the fault/cancellation scope absent vs installed with an
/// empty script and a live (never-fired) token. The armed-but-idle fault
/// plane is pure per-superstep checkpoint cost — outputs must be
/// bit-identical either way and the EVPS cost must stay under 3%, so the
/// "cancellation is free until you use it" claim is re-proved by every
/// committed artifact.
fn bench_fault_plane_overhead(cfg: &Config) -> Json {
    use graphalytics_core::fault::{self, CancelToken, FaultScript};

    // Same scale floor as the monitor gate, for the same reason: the
    // per-superstep checkpoint is a fixed cost, so the instance must be
    // large enough that the ratio measures work, not dispatch noise.
    let scale = cfg.kernel_scale.max(12);
    let graph = Graph500Config::new(scale).with_seed(11).with_weights(true).generate();
    let csr: Arc<Csr> = Arc::new(graph.try_to_csr().unwrap());
    let vpe = (csr.num_vertices() + csr.num_edges()) as f64;
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: 10,
        damping_factor: 0.85,
        cdlp_iterations: 5,
    };
    let pool = WorkerPool::new(4);
    let platform = platform_by_name("pregel").unwrap();
    let loaded = platform.upload_sharded(csr.clone(), &ShardPlan::new(2), &pool).unwrap();

    let run_armed = |armed: bool, algorithm: Algorithm| {
        let _guard =
            armed.then(|| fault::install(CancelToken::new(), FaultScript::empty()));
        let mut ctx = RunContext::new(&pool);
        platform.run(loaded.as_ref(), algorithm, &params, &mut ctx).unwrap()
    };

    let mut kernels = Vec::new();
    let mut worst_pct = 0.0f64;
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let off = run_armed(false, algorithm);
        let on = run_armed(true, algorithm);
        assert_eq!(
            off.output, on.output,
            "an idle fault plane must not perturb {algorithm} output"
        );
        // Same measurement defenses as the monitor gate: batched samples
        // (≥100 ms per timing), A/B/A drift correction, median ratio over
        // all rounds, and best-of-three independent trials.
        let t = Instant::now();
        std::hint::black_box(run_armed(false, algorithm));
        let single = t.elapsed().as_secs_f64().max(1e-6);
        let batch = ((0.1 / single).ceil() as usize).clamp(1, 64);
        let rounds = (cfg.reps * 4).max(16);
        let time_batch = |armed: bool| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(run_armed(armed, algorithm));
            }
            t.elapsed().as_secs_f64() / batch as f64
        };
        let measure = || {
            time_batch(true); // warm the armed side
            let mut offs = Vec::with_capacity(rounds + 1);
            let mut ons = Vec::with_capacity(rounds);
            offs.push(time_batch(false));
            for _ in 0..rounds {
                ons.push(time_batch(true));
                offs.push(time_batch(false));
            }
            let mut ratios: Vec<f64> =
                (0..rounds).map(|i| 2.0 * ons[i] / (offs[i] + offs[i + 1])).collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let off_best = offs.iter().copied().fold(f64::INFINITY, f64::min);
            let on_best = ons.iter().copied().fold(f64::INFINITY, f64::min);
            (off_best, on_best, (ratios[ratios.len() / 2] - 1.0) * 100.0)
        };
        let mut best = measure();
        for trial in 2..=3 {
            if best.2 <= 3.0 {
                break;
            }
            eprintln!(
                "fault_plane_overhead: {algorithm} measured {:.2}% — trial {trial} of 3",
                best.2
            );
            let next = measure();
            if next.2 < best.2 {
                best = next;
            }
        }
        let (secs_off, secs_on, overhead_pct) = best;
        worst_pct = worst_pct.max(overhead_pct);
        kernels.push(Json::obj(vec![
            ("algorithm", Json::str(algorithm.acronym())),
            ("disabled_secs", num(secs_off)),
            ("armed_secs", num(secs_on)),
            ("disabled_evps", num(vpe / secs_off)),
            ("armed_evps", num(vpe / secs_on)),
            ("overhead_pct", num(overhead_pct)),
        ]));
    }
    platform.delete(loaded);
    assert!(
        worst_pct <= 3.0,
        "the armed-but-idle fault plane costs {worst_pct:.2}% EVPS; the budget is 3%"
    );

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{scale}"))),
        ("vertices", Json::Num(csr.num_vertices() as f64)),
        ("edges", Json::Num(csr.num_edges() as f64)),
        ("engine", Json::str("pregel")),
        ("shards", Json::Num(2.0)),
        ("pool_threads", Json::Num(4.0)),
        ("budget_pct", Json::Num(3.0)),
        ("worst_overhead_pct", num(worst_pct)),
        ("kernels", Json::Arr(kernels)),
    ])
}

/// The parallel traversal kernels: BFS + SSSP wall time and EVPS at
/// pool widths 1/2/4/8 on an instance large enough for the pool to pay
/// for its dispatch, with outputs asserted bit-identical across widths.
/// Also prices the pieces the kernel swap is made of: the one-time
/// light/heavy split (`TraversalPrep`), delta-stepping's edge-work win
/// over the label-correcting baseline, and the bit-packed frontier's
/// resident bytes against the `Vec<bool>` layout it replaced.
fn bench_traversal(cfg: &Config) -> Json {
    let graph =
        Graph500Config::new(cfg.traversal_scale).with_seed(19).with_weights(true).generate();
    let pool4 = WorkerPool::new(4);
    let csr: Arc<Csr> = Arc::new(graph.to_csr_with(&pool4).unwrap());
    let n = csr.num_vertices();
    let vpe = (n + csr.num_edges()) as f64;
    let params = AlgorithmParams::with_source(csr.id_of(0));
    let platform = platform_by_name("pushpull").unwrap();

    let mut kernels = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::Sssp] {
        let mut widths = Vec::new();
        let mut baseline: Option<graphalytics_core::AlgorithmOutput> = None;
        let mut evps_at = [0.0f64; 2]; // widths 1 and 4, for the gate below
        for threads in [1u32, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let loaded = platform.upload(csr.clone(), &pool).unwrap();
            let exec = run_on(platform.as_ref(), loaded.as_ref(), algorithm, &params, &pool);
            match &baseline {
                None => baseline = Some(exec.output.clone()),
                Some(base) => assert_eq!(
                    *base, exec.output,
                    "{algorithm} output changed at pool width {threads}"
                ),
            }
            let secs = best_secs(cfg.reps * 2, || {
                std::hint::black_box(run_on(
                    platform.as_ref(),
                    loaded.as_ref(),
                    algorithm,
                    &params,
                    &pool,
                ));
            });
            platform.delete(loaded);
            let evps = vpe / secs;
            if threads == 1 {
                evps_at[0] = evps;
            } else if threads == 4 {
                evps_at[1] = evps;
            }
            widths.push(Json::obj(vec![
                ("threads", Json::Num(threads as f64)),
                ("secs", num(secs)),
                ("evps", num(evps)),
            ]));
        }
        // The acceptance gate: at bench scale the pool must beat the
        // sequential kernel — when the host can actually run workers in
        // parallel. On a single-core host width 4 is pure time-slicing,
        // so the meaningful (and still asserted) claim becomes an upper
        // bound on pool dispatch overhead. Smoke instances are too
        // small for the dispatch cost to amortize, so only full runs
        // assert either form.
        if !cfg.smoke {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            // On one core both widths run the identical inline kernel
            // (parallel_worth gates out dispatch), so the comparison is
            // pure timer noise — keep a loose 10% band rather than a
            // tight one that trips on scheduler jitter.
            let floor = if cores >= 2 { evps_at[0] } else { 0.90 * evps_at[0] };
            assert!(
                evps_at[1] >= floor,
                "{algorithm}: pool width 4 ({:.3e} EVPS) vs width 1 ({:.3e}) \
                 below the floor for a {cores}-core host",
                evps_at[1],
                evps_at[0]
            );
        }
        kernels.push(Json::obj(vec![
            ("algorithm", Json::str(algorithm.acronym())),
            ("widths", Json::Arr(widths)),
        ]));
    }

    // Delta-stepping vs the label-correcting baseline: edge work, wall
    // time (both at width 4), and the one-time split cost.
    let loaded = platform.upload(csr.clone(), &pool4).unwrap();
    let ppg = loaded
        .as_any()
        .downcast_ref::<graphalytics_engines::pushpull::PushPullGraph>()
        .unwrap();
    let prep_t = Instant::now();
    let split = ppg.light_heavy(&pool4).expect("bench graph is delta-eligible");
    let prep_secs = prep_t.elapsed().as_secs_f64();
    let (split_delta, split_light, split_heavy, split_bytes) =
        (split.delta(), split.num_light(), split.num_heavy(), split.resident_bytes());
    let delta_exec = run_on(platform.as_ref(), loaded.as_ref(), Algorithm::Sssp, &params, &pool4);
    let delta_secs = best_secs(cfg.reps * 2, || {
        std::hint::black_box(run_on(
            platform.as_ref(),
            loaded.as_ref(),
            Algorithm::Sssp,
            &params,
            &pool4,
        ));
    });
    platform.delete(loaded);
    let mut base_counters = graphalytics_engines::WorkCounters::new();
    let root = csr.index_of(params.source_vertex.unwrap()).unwrap();
    let base_dist = graphalytics_engines::pushpull::label_correcting_sssp(
        &csr,
        root,
        &mut base_counters,
    );
    let base_secs = best_secs(cfg.reps * 2, || {
        let mut c = graphalytics_engines::WorkCounters::new();
        std::hint::black_box(graphalytics_engines::pushpull::label_correcting_sssp(
            &csr, root, &mut c,
        ));
    });
    assert_eq!(
        graphalytics_core::AlgorithmOutput::from_dense(
            Algorithm::Sssp,
            &csr,
            graphalytics_core::OutputValues::F64(base_dist),
        ),
        delta_exec.output,
        "delta-stepping and label-correcting must agree bitwise"
    );

    // Frontier footprint: bit-packed words vs the old dense Vec<bool>.
    let frontier = graphalytics_engines::common::frontier::Frontier::new(n);

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{}", cfg.traversal_scale))),
        ("vertices", Json::Num(n as f64)),
        ("edges", Json::Num(csr.num_edges() as f64)),
        ("kernels", Json::Arr(kernels)),
        (
            "sssp_delta_vs_baseline",
            Json::obj(vec![
                ("traversal_prep_secs", num(prep_secs)),
                ("delta", num(split_delta)),
                ("light_edges", Json::Num(split_light as f64)),
                ("heavy_edges", Json::Num(split_heavy as f64)),
                ("split_resident_bytes", Json::Num(split_bytes as f64)),
                ("delta_secs", num(delta_secs)),
                ("delta_edges_scanned", Json::Num(delta_exec.counters.edges_scanned as f64)),
                ("label_correcting_secs", num(base_secs)),
                (
                    "label_correcting_edges_scanned",
                    Json::Num(base_counters.edges_scanned as f64),
                ),
                ("edge_work_ratio", num(delta_exec.counters.edges_scanned as f64
                    / base_counters.edges_scanned as f64)),
            ]),
        ),
        (
            "frontier",
            Json::obj(vec![
                ("bitpacked_resident_bytes", Json::Num(frontier.resident_bytes() as f64)),
                ("vec_bool_bytes", Json::Num(n as f64)),
            ]),
        ),
    ])
}

/// The streaming-mutation trade on the pushpull engine. For each
/// mutation rate (1% / 5% / 20% of the base edge count, half inserts and
/// half deletes): one measured `apply_mutations` batch prices apply
/// throughput, then incremental recompute — apply into the engine's
/// delta log and re-run against its cached WCC labels / PageRank warm
/// ranks — races the full pipeline a non-incremental engine needs
/// (materialize the merged CSR, upload, run cold). Incremental WCC is
/// asserted bit-identical to the cold run and incremental PageRank
/// within validator epsilon at every rate; in full mode incremental must
/// win at rates ≤ 5%, and the 20% column documents where the trade
/// crosses over. An explicit `compact` of a 20% log prices folding the
/// delta back into a fresh base CSR.
fn bench_mutation(cfg: &Config) -> Json {
    use graphalytics_core::{random_batch, validation, DeltaConfig, MutableGraph};

    let graph =
        Graph500Config::new(cfg.mutation_scale).with_seed(23).with_weights(true).generate();
    let pool = WorkerPool::new(4);
    let csr: Arc<Csr> = Arc::new(graph.to_csr_with(&pool).unwrap());
    let edges = csr.num_edges();
    // Deep enough that a cold run is converged well inside the validator
    // tolerance — the precondition for the engine's warm-start path —
    // and that restarting from near-converged ranks (whose iteration
    // count is set by the contraction bound, not by K) undercuts the
    // fixed-K cold schedule.
    let params = AlgorithmParams {
        source_vertex: Some(csr.id_of(0)),
        pagerank_iterations: 400,
        damping_factor: 0.85,
        cdlp_iterations: 5,
    };
    let platform = platform_by_name("pushpull").unwrap();
    let reps = cfg.reps.max(2);
    let no_auto = DeltaConfig { auto_compact: false, ..DeltaConfig::default() };

    let mut rates = Vec::new();
    for (i, rate) in [0.01f64, 0.05, 0.20].into_iter().enumerate() {
        let per_kind = ((edges as f64 * rate) / 2.0).ceil() as usize;
        let batch = random_batch(&csr, per_kind, per_kind, 0xC0FFEE + i as u64);
        // The engine caches incremental state on its first post-mutation
        // run, so the steady-state streaming scenario — the one worth
        // measuring — needs one small warmup batch + run before the
        // timed apply rides the cached labels / warm ranks.
        let warm_batch = random_batch(&csr, 8, 8, 0xBEEF + i as u64);

        // The post-mutation graph, held in a core-side delta log
        // (compaction off so the log survives the timed
        // materializations below).
        let mut mirror = MutableGraph::with_config(csr.clone(), no_auto);
        mirror.apply(&warm_batch, &pool).unwrap();
        mirror.apply(&batch, &pool).unwrap();

        // Apply throughput: one measured batch on a fresh upload.
        let loaded = platform.upload(csr.clone(), &pool).unwrap();
        let mut ctx = RunContext::new(&pool);
        ctx.set_tracing(false);
        let mutation = platform.apply_mutations(loaded.as_ref(), &batch, &mut ctx).unwrap();
        platform.delete(loaded);

        let mut kernels = Vec::new();
        for algorithm in [Algorithm::Wcc, Algorithm::PageRank] {
            // Incremental: warmup batch + run to establish the cached
            // state, then time apply + recompute. Fresh upload per
            // repetition — a second apply of the same batch would be
            // all updates and no-ops.
            let mut inc_secs = f64::INFINITY;
            let mut inc_output = None;
            for _ in 0..reps {
                let loaded = platform.upload(csr.clone(), &pool).unwrap();
                let mut ctx = RunContext::new(&pool);
                ctx.set_tracing(false);
                platform.apply_mutations(loaded.as_ref(), &warm_batch, &mut ctx).unwrap();
                std::hint::black_box(
                    platform.run(loaded.as_ref(), algorithm, &params, &mut ctx).unwrap(),
                );
                let t = Instant::now();
                platform.apply_mutations(loaded.as_ref(), &batch, &mut ctx).unwrap();
                let exec = platform.run(loaded.as_ref(), algorithm, &params, &mut ctx).unwrap();
                inc_secs = inc_secs.min(t.elapsed().as_secs_f64());
                inc_output = Some(exec.output);
                platform.delete(loaded);
            }
            let inc_output = inc_output.unwrap();

            // Full: everything a non-incremental engine must redo.
            let mut full_secs = f64::INFINITY;
            let mut full_output = None;
            for _ in 0..reps {
                let t = Instant::now();
                let merged: Arc<Csr> = Arc::new(mirror.materialize(&pool).unwrap());
                let loaded = platform.upload(merged, &pool).unwrap();
                let exec = run_on(platform.as_ref(), loaded.as_ref(), algorithm, &params, &pool);
                full_secs = full_secs.min(t.elapsed().as_secs_f64());
                full_output = Some(exec.output);
                platform.delete(loaded);
            }
            let full_output = full_output.unwrap();

            match algorithm {
                Algorithm::Wcc => assert_eq!(
                    inc_output, full_output,
                    "incremental WCC must match the cold recompute bit-for-bit at rate {rate}"
                ),
                _ => {
                    validation::validate(&full_output, &inc_output).unwrap_or_else(|e| {
                        panic!("incremental {algorithm} outside validator epsilon at rate {rate}: {e}")
                    });
                }
            }
            if !cfg.smoke && rate <= 0.05 {
                assert!(
                    inc_secs < full_secs,
                    "{algorithm} at rate {rate}: incremental ({inc_secs:.4}s) must beat \
                     materialize+upload+cold ({full_secs:.4}s)"
                );
            }
            kernels.push(Json::obj(vec![
                ("algorithm", Json::str(algorithm.acronym())),
                ("incremental_secs", num(inc_secs)),
                ("full_secs", num(full_secs)),
                ("speedup", num(full_secs / inc_secs)),
            ]));
        }
        rates.push(Json::obj(vec![
            ("rate", num(rate)),
            ("batch_edges", Json::Num(batch.len() as f64)),
            ("apply_secs", num(mutation.wall_seconds)),
            ("apply_eps", num(batch.len() as f64 / mutation.wall_seconds.max(1e-9))),
            ("delta_arcs", Json::Num(mutation.delta_arcs as f64)),
            ("fill_ratio", num(mutation.fill_ratio)),
            ("compacted", Json::Bool(mutation.compacted)),
            ("kernels", Json::Arr(kernels)),
        ]));
    }

    // Explicit compaction: fold a 20%-rate log back into a fresh CSR.
    let per_kind = ((edges as f64 * 0.20) / 2.0).ceil() as usize;
    let batch = random_batch(&csr, per_kind, per_kind, 0xC0FFEE + 2);
    let mut compact_secs = f64::INFINITY;
    let mut compact_arcs = 0u64;
    for _ in 0..reps {
        let mut mg = MutableGraph::with_config(csr.clone(), no_auto);
        mg.apply(&batch, &pool).unwrap();
        compact_arcs = mg.delta_arcs();
        compact_secs = compact_secs.min(mg.compact(&pool).unwrap());
        assert_eq!(mg.delta_arcs(), 0, "compaction must empty the log");
    }

    Json::obj(vec![
        ("graph", Json::str(format!("graph500-{}", cfg.mutation_scale))),
        ("vertices", Json::Num(csr.num_vertices() as f64)),
        ("edges", Json::Num(edges as f64)),
        ("engine", Json::str("pushpull")),
        ("pagerank_iterations", Json::Num(params.pagerank_iterations as f64)),
        ("pool_threads", Json::Num(4.0)),
        ("rates", Json::Arr(rates)),
        (
            "compaction",
            Json::obj(vec![
                ("delta_arcs", Json::Num(compact_arcs as f64)),
                ("compact_secs", num(compact_secs)),
            ]),
        ),
    ])
}

fn main() {
    let cfg = parse_args();
    println!("repro_bench: measuring upload path ...");
    let upload = bench_upload(&cfg);
    println!("repro_bench: measuring runtime baseline (spawn vs pool) ...");
    let runtime = bench_runtime_baseline(&cfg);
    println!("repro_bench: measuring engine kernels ...");
    let engines = bench_engines(&cfg);
    println!("repro_bench: measuring sharded execution ...");
    let sharded = bench_sharded(&cfg);
    println!("repro_bench: measuring monitor overhead (tracing off vs on) ...");
    let monitor = bench_monitor_overhead(&cfg);
    println!("repro_bench: measuring fault-plane overhead (disabled vs armed-idle) ...");
    let fault_plane = bench_fault_plane_overhead(&cfg);
    println!("repro_bench: measuring traversal kernels (widths 1/2/4/8) ...");
    let traversal = bench_traversal(&cfg);
    println!("repro_bench: measuring streaming mutation (incremental vs full recompute) ...");
    let mutation = bench_mutation(&cfg);

    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let report = Json::obj(vec![
        ("pr", Json::Num(10.0)),
        ("benchmark", Json::str("fault-injection plane + cooperative cancellation: armed-idle checkpoint overhead vs disabled, chaos-tested degradation")),
        (
            "host",
            Json::obj(vec![
                ("available_parallelism", Json::Num(host_threads as f64)),
                ("mode", Json::str(if cfg.smoke { "smoke" } else { "full" })),
            ]),
        ),
        ("upload", upload),
        ("runtime_baseline", runtime),
        ("engines", engines),
        ("sharded", sharded),
        ("monitor_overhead", monitor),
        ("fault_plane_overhead", fault_plane),
        ("traversal", traversal),
        ("mutation", mutation),
    ]);

    if let Some(parent) = std::path::Path::new(&cfg.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    std::fs::write(&cfg.out, report.to_string_pretty() + "\n").expect("write report");
    println!("repro_bench: wrote {}", cfg.out);

    // Human-readable headline.
    let rb = report.get("runtime_baseline").unwrap();
    println!(
        "headline: pregel pr x{} — spawn/superstep {:.4}s vs pool {:.4}s ({}x)",
        rb.get("pagerank_iterations").and_then(Json::as_f64).unwrap_or(0.0),
        rb.get("spawn_per_superstep_secs").and_then(Json::as_f64).unwrap_or(0.0),
        rb.get("worker_pool_secs").and_then(Json::as_f64).unwrap_or(0.0),
        rb.get("speedup").and_then(Json::as_f64).unwrap_or(0.0),
    );
}
