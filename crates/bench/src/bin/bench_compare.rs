//! `bench_compare` — gates the perf trajectory between two `repro_bench`
//! artifacts (`BENCH_pr<N>.json`).
//!
//! ```text
//! cargo run --release -p graphalytics-bench --bin bench_compare -- \
//!     BENCH_pr3.json BENCH_pr4.json --max-regression 0.30
//! ```
//!
//! Compares every **shared** engine EVPS metric (same engine, same
//! algorithm present in both artifacts under `engines.per_algorithm`) and
//! exits non-zero when any regresses by more than the threshold
//! (default 30%). Metrics present in only one artifact — new phases,
//! renamed sections — are reported but never gate, so the comparison
//! survives schema evolution. Upload-phase EPS (present from PR 4 on) is
//! compared the same way once both artifacts carry it.

use graphalytics_granula::json::Json;

struct Metric {
    key: String,
    value: f64,
}

/// Flattens the comparable metrics of one artifact.
fn metrics(report: &Json) -> Vec<Metric> {
    let mut out = Vec::new();
    let engines = report.get("engines");
    if let Some(list) = engines.and_then(|e| e.get("per_algorithm")).and_then(Json::as_arr) {
        for entry in list {
            let Some(engine) = entry.get("engine").and_then(Json::as_str) else { continue };
            let Some(kernels) = entry.get("kernels").and_then(Json::as_arr) else { continue };
            for kernel in kernels {
                let (Some(alg), Some(evps)) = (
                    kernel.get("algorithm").and_then(Json::as_str),
                    kernel.get("evps").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                out.push(Metric { key: format!("evps/{engine}/{alg}"), value: evps });
            }
        }
    }
    if let Some(list) = engines.and_then(|e| e.get("upload_phase")).and_then(Json::as_arr) {
        for entry in list {
            let (Some(engine), Some(eps)) = (
                entry.get("engine").and_then(Json::as_str),
                entry.get("upload_eps").and_then(Json::as_f64),
            ) else {
                continue;
            };
            out.push(Metric { key: format!("upload_eps/{engine}"), value: eps });
        }
    }
    out
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")))
}

fn die(message: &str) -> ! {
    eprintln!("bench_compare: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.30f64;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-regression" => {
                let value = iter.next().unwrap_or_else(|| {
                    die("--max-regression takes a fraction (e.g. 0.30)")
                });
                max_regression = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad threshold {value:?}")));
            }
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        die("usage: bench_compare <old.json> <new.json> [--max-regression 0.30]");
    };

    let old_metrics = metrics(&load(old_path));
    let new_report = load(new_path);
    let new_metrics = metrics(&new_report);

    let mut shared = 0usize;
    let mut failures = Vec::new();
    println!("{:<28} {:>14} {:>14} {:>9}", "metric", "old", "new", "ratio");
    for old in &old_metrics {
        let Some(new) = new_metrics.iter().find(|m| m.key == old.key) else {
            println!("{:<28} {:>14.0} {:>14} {:>9}", old.key, old.value, "-", "gone");
            continue;
        };
        shared += 1;
        let ratio = new.value / old.value;
        let verdict = if ratio < 1.0 - max_regression { "FAIL" } else { "" };
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>8.2}x {verdict}",
            old.key, old.value, new.value, ratio
        );
        if ratio < 1.0 - max_regression {
            failures.push(format!(
                "{}: {:.0} -> {:.0} ({:.0}% regression)",
                old.key,
                old.value,
                new.value,
                (1.0 - ratio) * 100.0
            ));
        }
    }
    for new in &new_metrics {
        if !old_metrics.iter().any(|m| m.key == new.key) {
            println!("{:<28} {:>14} {:>14.0} {:>9}", new.key, "-", new.value, "new");
        }
    }

    if shared == 0 {
        die("no shared metrics between the two artifacts");
    }
    println!("\n{shared} shared metrics, threshold {:.0}%", max_regression * 100.0);
    if failures.is_empty() {
        println!("bench_compare: OK");
    } else {
        eprintln!("bench_compare: {} regression(s) beyond threshold:", failures.len());
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}
