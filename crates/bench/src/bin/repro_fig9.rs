//! Figure 9: weak horizontal scalability on graph500-22..26.

use graphalytics_harness::experiments::weak;

fn main() {
    graphalytics_bench::banner("Figure 9: weak scalability", "Section 4.5, Figure 9");
    let w = weak::run(&graphalytics_bench::suite());
    println!("{}", w.render_fig9());
    println!("Ideal weak scaling would be a constant row; slowdowns are the paper's metric.");
}
