//! Figure 9: weak horizontal scalability on graph500-22..26.

use graphalytics_harness::experiments::weak;

fn main() {
    graphalytics_bench::banner("Figure 9: weak scalability", "Section 4.5, Figure 9");
    let suite = graphalytics_bench::suite();
    let w = weak::run(&suite);
    println!("{}", w.render_fig9());
    println!("Ideal weak scaling would be a constant row; slowdowns are the paper's metric.");
    println!();
    let m = weak::run_measured(&suite, 1 << 14);
    println!("{}", m.render_fig9_measured());
    println!("NA = no sharded execution path; ism = inter-shard messages.");
}
