//! Table 8: T_proc and makespan for BFS on D300(L).

use graphalytics_harness::experiments::baseline;

fn main() {
    graphalytics_bench::banner("Table 8: Tproc vs makespan", "Section 4.1, Table 8");
    let dv = baseline::run(&graphalytics_bench::suite());
    println!("{}", dv.render_table8());
    println!("\nPaper values: makespan 276.6/298.3/214.7/22.8/5.4/268.7 s;");
    println!("              Tproc    22.3/101.5/2.1/0.3/1.8/0.5 s.");
}
