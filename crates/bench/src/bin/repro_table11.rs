//! Table 11: performance variability (mean and CV over 10 runs).

use graphalytics_harness::experiments::variability;

fn main() {
    graphalytics_bench::banner("Table 11: variability", "Section 4.7, Table 11");
    let v = variability::run(&graphalytics_bench::suite());
    println!("{}", variability::render_table11(&v));
    println!("\nPaper CVs: S 5.0/2.6/1.5/9.7/4.8/8.2 %; D 9.8/4.5/4.5/5.7/-/7.1 %.");
}
