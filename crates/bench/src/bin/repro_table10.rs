//! Table 10: stress test — smallest dataset failing BFS per platform.

use graphalytics_harness::experiments::stress;

fn main() {
    graphalytics_bench::banner("Table 10: stress test", "Section 4.6, Table 10");
    let outcomes = stress::run(&graphalytics_bench::suite());
    println!("{}", stress::render_table10(&outcomes));
    println!("\nPaper values: Giraph G26(9.0), GraphX G25(8.7), P'graph R5(9.3),");
    println!("              G'Mat G26(9.0), OpenG R5(9.3), PGX.D G25(8.7).");
}
