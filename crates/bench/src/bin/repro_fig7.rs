//! Figure 7: vertical scalability — T_proc vs threads on D300(L).

use graphalytics_harness::experiments::vertical;

fn main() {
    graphalytics_bench::banner("Figure 7: vertical scalability", "Section 4.3, Figure 7");
    let v = vertical::run(&graphalytics_bench::quiet_suite());
    println!("{}", v.render_fig7());
}
