//! Figure 5: dataset variety — EPS and EVPS for BFS.

use graphalytics_harness::experiments::baseline;

fn main() {
    graphalytics_bench::banner("Figure 5: EPS and EVPS for BFS", "Section 4.1, Figure 5");
    let dv = baseline::run(&graphalytics_bench::suite());
    println!("{}", dv.render_fig5());
}
