//! Table 1: results of the two algorithm surveys and the workload the
//! two-stage selection process yields.

use graphalytics_harness::report::TextTable;
use graphalytics_harness::survey::{selected_workload, SurveyKind, SURVEY};

fn main() {
    graphalytics_bench::banner("Table 1: surveys of graph algorithms", "Section 2.2.2, Table 1");
    for (kind, label) in [
        (SurveyKind::Unweighted, "Unweighted survey (124 articles)"),
        (SurveyKind::Weighted, "Weighted survey (44 articles)"),
    ] {
        let mut table = TextTable::new(label, &["class", "selected", "#", "%"]);
        for class in SURVEY.iter().filter(|c| c.survey == kind) {
            let selected: Vec<String> =
                class.selected.iter().map(|a| a.acronym().to_uppercase()).collect();
            table.add_row(vec![
                class.name.to_string(),
                if selected.is_empty() { "-".into() } else { selected.join(", ") },
                class.count.to_string(),
                format!("{:.1}%", class.percent),
            ]);
        }
        println!("{}", table.render());
    }
    let workload: Vec<&str> = selected_workload().iter().map(|a| a.acronym()).collect();
    println!("Two-stage selection yields the core workload: {}", workload.join(", "));
}
