//! Figure 4: dataset variety — T_proc for BFS and PageRank.

use graphalytics_harness::experiments::baseline;

fn main() {
    graphalytics_bench::banner("Figure 4: dataset variety (Tproc)", "Section 4.1, Figure 4");
    let dv = baseline::run(&graphalytics_bench::suite());
    println!("{}", dv.render_fig4());
}
