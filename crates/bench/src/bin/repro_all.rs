//! Runs every table/figure reproduction in paper order.

use graphalytics_harness::experiments::{
    algorithm_variety, baseline, datagen_selftest, stress, strong, variability, vertical, weak,
};

fn main() {
    let suite = graphalytics_bench::suite();
    let quiet = graphalytics_bench::quiet_suite();

    graphalytics_bench::banner(
        "the full LDBC Graphalytics evaluation (Tables 8-11, Figures 4-10)",
        "Sections 4.1-4.8",
    );

    let dv = baseline::run(&suite);
    println!("{}", dv.render_fig4());
    println!("{}", dv.render_fig5());
    println!("{}", dv.render_table8());
    println!();

    let av = algorithm_variety::run(&suite);
    println!("{}", av.render_fig6());

    let v = vertical::run(&quiet);
    println!("{}", v.render_fig7());
    println!("{}", v.render_table9());
    println!();

    let s = strong::run(&suite);
    println!("{}", s.render_fig8());
    let sm = strong::run_measured(&suite, 1 << 12);
    println!("{}", sm.render_fig8_measured());

    let w = weak::run(&suite);
    println!("{}", w.render_fig9());
    let wm = weak::run_measured(&suite, 1 << 14);
    println!("{}", wm.render_fig9_measured());

    let st = stress::run(&suite);
    println!("{}", stress::render_table10(&st));
    println!();

    let var = variability::run(&suite);
    println!("{}", variability::render_table11(&var));
    println!();

    println!("{}", datagen_selftest::render_fig10());
}
