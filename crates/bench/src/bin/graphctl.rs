//! `graphctl` — command-line client for the graphalytics-service daemon
//! (the analog of GRAL's `grupload`).
//!
//! ```text
//! graphctl <addr> serve [workers]                  run a daemon in the foreground
//! graphctl <addr> submit <platform> <dataset> <algorithm> [measured|analytic] [repetitions]
//!          [--timeout-secs=<secs>]                 (deadline: run aborts → `timed-out`)
//! graphctl <addr> status <id>                      one job's record
//! graphctl <addr> wait <id> [timeout-secs]         block until the job finishes
//! graphctl <addr> cancel <id>                      cancel a queued or running job
//! graphctl <addr> archive <id>                     render a job's Granula archive
//! graphctl <addr> mutate <dataset> <insert> <delete> [seed]
//! graphctl <addr> jobs | results | graphs | metrics | health
//! ```

use std::io::Write as _;
use std::time::Duration;

use graphalytics_service::{Client, ClientResult, JobMode, Service, ServiceConfig};

const USAGE: &str = "usage: graphctl <addr> <command> [args]
commands:
  serve [workers]                                    run a daemon bound to <addr>
  submit <platform> <dataset> <algorithm> [mode] [n] enqueue a job (mode: measured|analytic,
         [--timeout-secs=<secs>]                     n: execute-phase repetitions, default 1;
                                                     a job still running past the deadline
                                                     aborts into the `timed-out` state)
  status <id>                                        one job's record
  wait <id> [timeout-secs]                           block until the job finishes
  cancel <id>                                        cancel a queued or running job (a
                                                     running job aborts at its next
                                                     superstep boundary)
  archive <id>                                       fetch a finished job's Granula archive
                                                     and render it as an ASCII phase tree
  mutate <dataset> <insert> <delete> [seed]          apply one server-generated mutation
                                                     batch (<insert> new edges, <delete>
                                                     removals) to a resident graph's delta
                                                     log; later jobs on <dataset> run on the
                                                     mutated graph
  jobs                                               list all jobs
  results                                            results database export
  graphs                                             resident graph store
  metrics [prometheus]                               job/store counters, EPS aggregates,
                                                     monitor telemetry (optionally in the
                                                     Prometheus text format)
  health                                             liveness probe";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("graphctl: {message}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (addr, command, rest) = match args {
        [addr, command, rest @ ..] => (addr.as_str(), command.as_str(), rest),
        _ => return Err(USAGE.to_string()),
    };
    if command == "serve" {
        return serve(addr, rest);
    }
    let client = Client::new(addr);
    let output = match (command, rest) {
        ("submit", [platform, dataset, algorithm, rest @ ..]) => {
            // `--timeout-secs=<secs>` may appear anywhere after the
            // algorithm; the positional args keep their old grammar.
            let mut timeout_secs = None;
            let mut positional = Vec::new();
            for arg in rest {
                if let Some(raw) = arg.strip_prefix("--timeout-secs=") {
                    let secs: f64 =
                        raw.parse().map_err(|_| format!("bad timeout {raw:?}"))?;
                    timeout_secs = Some(secs);
                } else {
                    positional.push(arg.clone());
                }
            }
            let (mode, repetitions) = match positional.as_slice() {
                [] => (JobMode::Measured, 1),
                [mode, reps @ ..] => {
                    let mode = JobMode::from_str_opt(mode)
                        .ok_or_else(|| format!("unknown mode {mode:?} (measured|analytic)"))?;
                    let repetitions = match reps {
                        [] => 1,
                        [n] => n.parse().map_err(|_| format!("bad repetition count {n:?}"))?,
                        _ => return Err(USAGE.to_string()),
                    };
                    (mode, repetitions)
                }
            };
            let id = client
                .submit_with_timeout(
                    platform,
                    dataset,
                    algorithm,
                    mode,
                    repetitions,
                    timeout_secs,
                )
                .map_err(|e| e.to_string())?;
            print_line(&id.to_string());
            return Ok(());
        }
        ("status", [id]) => client.job(parse_id(id)?),
        ("wait", [id, rest @ ..]) => {
            let timeout = match rest {
                [] => 300,
                [secs] => secs.parse().map_err(|_| format!("bad timeout {secs:?}"))?,
                _ => return Err(USAGE.to_string()),
            };
            client.wait(parse_id(id)?, Duration::from_secs(timeout))
        }
        ("cancel", [id]) => client.cancel(parse_id(id)?),
        ("archive", [id]) => {
            let archive = client.archive(parse_id(id)?).map_err(|e| e.to_string())?;
            print_line(&graphalytics_granula::visualize::render(&archive));
            return Ok(());
        }
        ("mutate", [dataset, insert, delete, rest @ ..]) => {
            let insertions = parse_count("insert", insert)?;
            let deletions = parse_count("delete", delete)?;
            let seed = match rest {
                [] => 0,
                [seed] => parse_count("seed", seed)?,
                _ => return Err(USAGE.to_string()),
            };
            client.mutate_generated(dataset, insertions, deletions, seed)
        }
        ("jobs", []) => client.jobs(),
        ("results", []) => client.results(),
        ("graphs", []) => client.graphs(),
        ("metrics", []) => client.metrics(),
        ("metrics", [format]) if format == "prometheus" => {
            let text = client.metrics_prometheus().map_err(|e| e.to_string())?;
            print_line(&text);
            return Ok(());
        }
        ("health", []) => client.health(),
        _ => return Err(USAGE.to_string()),
    };
    print_json(output)
}

fn serve(addr: &str, rest: &[String]) -> Result<(), String> {
    let workers = match rest {
        [] => 4,
        [n] => n.parse().map_err(|_| format!("bad worker count {n:?}"))?,
        _ => return Err(USAGE.to_string()),
    };
    let config = ServiceConfig { addr: addr.to_string(), workers, ..ServiceConfig::default() };
    let service = Service::start(config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!("graphalytics-service listening on {} ({workers} workers)", service.addr());
    eprintln!("stop with Ctrl-C");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn parse_id(raw: &str) -> Result<u64, String> {
    raw.parse().map_err(|_| format!("bad job id {raw:?}"))
}

fn parse_count(what: &str, raw: &str) -> Result<u64, String> {
    raw.parse().map_err(|_| format!("bad {what} count {raw:?}"))
}

fn print_json(
    output: ClientResult<graphalytics_granula::json::Json>,
) -> Result<(), String> {
    let value = output.map_err(|e| e.to_string())?;
    print_line(&value.to_string_pretty());
    Ok(())
}

/// `println!` panics when stdout is a closed pipe (`graphctl … | head`);
/// a CLI should just stop instead.
fn print_line(text: &str) {
    let stdout = std::io::stdout();
    let _ = writeln!(stdout.lock(), "{text}");
}
