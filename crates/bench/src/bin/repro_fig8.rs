//! Figure 8: strong horizontal scalability on D1000(XL).

use graphalytics_harness::experiments::strong;

fn main() {
    graphalytics_bench::banner("Figure 8: strong scalability", "Section 4.4, Figure 8");
    let suite = graphalytics_bench::suite();
    let s = strong::run(&suite);
    println!("{}", s.render_fig8());
    println!("F = failure (PGX.D exceeds single-machine memory; GraphX needs >= 2 machines).");
    println!();
    let m = strong::run_measured(&suite, 1 << 12);
    println!("{}", m.render_fig8_measured());
    println!("NA = no sharded execution path; ism = inter-shard messages.");
}
