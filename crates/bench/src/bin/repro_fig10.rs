//! Figure 10: Datagen execution time — old vs new flow, and cluster
//! scaling. Also runs a real small-scale generation to show both flows
//! produce identical graphs.

use graphalytics_datagen::{DatagenConfig, FlowKind, HadoopCluster};
use graphalytics_harness::experiments::datagen_selftest;

fn main() {
    graphalytics_bench::banner("Figure 10: Datagen self-test", "Section 4.8, Figure 10");
    println!("{}", datagen_selftest::render_fig10());
    println!("Paper: v0.2.6 speedups 1.16/1.33/1.83/2.15/2.9x; SF1000@16m = 44 min (old 95).\n");

    // Real execution at small scale: both flows, identical output.
    println!("Real small-scale validation (SF 0.02, executed locally):");
    let cluster = HadoopCluster::das4(16);
    for flow in [FlowKind::Old, FlowKind::New] {
        let cfg = DatagenConfig::with_scale_factor(0.02).with_flow(flow);
        let (graph, report) = cfg.generate_with_report(&cluster);
        println!(
            "  {flow}: |V|={} |E|={} wall={:.2}s sim={:.0}s (dedup {} -> {})",
            graph.vertex_count(),
            graph.edge_count(),
            report.wall_seconds,
            report.sim_seconds,
            report.edges_before_dedup,
            report.edges_after_dedup,
        );
    }
}
