//! Table 9: maximum vertical speedups (1-32 threads).

use graphalytics_harness::experiments::vertical;

fn main() {
    graphalytics_bench::banner("Table 9: vertical speedups", "Section 4.3, Table 9");
    let v = vertical::run(&graphalytics_bench::quiet_suite());
    println!("{}", v.render_table9());
    println!("\nPaper values: BFS 6.0/4.5/11.8/6.9/6.3/15.0; PR 8.1/2.9/10.3/11.3/6.4/13.9.");
}
