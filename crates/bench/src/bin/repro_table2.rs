//! Tables 2-4: scale classes and the dataset registry.

use graphalytics_core::datasets::all_datasets;
use graphalytics_core::SizeClass;
use graphalytics_harness::report::TextTable;

fn main() {
    graphalytics_bench::banner(
        "Tables 2-4: T-shirt scale classes and datasets",
        "Section 2.2.4, Tables 2, 3 and 4",
    );

    let mut t2 = TextTable::new("Table 2: scale ranges to labels", &["scale range", "label"]);
    let bounds = ["< 7.0", "[7.0, 7.5)", "[7.5, 8.0)", "[8.0, 8.5)", "[8.5, 9.0)", "[9.0, 9.5)", ">= 9.5"];
    for (class, range) in SizeClass::ALL.iter().zip(bounds) {
        t2.add_row(vec![range.to_string(), class.label().to_string()]);
    }
    println!("{}", t2.render());

    let mut t34 = TextTable::new(
        "Tables 3-4: Graphalytics datasets",
        &["ID", "name", "|V|", "|E|", "scale", "class", "domain", "directed", "weighted"],
    );
    for d in all_datasets() {
        t34.add_row(vec![
            d.id.to_string(),
            d.name.to_string(),
            format!("{:.2}M", d.vertices as f64 / 1e6),
            format!("{:.2}M", d.edges as f64 / 1e6),
            format!("{:.1}", d.scale()),
            d.class().label().to_string(),
            d.domain.to_string(),
            if d.directed { "yes" } else { "no" }.into(),
            if d.weighted { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", t34.render());
}
