//! Figure 2: Datagen graphs generated with different target clustering
//! coefficients, with communities detected by the Louvain method.
//!
//! The paper renders two small graphs visually; we generate them for real
//! and report the measured statistics instead: average clustering
//! coefficient, Louvain community count and modularity. The finding to
//! reproduce: both graphs exhibit community structure, and the higher
//! cc-target yields the better-defined communities (higher modularity).

use graphalytics_core::algorithms::louvain;
use graphalytics_core::graph::GraphStats;
use graphalytics_datagen::DatagenConfig;
use graphalytics_harness::report::TextTable;

fn main() {
    graphalytics_bench::banner(
        "Figure 2: Datagen with tunable clustering coefficient",
        "Section 2.5.1, Figure 2",
    );
    let mut table = TextTable::new(
        "Datagen (1000 persons), Louvain community detection",
        &["target cc", "measured avg cc", "communities", "modularity", "components"],
    );
    for target in [0.05, 0.3] {
        let graph = DatagenConfig::with_persons(1000).with_target_cc(target).generate();
        let csr = graph.to_csr();
        let stats = GraphStats::compute(&csr);
        let communities = louvain(&csr);
        table.add_row(vec![
            format!("{target:.2}"),
            format!("{:.3}", stats.avg_clustering_coefficient),
            communities.community_count.to_string(),
            format!("{:.3}", communities.modularity),
            stats.components.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Finding check: the cc=0.3 graph should show higher modularity\n\
         (better-defined communities), as in the paper's right-hand panel."
    );
}
