//! Figure 6: algorithm variety on R4(S) and D300(L).

use graphalytics_harness::experiments::algorithm_variety;

fn main() {
    graphalytics_bench::banner("Figure 6: algorithm variety (Tproc)", "Section 4.2, Figure 6");
    let av = algorithm_variety::run(&graphalytics_bench::suite());
    println!("{}", av.render_fig6());
    println!("F = failed (out of memory / SLA); NA = not implemented (LCC on PGX.D).");
}
