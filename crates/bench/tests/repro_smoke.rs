//! Smoke tests guarding the reproduction binaries against bit-rot: the
//! same library code paths `repro_table2` and `repro_fig2` drive, at
//! tiny scale, asserted instead of printed.

use graphalytics_core::algorithms::louvain;
use graphalytics_core::datasets::all_datasets;
use graphalytics_core::graph::GraphStats;
use graphalytics_core::SizeClass;
use graphalytics_datagen::DatagenConfig;
use graphalytics_harness::report::TextTable;

/// `repro_table2` logic: the Table 2 scale-class ladder and the
/// Tables 3-4 dataset registry.
#[test]
fn table2_scale_classes_and_dataset_registry() {
    // Table 2 defines seven T-shirt classes in ascending scale order.
    assert_eq!(SizeClass::ALL.len(), 7);
    let labels: Vec<&str> = SizeClass::ALL.iter().map(|c| c.label()).collect();
    assert_eq!(labels, ["2XS", "XS", "S", "M", "L", "XL", "2XL"]);

    // Every registry dataset renders a well-formed row: positive sizes
    // and a scale consistent with its class.
    let datasets = all_datasets();
    assert!(!datasets.is_empty(), "dataset registry must not be empty");
    let mut table = TextTable::new(
        "Tables 3-4 (smoke)",
        &["ID", "name", "scale", "class"],
    );
    for d in &datasets {
        assert!(d.vertices > 0 && d.edges > 0, "{}: empty sizes", d.id);
        assert_eq!(
            d.class(),
            SizeClass::of_scale(d.scale()),
            "{}: class/scale mismatch",
            d.id
        );
        table.add_row(vec![
            d.id.to_string(),
            d.name.to_string(),
            format!("{:.1}", d.scale()),
            d.class().label().to_string(),
        ]);
    }
    let rendered = table.render();
    for d in &datasets {
        assert!(rendered.contains(d.name), "row for {} missing", d.id);
    }
}

/// `repro_fig2` logic: Datagen with a clustering-coefficient target,
/// communities detected by Louvain (paper Section 2.5.1, Figure 2).
#[test]
fn fig2_cc_tuning_and_louvain_at_tiny_scale() {
    let mut measured = Vec::new();
    for target in [0.05, 0.3] {
        let graph = DatagenConfig::with_persons(400).with_target_cc(target).generate();
        let csr = graph.to_csr();
        let stats = GraphStats::compute(&csr);
        let communities = louvain(&csr);
        assert!(communities.community_count >= 1);
        assert!(
            (-1.0..=1.0).contains(&communities.modularity),
            "modularity {} out of range",
            communities.modularity
        );
        assert!((0.0..=1.0).contains(&stats.avg_clustering_coefficient));
        measured.push(stats.avg_clustering_coefficient);
    }
    // The paper's Figure 2 finding: raising the cc target yields a more
    // clustered graph. Direction must hold even at tiny scale.
    assert!(
        measured[1] > measured[0],
        "cc target 0.3 should measure above target 0.05 ({measured:?})"
    );
}

/// The shared banner helper all 15 binaries call first.
#[test]
fn banner_prints_without_panicking() {
    graphalytics_bench::banner("smoke", "no section");
}
