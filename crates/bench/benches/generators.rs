//! Generator throughput benchmarks: Graph500 Kronecker sampling and both
//! Datagen execution flows (the Figure 3 / Section 4.8 machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use graphalytics_datagen::{DatagenConfig, FlowKind};
use graphalytics_graph500::Graph500Config;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("graph500-scale12", |b| {
        b.iter(|| black_box(Graph500Config::new(12).with_seed(1).generate()))
    });
    group.bench_function("datagen-2000-old-flow", |b| {
        b.iter(|| black_box(DatagenConfig::with_persons(2000).with_flow(FlowKind::Old).generate()))
    });
    group.bench_function("datagen-2000-new-flow", |b| {
        b.iter(|| black_box(DatagenConfig::with_persons(2000).with_flow(FlowKind::New).generate()))
    });
    group.bench_function("datagen-2000-cc-target", |b| {
        b.iter(|| black_box(DatagenConfig::with_persons(2000).with_target_cc(0.2).generate()))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
