//! Partitioner benchmarks: the edge-cut and vertex-cut assignments whose
//! measured cut fractions / replication factors feed the distributed cost
//! model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use graphalytics_cluster::partition::{edge_cut, vertex_cut, PartitionStrategy};
use graphalytics_graph500::Graph500Config;

fn bench_partitioning(c: &mut Criterion) {
    let csr = Graph500Config::new(12).with_seed(9).generate().to_csr();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("hash-edge-cut-16", |b| {
        b.iter(|| black_box(edge_cut(&csr, 16, PartitionStrategy::HashEdgeCut)))
    });
    group.bench_function("range-edge-cut-16", |b| {
        b.iter(|| black_box(edge_cut(&csr, 16, PartitionStrategy::RangeEdgeCut)))
    });
    group.bench_function("greedy-vertex-cut-16", |b| {
        b.iter(|| black_box(vertex_cut(&csr, 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
