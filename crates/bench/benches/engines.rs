//! Engine comparison benchmarks: the same algorithm through all six
//! programming models on the same graph. The *measured* ordering here is
//! what grounds the simulated Figure 4 ordering: the dataflow engine
//! churns shuffles, the Pregel engine churns messages, while the
//! native/SpMV engines stream arrays. Each engine uploads once outside
//! the timed body (the benchmark lifecycle), so the numbers are pure
//! processing time; a separate group times the upload phase itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Algorithm, Csr};
use graphalytics_engines::{all_platforms, RunContext};
use graphalytics_graph500::Graph500Config;

fn graph() -> Arc<Csr> {
    Arc::new(Graph500Config::new(11).with_seed(3).with_weights(true).generate().to_csr())
}

fn bench_engines(c: &mut Criterion) {
    let csr = graph();
    let params = AlgorithmParams::with_source(csr.id_of(0));
    let pool = WorkerPool::new(2);
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut group = c.benchmark_group(format!("engines/{algorithm}"));
        group.sample_size(10);
        for platform in all_platforms() {
            let loaded = platform.upload(csr.clone(), &pool).expect("upload");
            group.bench_with_input(
                BenchmarkId::from_parameter(platform.name()),
                &loaded,
                |b, loaded| {
                    b.iter(|| {
                        let mut ctx = RunContext::new(&pool);
                        black_box(
                            platform
                                .run(loaded.as_ref(), algorithm, &params, &mut ctx)
                                .expect("runs"),
                        )
                    })
                },
            );
            platform.delete(loaded);
        }
        group.finish();
    }

    let mut group = c.benchmark_group("engines/upload");
    group.sample_size(10);
    for platform in all_platforms() {
        group.bench_with_input(BenchmarkId::from_parameter(platform.name()), &csr, |b, csr| {
            b.iter(|| {
                let loaded = platform.upload(csr.clone(), &pool).expect("upload");
                platform.delete(black_box(loaded));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
