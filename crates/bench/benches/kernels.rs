//! Micro-benchmarks of the reference algorithm kernels on a Graph500
//! scale-12 instance (the real code paths behind validation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use graphalytics_core::algorithms;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::Csr;
use graphalytics_graph500::Graph500Config;

fn graph() -> Csr {
    Graph500Config::new(12).with_seed(7).with_weights(true).generate().to_csr()
}

/// The upload path: sequential CSR build vs the pool build (same output,
/// see the `csr_parallel_build` property test).
fn bench_csr_build(c: &mut Criterion) {
    let g = Graph500Config::new(13).with_seed(7).with_weights(true).generate();
    let mut group = c.benchmark_group("csr-build");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(g.try_to_csr().unwrap()))
    });
    for threads in [2u32, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_function(format!("pool-{threads}"), |b| {
            b.iter(|| black_box(g.to_csr_with(&pool).unwrap()))
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let csr = graph();
    let mut group = c.benchmark_group("reference-kernels");
    group.sample_size(10);
    group.bench_function("bfs", |b| b.iter(|| black_box(algorithms::bfs(&csr, 0))));
    group.bench_function("pagerank-10", |b| {
        b.iter(|| black_box(algorithms::pagerank(&csr, 10, 0.85)))
    });
    group.bench_function("wcc", |b| b.iter(|| black_box(algorithms::wcc(&csr))));
    group.bench_function("cdlp-5", |b| b.iter(|| black_box(algorithms::cdlp(&csr, 5))));
    group.bench_function("sssp", |b| b.iter(|| black_box(algorithms::sssp(&csr, 0))));
    group.finish();

    // LCC is quadratic in degree: bench on a smaller instance.
    let small = Graph500Config::new(10).with_seed(7).generate().to_csr();
    let mut group = c.benchmark_group("reference-kernels-heavy");
    group.sample_size(10);
    group.bench_function("lcc", |b| b.iter(|| black_box(algorithms::lcc(&small))));
    group.bench_function("louvain", |b| b.iter(|| black_box(algorithms::louvain(&small))));
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_csr_build);
criterion_main!(benches);
