//! The two-stage workload selection process (Section 2.2.2, Table 1).
//!
//! Stage one surveys graph-analysis literature to identify *classes* of
//! algorithms that are representative of real-world usage; stage two
//! selects concrete algorithms from the most common classes so the final
//! set is diverse. The survey data below is Table 1 of the paper verbatim:
//! a 124-article survey of unweighted-graph papers and a 44-article survey
//! of weighted-graph papers across ten venues (VLDB, SIGMOD, SC, PPoPP,
//! ...).

use graphalytics_core::Algorithm;

/// Which survey an algorithm class belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurveyKind {
    /// First survey: unweighted graphs (124 articles).
    Unweighted,
    /// Second survey: weighted graphs (44 articles).
    Weighted,
}

/// One class row of Table 1.
#[derive(Debug, Clone)]
pub struct AlgorithmClass {
    pub survey: SurveyKind,
    pub name: &'static str,
    /// Algorithms Graphalytics selected from this class (may be empty).
    pub selected: &'static [Algorithm],
    /// Number of algorithm occurrences in the survey.
    pub count: u32,
    /// Share of the survey, percent (as printed in Table 1).
    pub percent: f64,
}

/// Table 1, verbatim.
pub const SURVEY: &[AlgorithmClass] = &[
    AlgorithmClass {
        survey: SurveyKind::Unweighted,
        name: "Statistics",
        selected: &[Algorithm::PageRank, Algorithm::Lcc],
        count: 24,
        percent: 17.0,
    },
    AlgorithmClass {
        survey: SurveyKind::Unweighted,
        name: "Traversal",
        selected: &[Algorithm::Bfs],
        count: 69,
        percent: 48.9,
    },
    AlgorithmClass {
        survey: SurveyKind::Unweighted,
        name: "Components",
        selected: &[Algorithm::Wcc, Algorithm::Cdlp],
        count: 20,
        percent: 14.2,
    },
    AlgorithmClass {
        survey: SurveyKind::Unweighted,
        name: "Graph Evolution",
        selected: &[],
        count: 6,
        percent: 4.2,
    },
    AlgorithmClass {
        survey: SurveyKind::Unweighted,
        name: "Other",
        selected: &[],
        count: 22,
        percent: 15.6,
    },
    AlgorithmClass {
        survey: SurveyKind::Weighted,
        name: "Distances/Paths",
        selected: &[Algorithm::Sssp],
        count: 17,
        percent: 34.0,
    },
    AlgorithmClass {
        survey: SurveyKind::Weighted,
        name: "Clustering",
        selected: &[],
        count: 7,
        percent: 14.0,
    },
    AlgorithmClass {
        survey: SurveyKind::Weighted,
        name: "Partitioning",
        selected: &[],
        count: 5,
        percent: 10.0,
    },
    AlgorithmClass {
        survey: SurveyKind::Weighted,
        name: "Routing",
        selected: &[],
        count: 5,
        percent: 10.0,
    },
    AlgorithmClass {
        survey: SurveyKind::Weighted,
        name: "Other",
        selected: &[],
        count: 16,
        percent: 32.0,
    },
];

/// Stage two: algorithms selected from the most common classes. Classes
/// are considered in descending frequency within each survey; classes
/// with expert-selected candidates contribute them.
pub fn selected_workload() -> Vec<Algorithm> {
    let mut by_share: Vec<&AlgorithmClass> = SURVEY.iter().collect();
    by_share.sort_by(|a, b| b.percent.total_cmp(&a.percent));
    let mut out = Vec::new();
    for class in by_share {
        for &alg in class.selected {
            if !out.contains(&alg) {
                out.push(alg);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_totals_match_table1() {
        let unweighted: u32 =
            SURVEY.iter().filter(|c| c.survey == SurveyKind::Unweighted).map(|c| c.count).sum();
        let weighted: u32 =
            SURVEY.iter().filter(|c| c.survey == SurveyKind::Weighted).map(|c| c.count).sum();
        assert_eq!(unweighted, 141, "unweighted algorithm occurrences");
        assert_eq!(weighted, 50, "weighted algorithm occurrences");
        // Percentages within each survey approximately total 100.
        let pct: f64 =
            SURVEY.iter().filter(|c| c.survey == SurveyKind::Unweighted).map(|c| c.percent).sum();
        assert!((pct - 100.0).abs() < 0.5, "unweighted percent sum {pct}");
    }

    #[test]
    fn selection_yields_the_six_core_algorithms() {
        let selected = selected_workload();
        assert_eq!(selected.len(), 6);
        for alg in Algorithm::ALL {
            assert!(selected.contains(&alg), "{alg} missing from selection");
        }
        // Traversal is the most common class, so BFS comes first.
        assert_eq!(selected[0], Algorithm::Bfs);
    }
}
