//! Proxy graph materialization.
//!
//! The real-world datasets of Table 3 cannot be redistributed and the
//! paper-scale synthetic graphs do not fit a laptop, so measured runs use
//! *structure-matched proxies*: each registry dataset carries a
//! [`graphalytics_core::datasets::ProxyRecipe`] and this
//! module turns it into a concrete [`Graph`] at `published size /
//! scale_divisor`, preserving directedness, weightedness and
//! degree-distribution family (see DESIGN.md, substitution table).

use graphalytics_core::datasets::{DatasetSpec, ProxyRecipe};
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::Graph;
use graphalytics_datagen::DatagenConfig;
use graphalytics_graph500::{Graph500Config, RmatConfig};

/// Materializes a proxy instance of `spec` scaled down by `divisor`
/// (1 = the published size — only sensible for the smallest datasets).
pub fn materialize(spec: &DatasetSpec, divisor: u64, seed: u64) -> Graph {
    materialize_with(spec, divisor, seed, &WorkerPool::inline())
}

/// Materializes a proxy instance with the generator's edge-list
/// finalization running on `pool` (the [`Runner`](crate::runner::Runner)
/// and the service graph store pass their shared execution runtime).
/// Output is identical to [`materialize`] for every pool width.
pub fn materialize_with(spec: &DatasetSpec, divisor: u64, seed: u64, pool: &WorkerPool) -> Graph {
    let divisor = divisor.max(1);
    let target_vertices = (spec.vertices / divisor).max(64);
    let target_edges = (spec.edges / divisor).max(128);
    match spec.recipe {
        ProxyRecipe::Graph500 { scale, edge_factor } => {
            // Halving per power of two of the divisor.
            let shrink = (divisor.max(1) as f64).log2().round() as u32;
            let scale = scale.saturating_sub(shrink).max(6);
            Graph500Config::new(scale)
                .with_edge_factor(edge_factor)
                .with_seed(seed)
                .with_weights(spec.weighted)
                .generate_with(pool)
        }
        ProxyRecipe::Rmat { a, b, c } => {
            let scale = (target_vertices as f64).log2().ceil().max(6.0) as u32;
            // Edge factor relative to the *initial* 2^scale vertices so the
            // generated |E| tracks the scaled-down target.
            let edge_factor =
                ((target_edges as f64 / (1u64 << scale) as f64).round() as u32).max(1);
            RmatConfig {
                scale,
                edge_factor,
                a,
                b,
                c,
                seed,
                directed: spec.directed,
                weighted: spec.weighted,
                keep_isolated: false,
            }
            .generate_with(pool)
        }
        ProxyRecipe::Datagen { target_cc } => {
            let mut cfg = DatagenConfig::with_persons(target_vertices).with_seed(seed);
            cfg.weighted = spec.weighted;
            if let Some(cc) = target_cc {
                cfg = cfg.with_target_cc(cc);
            }
            cfg.generate_with(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;

    #[test]
    fn graph500_proxy_scales_down() {
        let spec = dataset("G22").unwrap();
        let g = materialize(spec, 4096, 1);
        assert!(!g.is_directed());
        assert!(!g.is_weighted());
        // scale 22 - 12 = 10 → ≤ 1024 vertices.
        assert!(g.vertex_count() <= 1024);
        assert!(g.edge_count() > 1000, "edge factor preserved");
        g.validate().unwrap();
    }

    #[test]
    fn rmat_proxy_matches_shape() {
        let spec = dataset("R1").unwrap(); // directed knowledge graph
        let g = materialize(spec, 1000, 2);
        assert!(g.is_directed());
        assert!(!g.is_weighted());
        let ratio = g.edge_count() as f64 / g.vertex_count() as f64;
        let paper_ratio = spec.mean_degree();
        assert!(
            ratio > paper_ratio * 0.3 && ratio < paper_ratio * 3.5,
            "density {ratio:.2} vs paper {paper_ratio:.2}"
        );
    }

    #[test]
    fn weighted_proxy_for_sssp_datasets() {
        let spec = dataset("R4").unwrap();
        let g = materialize(spec, 2000, 3);
        assert!(g.is_weighted());
        assert!(g.edges().iter().all(|e| e.weight >= 0.0));
    }

    #[test]
    fn datagen_proxy_has_requested_cc_variant() {
        let spec = dataset("D100'").unwrap(); // cc target 0.05
        let g = materialize(spec, 4000, 4);
        assert!(!g.is_directed());
        assert!(g.vertex_count() >= 64);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = dataset("G23").unwrap();
        let a = materialize(spec, 8192, 9);
        let b = materialize(spec, 8192, 9);
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn pool_materialization_matches_sequential() {
        // Every recipe family: the pooled edge-list finalization must
        // not change the graph.
        let pool = WorkerPool::new(3);
        for id in ["G22", "R1", "D100'"] {
            let spec = dataset(id).unwrap();
            let seq = materialize(spec, 8192, 11);
            let par = materialize_with(spec, 8192, 11, &pool);
            assert_eq!(seq.vertices(), par.vertices(), "{id}");
            assert_eq!(seq.edges(), par.edges(), "{id}");
        }
    }
}
