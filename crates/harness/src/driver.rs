//! The driver: running one benchmark job against a platform.
//!
//! A job is platform × dataset × algorithm × cluster configuration. The
//! driver performs what Figure 1's platform driver + harness services do:
//! admission (does the platform support the algorithm? does the working
//! set fit in memory?), execution (real, on a materialized graph) or
//! analytic counter estimation (paper-scale datasets), conversion of
//! counters to simulated time through the engine profile, SLA evaluation,
//! output validation against the reference implementation, and Granula
//! archiving.

use std::sync::Arc;

use graphalytics_cluster::cost::{noise_factor, processing_time};
use graphalytics_cluster::memory::MemoryOutcome;
use graphalytics_cluster::partition::{estimate_replication, PartitionStrategy};
use graphalytics_cluster::{ClusterSpec, NetworkSpec, WorkCounters};
use graphalytics_core::datasets::DatasetSpec;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Algorithm, Csr};
use graphalytics_engines::profile::NetworkKind;
use graphalytics_engines::Platform;
use graphalytics_granula::{Archiver, PerformanceArchive};

use crate::description::JobDescription;
use crate::SLA_MAKESPAN_SECS;

/// How the job obtains its work counters.
pub enum RunMode<'a> {
    /// Execute for real on a materialized graph (usually a scaled-down
    /// proxy); counters are measured, output is validated.
    Measured { csr: &'a Csr },
    /// Estimate counters analytically at the dataset's published size.
    Analytic,
}

/// One benchmark job request. Dataset specs come from the static
/// registry in `graphalytics_core::datasets`.
pub struct JobSpec {
    pub dataset: &'static DatasetSpec,
    pub algorithm: Algorithm,
    pub cluster: ClusterSpec,
    /// Repetition index (drives the deterministic noise stream).
    pub run_index: u64,
}

/// Job outcome classification. Everything except `Completed` breaks the
/// SLA or produces no result at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    Completed,
    /// The platform does not implement the algorithm (rendered `NA`).
    Unsupported,
    /// Crash from memory exhaustion (rendered `F`).
    OutOfMemory,
    /// Makespan exceeded the one-hour SLA (rendered `F`).
    SlaViolation,
    /// Output did not match the reference implementation.
    ValidationFailed(String),
}

impl JobStatus {
    /// True when the job produced a valid, in-SLA result.
    pub fn is_success(&self) -> bool {
        *self == JobStatus::Completed
    }

    /// The paper's figure annotation: `F` for failures, `NA` for
    /// unimplemented algorithms.
    pub fn figure_mark(&self) -> &'static str {
        match self {
            JobStatus::Completed => "",
            JobStatus::Unsupported => "NA",
            JobStatus::OutOfMemory | JobStatus::SlaViolation | JobStatus::ValidationFailed(_) => {
                "F"
            }
        }
    }
}

/// The result of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub platform: String,
    pub paper_analog: String,
    pub dataset: String,
    pub algorithm: Algorithm,
    pub machines: u32,
    pub threads: u32,
    pub status: JobStatus,
    /// Graph size the timing refers to (published for analytic runs,
    /// actual proxy size for measured runs).
    pub vertices: u64,
    pub edges: u64,
    /// Simulated seconds: upload (startup + load), processing, makespan.
    pub upload_secs: f64,
    pub processing_secs: f64,
    pub makespan_secs: f64,
    /// Wall-clock of the real execution (measured mode only).
    pub measured_wall_secs: Option<f64>,
    pub counters: WorkCounters,
    pub archive: Option<PerformanceArchive>,
}

impl JobResult {
    /// Edges per second (paper metric).
    pub fn eps(&self) -> f64 {
        crate::metrics::eps(self.edges, self.processing_secs)
    }

    /// Edges and vertices per second (paper metric).
    pub fn evps(&self) -> f64 {
        crate::metrics::evps(self.vertices, self.edges, self.processing_secs)
    }
}

/// The job driver.
pub struct Driver {
    /// Validate measured outputs against the reference implementation.
    pub validate: bool,
    /// Apply the deterministic variability noise to simulated times.
    pub noise: bool,
    /// Base seed for the noise stream.
    pub seed: u64,
    /// The execution runtime measured runs execute on. Owned by whoever
    /// owns the driver (one per benchmark run in the [`Runner`],
    /// one per daemon in the service); the default is the process-wide
    /// shared pool, so ad-hoc drivers never spawn private thread sets.
    ///
    /// [`Runner`]: crate::runner::Runner
    pub pool: Arc<WorkerPool>,
}

impl Default for Driver {
    fn default() -> Self {
        Driver { validate: true, noise: true, seed: 0xB5ED, pool: WorkerPool::shared() }
    }
}

impl Driver {
    /// Runs one job.
    pub fn run(&self, platform: &dyn Platform, spec: &JobSpec, mode: RunMode<'_>) -> JobResult {
        let profile = platform.profile().clone();
        let mut cluster = spec.cluster;
        cluster.network = match profile.network {
            NetworkKind::Ethernet1G => NetworkSpec::ethernet_1g(),
            NetworkKind::InfinibandFdr => NetworkSpec::infiniband_fdr(),
        };
        let job_name = format!("{}@{}", spec.algorithm, spec.dataset.id);
        let desc = JobDescription { dataset: spec.dataset, algorithm: spec.algorithm };

        let mut result = JobResult {
            platform: platform.name().to_string(),
            paper_analog: profile.paper_analog.to_string(),
            dataset: spec.dataset.id.to_string(),
            algorithm: spec.algorithm,
            machines: cluster.machines,
            threads: cluster.threads_per_machine,
            status: JobStatus::Completed,
            vertices: spec.dataset.vertices,
            edges: spec.dataset.edges,
            upload_secs: 0.0,
            processing_secs: 0.0,
            makespan_secs: 0.0,
            measured_wall_secs: None,
            counters: WorkCounters::new(),
            archive: None,
        };

        // Admission: algorithm support and deployment mode.
        if !platform.supports(spec.algorithm)
            || (cluster.is_distributed() && !profile.supports_distributed)
        {
            result.status = JobStatus::Unsupported;
            return result;
        }

        // Size the working set (published size for analytic mode, actual
        // proxy size for measured mode).
        let (v, e, directed) = match &mode {
            RunMode::Analytic => (spec.dataset.vertices, spec.dataset.edges, spec.dataset.directed),
            RunMode::Measured { csr } => {
                (csr.num_vertices() as u64, csr.num_edges() as u64, csr.is_directed())
            }
        };
        result.vertices = v;
        result.edges = e;
        let traits_ = spec.dataset.traits_;
        let arcs = if directed { e } else { 2 * e };
        let mean_degree = arcs as f64 / v.max(1) as f64;
        let sum_deg2 =
            graphalytics_engines::estimate::estimate_sum_deg2(v, arcs as f64, traits_.degree_skew);

        // Partitioning characteristics drive replication and cut fraction.
        let m = cluster.machines;
        let replication = if m > 1 && profile.partition == PartitionStrategy::GreedyVertexCut {
            estimate_replication(m, mean_degree, traits_.degree_skew)
        } else {
            1.0
        };
        let cut_fraction = if m <= 1 {
            0.0
        } else {
            match profile.partition {
                PartitionStrategy::HashEdgeCut => 1.0 - 1.0 / m as f64,
                PartitionStrategy::RangeEdgeCut => 0.9 * (1.0 - 1.0 / m as f64),
                PartitionStrategy::GreedyVertexCut => 1.0 - 1.0 / replication.max(1.0),
            }
        };

        // Memory admission (the stress-test mechanism).
        let footprint = profile.memory.footprint_per_machine(v, e, traits_.degree_skew, m, replication)
            + (profile.peak_extra_bytes(spec.algorithm, arcs, sum_deg2) / m as f64) as u64;
        let swap_slowdown = match profile.memory.check(footprint, cluster.machine.memory_bytes) {
            MemoryOutcome::Fits { .. } => 1.0,
            MemoryOutcome::Swapping { slowdown, .. } => slowdown,
            MemoryOutcome::OutOfMemory { .. } => {
                result.status = JobStatus::OutOfMemory;
                return result;
            }
        };

        // Obtain counters: estimate or real execution.
        let mut archiver = Archiver::new(platform.name(), &job_name);
        let counters = match mode {
            RunMode::Analytic => platform.estimate(
                v,
                e,
                &traits_,
                directed,
                spec.algorithm,
                &desc.params_analytic(),
            ),
            RunMode::Measured { csr } => {
                let params = desc.params_for(csr);
                archiver.begin("ExecuteReal");
                // Real execution runs on the shared pool; the simulated
                // cluster's threads_per_machine only feeds the cost model
                // (outputs are bit-identical across pool widths anyway).
                match platform.execute(csr, spec.algorithm, &params, &self.pool) {
                    Ok(exec) => {
                        archiver.end();
                        result.measured_wall_secs = Some(exec.wall_seconds);
                        if self.validate {
                            let reference = graphalytics_core::algorithms::run_reference(
                                csr,
                                spec.algorithm,
                                &params,
                            )
                            .expect("reference implementation runs");
                            match graphalytics_core::validation::validate(&reference, &exec.output)
                            {
                                Ok(report) if report.is_valid() => {}
                                Ok(report) => {
                                    result.status = JobStatus::ValidationFailed(format!(
                                        "{} mismatches",
                                        report.mismatches
                                    ));
                                    return result;
                                }
                                Err(e) => {
                                    result.status = JobStatus::ValidationFailed(e.to_string());
                                    return result;
                                }
                            }
                        }
                        exec.counters
                    }
                    Err(e) => {
                        archiver.end();
                        result.status = JobStatus::ValidationFailed(e.to_string());
                        return result;
                    }
                }
            }
        };
        result.counters = counters;

        // Counters → simulated time through the shared cost model.
        let breakdown = processing_time(&profile.cost, &counters, &cluster, cut_fraction);
        let cv = if m > 1 { profile.cv_distributed } else { profile.cv_single };
        let noise = if self.noise {
            noise_factor(cv, self.seed ^ job_seed(&result), spec.run_index)
        } else {
            1.0
        };
        let tproc = breakdown.total() * swap_slowdown * noise;
        let upload = profile.startup_secs + profile.load_secs_per_edge * e as f64 / m as f64;
        let offload = v as f64 * 5.0e-9;
        result.upload_secs = upload;
        result.processing_secs = tproc;
        result.makespan_secs = upload + tproc + offload;

        archiver.record_simulated("Startup", profile.startup_secs, &[]);
        archiver.record_simulated(
            "LoadGraph",
            upload - profile.startup_secs,
            &[("edges", &e.to_string())],
        );
        archiver.record_simulated(
            "ProcessGraph",
            tproc,
            &[
                ("supersteps", &counters.supersteps.to_string()),
                ("messages", &counters.messages.to_string()),
                ("compute_secs", &format!("{:.3e}", breakdown.compute_secs)),
                ("network_secs", &format!("{:.3e}", breakdown.network_secs)),
                ("barrier_secs", &format!("{:.3e}", breakdown.barrier_secs)),
            ],
        );
        archiver.record_simulated("Offload", offload, &[]);
        result.archive = Some(archiver.finish());

        if result.makespan_secs > SLA_MAKESPAN_SECS {
            result.status = JobStatus::SlaViolation;
        }
        result
    }
}

/// Stable per-job seed component so noise streams differ across jobs but
/// are reproducible.
fn job_seed(r: &JobResult) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in r
        .platform
        .bytes()
        .chain(r.dataset.bytes())
        .chain(r.algorithm.acronym().bytes())
        .chain([r.machines as u8, r.threads as u8])
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;
    use graphalytics_engines::platform_by_name;

    fn spec(ds: &'static str, alg: Algorithm, machines: u32) -> JobSpec {
        JobSpec {
            dataset: dataset(ds).unwrap(),
            algorithm: alg,
            cluster: if machines <= 1 {
                ClusterSpec::single_machine()
            } else {
                ClusterSpec::das5(machines)
            },
            run_index: 0,
        }
    }

    #[test]
    fn analytic_run_produces_times() {
        let platform = platform_by_name("spmv").unwrap();
        let driver = Driver { noise: false, ..Driver::default() };
        let r = driver.run(platform.as_ref(), &spec("D300", Algorithm::Bfs, 1), RunMode::Analytic);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(r.processing_secs > 0.0);
        assert!(r.makespan_secs > r.processing_secs);
        assert!(r.eps() > 0.0);
        assert!(r.archive.is_some());
    }

    #[test]
    fn measured_run_validates_output() {
        let platform = platform_by_name("native").unwrap();
        let ds = dataset("G22").unwrap();
        let graph = crate::proxy::materialize(ds, 1 << 14, 5);
        let csr = graph.to_csr();
        let driver = Driver::default();
        let r = driver.run(
            platform.as_ref(),
            &spec("G22", Algorithm::Bfs, 1),
            RunMode::Measured { csr: &csr },
        );
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(r.measured_wall_secs.is_some());
        assert!(r.counters.edges_scanned > 0);
        assert_eq!(r.vertices, csr.num_vertices() as u64);
    }

    #[test]
    fn lcc_on_pushpull_is_unsupported() {
        let platform = platform_by_name("pushpull").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("R4", Algorithm::Lcc, 1), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::Unsupported);
        assert_eq!(r.status.figure_mark(), "NA");
    }

    #[test]
    fn native_is_single_node_only() {
        let platform = platform_by_name("native").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("D300", Algorithm::Bfs, 4), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::Unsupported);
    }

    #[test]
    fn oversized_dataset_goes_oom() {
        // R5 (1.81B edges) cannot fit PowerGraph on one machine (Table 10).
        let platform = platform_by_name("gas").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("R5", Algorithm::Bfs, 1), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::OutOfMemory);
        assert_eq!(r.status.figure_mark(), "F");
    }

    #[test]
    fn noise_is_reproducible() {
        let platform = platform_by_name("pregel").unwrap();
        let driver = Driver::default();
        let a =
            driver.run(platform.as_ref(), &spec("G22", Algorithm::Bfs, 1), RunMode::Analytic);
        let b =
            driver.run(platform.as_ref(), &spec("G22", Algorithm::Bfs, 1), RunMode::Analytic);
        assert_eq!(a.processing_secs, b.processing_secs);
        let c = driver.run(
            platform.as_ref(),
            &JobSpec { run_index: 1, ..spec("G22", Algorithm::Bfs, 1) },
            RunMode::Analytic,
        );
        assert_ne!(a.processing_secs, c.processing_secs);
    }
}
