//! The driver: running one benchmark job against a platform.
//!
//! A job is platform × dataset × algorithm × cluster configuration. The
//! driver performs what Figure 1's platform driver + harness services do,
//! phased exactly like the benchmark process of §3:
//!
//! 1. **admission** — does the platform support the algorithm? does the
//!    working set fit in memory?
//! 2. **upload** — hand the graph to the engine once
//!    ([`Platform::upload`]); the measured wall time of this phase is
//!    reported separately from processing time.
//! 3. **execute × N** — run the algorithm [`JobSpec::repetitions`] times
//!    on the uploaded representation; only these executions contribute to
//!    `T_proc` (and therefore EPS/EVPS). Each repetition draws its own
//!    deterministic noise sample (keyed by `run_index + repetition`).
//! 4. **validate** — outputs are checked against the reference
//!    implementation (a reference-side failure is a
//!    [`JobStatus::ValidationFailed`], never a panic).
//! 5. **delete** — release the engine-owned representation.
//!
//! Analytic jobs (paper-scale datasets) skip upload/delete and estimate
//! counters instead, but still produce one [`RunMeasurement`] per
//! repetition so mean/min/max and CV work identically in both modes.

use std::sync::Arc;
use std::time::Instant;

use graphalytics_cluster::cost::{noise_factor, processing_time};
use graphalytics_cluster::memory::MemoryOutcome;
use graphalytics_cluster::partition::{estimate_replication, PartitionStrategy};
use graphalytics_cluster::{ClusterSpec, NetworkSpec, WorkCounters};
use graphalytics_core::datasets::DatasetSpec;
use graphalytics_core::fault::{self, CancelToken, FaultScript, FaultSite};
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{random_batch, Algorithm, Csr, DeltaConfig, MutableGraph, MutationBatch};
use graphalytics_engines::profile::NetworkKind;
use graphalytics_engines::{LoadedGraph, PhaseRecord, Platform, RunContext, SpanRecord};
use graphalytics_granula::monitor::ResourceSample;
use graphalytics_granula::{Archiver, MonitorConfig, OperationRecord, PerformanceArchive, Sampler};

use crate::description::JobDescription;
use crate::SLA_MAKESPAN_SECS;

/// How the job obtains its work counters.
pub enum RunMode<'a> {
    /// Execute for real on a materialized graph (usually a scaled-down
    /// proxy): upload once, execute `repetitions` times, validate, delete.
    Measured { csr: &'a Arc<Csr> },
    /// Estimate counters analytically at the dataset's published size.
    Analytic,
}

/// One benchmark job request. Dataset specs come from the static
/// registry in `graphalytics_core::datasets`.
pub struct JobSpec {
    pub dataset: &'static DatasetSpec,
    pub algorithm: Algorithm,
    pub cluster: ClusterSpec,
    /// Base repetition index (drives the deterministic noise stream);
    /// repetition `k` of this job uses `run_index + k`.
    pub run_index: u64,
    /// How many times the execute phase repeats on the uploaded graph
    /// (`benchmark.repetitions`; clamped to at least 1).
    pub repetitions: u32,
    /// Execution shards for measured runs (`benchmark.shards`; clamped to
    /// at least 1). Values above 1 route the upload through
    /// [`Platform::upload_sharded`] and are rejected as `Unsupported` on
    /// platforms without a sharded run path.
    pub shards: u32,
    /// Optional mutation script (measured mode only): the driver replays
    /// these deterministic batches against the resident upload through
    /// [`Platform::apply_mutations`] before the execute phase, and
    /// validates outputs against a reference computed on the materialized
    /// post-mutation graph. Rejected as `Unsupported` on platforms
    /// without a mutation path.
    pub mutations: Option<MutationScript>,
    /// Optional wall-clock deadline for the whole job. The driver arms
    /// it on its [`CancelToken`](graphalytics_core::fault::CancelToken)
    /// before the first phase; the first checkpoint past the deadline
    /// aborts the run with [`JobStatus::TimedOut`].
    pub timeout_secs: Option<f64>,
}

impl JobSpec {
    /// A single-repetition, single-shard spec starting at noise index 0.
    pub fn new(dataset: &'static DatasetSpec, algorithm: Algorithm, cluster: ClusterSpec) -> Self {
        JobSpec {
            dataset,
            algorithm,
            cluster,
            run_index: 0,
            repetitions: 1,
            shards: 1,
            mutations: None,
            timeout_secs: None,
        }
    }

    /// Builder-style repetition count.
    pub fn with_repetitions(mut self, repetitions: u32) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Builder-style shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style mutation script.
    pub fn with_mutations(mut self, script: MutationScript) -> Self {
        self.mutations = Some(script);
        self
    }

    /// Builder-style job deadline.
    pub fn with_timeout_secs(mut self, timeout_secs: f64) -> Self {
        self.timeout_secs = Some(timeout_secs);
        self
    }
}

/// A deterministic stream of mutation batches a measured job replays
/// against the resident upload before executing. The batches derive
/// entirely from (base graph, script), so the same spec replays
/// identically across pool widths and sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationScript {
    /// How many batches to generate and apply, in order.
    pub batches: u32,
    /// Edge insertions per batch.
    pub insertions: usize,
    /// Edge deletions per batch.
    pub deletions: usize,
    /// Seed of the batch stream; batch `i` draws its own sub-seed.
    pub seed: u64,
}

impl MutationScript {
    pub fn new(batches: u32, insertions: usize, deletions: usize, seed: u64) -> Self {
        MutationScript { batches, insertions, deletions, seed }
    }

    /// The concrete batches for a base graph, in application order.
    /// Every batch draws against the *base* CSR; overlaps across batches
    /// resolve through the delta log's set semantics (re-insert becomes a
    /// weight refresh, re-delete a no-op), so the stream stays valid for
    /// any batch count.
    pub fn batches_for(&self, csr: &Csr) -> Vec<MutationBatch> {
        (0..self.batches as u64)
            .map(|i| {
                let seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
                random_batch(csr, self.insertions, self.deletions, seed)
            })
            .collect()
    }
}

/// Aggregate outcome of a job's mutation replay, reported on the
/// [`JobResult`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MutationSummary {
    /// Batches applied.
    pub batches: u32,
    /// Edges inserted / deleted / weight-updated across all batches.
    pub inserted: u64,
    pub deleted: u64,
    pub updated: u64,
    /// Delta-log compactions triggered while applying.
    pub compactions: u64,
    /// Total measured wall seconds of the apply phase (all batches).
    pub apply_secs: f64,
    /// Delta-log arcs and fill ratio left after the final batch.
    pub delta_arcs: u64,
    pub fill_ratio: f64,
}

/// Job outcome classification. Everything except `Completed` breaks the
/// SLA or produces no result at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    Completed,
    /// The platform does not implement the algorithm (rendered `NA`).
    Unsupported,
    /// Crash from memory exhaustion (rendered `F`).
    OutOfMemory,
    /// Makespan exceeded the one-hour SLA (rendered `F`).
    SlaViolation,
    /// Output did not match the reference implementation — or the
    /// reference/engine itself failed, in which case the benchmark run
    /// records the failure instead of dying.
    ValidationFailed(String),
    /// The run observed cooperative cancellation at a checkpoint and
    /// aborted cleanly (rendered `F`).
    Cancelled,
    /// The run's armed deadline passed before completion (rendered `F`).
    TimedOut,
    /// The fault plane injected a fault that terminated the run. The
    /// service retries `transient` faults with bounded backoff; permanent
    /// ones are terminal.
    Faulted { transient: bool, message: String },
}

impl JobStatus {
    /// True when the job produced a valid, in-SLA result.
    pub fn is_success(&self) -> bool {
        *self == JobStatus::Completed
    }

    /// True for injected-transient faults — the only status the service
    /// retries.
    pub fn is_transient_fault(&self) -> bool {
        matches!(self, JobStatus::Faulted { transient: true, .. })
    }

    /// The paper's figure annotation: `F` for failures, `NA` for
    /// unimplemented algorithms.
    pub fn figure_mark(&self) -> &'static str {
        match self {
            JobStatus::Completed => "",
            JobStatus::Unsupported => "NA",
            JobStatus::OutOfMemory
            | JobStatus::SlaViolation
            | JobStatus::ValidationFailed(_)
            | JobStatus::Cancelled
            | JobStatus::TimedOut
            | JobStatus::Faulted { .. } => "F",
        }
    }

    /// Structured status for a phase-level error: cancellation, deadline,
    /// and injected faults keep their identity; anything else degrades to
    /// the legacy classification.
    pub fn from_error(e: &graphalytics_core::Error) -> JobStatus {
        use graphalytics_core::Error;
        match e {
            Error::Cancelled => JobStatus::Cancelled,
            Error::DeadlineExceeded { .. } => JobStatus::TimedOut,
            Error::Injected { transient, .. } => {
                JobStatus::Faulted { transient: *transient, message: e.to_string() }
            }
            Error::OutOfMemory { .. } => JobStatus::OutOfMemory,
            Error::Unsupported { .. } => JobStatus::Unsupported,
            other => JobStatus::ValidationFailed(other.to_string()),
        }
    }
}

/// One repetition of the execute phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeasurement {
    /// The repetition's noise-stream index (`spec.run_index + k`).
    pub run_index: u64,
    /// Simulated processing seconds (`T_proc`) for this repetition.
    pub processing_secs: f64,
    /// Simulated makespan for this repetition (upload + `T_proc` +
    /// offload).
    pub makespan_secs: f64,
    /// Wall-clock of the real execution (measured mode only).
    pub measured_wall_secs: Option<f64>,
}

/// The result of one job (all repetitions aggregated; per-repetition
/// detail in [`JobResult::runs`]).
#[derive(Debug, Clone)]
pub struct JobResult {
    pub platform: String,
    pub paper_analog: String,
    pub dataset: String,
    pub algorithm: Algorithm,
    pub machines: u32,
    pub threads: u32,
    /// Execution shards the job ran with (1 = monolithic).
    pub shards: u32,
    /// Fraction of arcs crossing shard boundaries (sharded measured runs
    /// only).
    pub cut_fraction: Option<f64>,
    pub status: JobStatus,
    /// Graph size the timing refers to (published for analytic runs,
    /// actual proxy size for measured runs).
    pub vertices: u64,
    pub edges: u64,
    /// Simulated upload seconds (startup + load).
    pub upload_secs: f64,
    /// Mean simulated processing seconds over all repetitions. EPS/EVPS
    /// derive from this — processing time only, never upload (§2.3).
    pub processing_secs: f64,
    /// Fastest / slowest repetition (simulated `T_proc`).
    pub processing_min_secs: f64,
    pub processing_max_secs: f64,
    /// Simulated makespan: upload + mean processing + offload.
    pub makespan_secs: f64,
    /// Mean wall-clock of the real executions (measured mode only).
    pub measured_wall_secs: Option<f64>,
    /// Measured wall-clock of the real upload phase (measured mode only):
    /// the engine building its preprocessed representation, once.
    pub measured_upload_secs: Option<f64>,
    /// Per-repetition measurements, in repetition order.
    pub runs: Vec<RunMeasurement>,
    pub counters: WorkCounters,
    pub archive: Option<PerformanceArchive>,
    /// Mutation-replay outcome (jobs with a [`MutationScript`] only).
    pub mutation: Option<MutationSummary>,
}

impl JobResult {
    /// Edges per second (paper metric, from mean `T_proc`).
    pub fn eps(&self) -> f64 {
        crate::metrics::eps(self.edges, self.processing_secs)
    }

    /// Edges and vertices per second (paper metric, from mean `T_proc`).
    pub fn evps(&self) -> f64 {
        crate::metrics::evps(self.vertices, self.edges, self.processing_secs)
    }

    /// Upload-phase throughput (edges per measured upload second);
    /// measured mode only. Reported separately from EPS/EVPS so load and
    /// process costs are never conflated.
    pub fn measured_upload_eps(&self) -> Option<f64> {
        self.measured_upload_secs.map(|s| crate::metrics::eps(self.edges, s))
    }

    /// Number of executed repetitions.
    pub fn repetitions(&self) -> u32 {
        self.runs.len() as u32
    }

    /// Coefficient of variation of the simulated per-repetition
    /// processing times (the Table 11 metric).
    pub fn processing_cv(&self) -> f64 {
        let samples: Vec<f64> = self.runs.iter().map(|r| r.processing_secs).collect();
        crate::metrics::coefficient_of_variation(&samples)
    }
}

/// The job driver.
pub struct Driver {
    /// Validate measured outputs against the reference implementation.
    pub validate: bool,
    /// Apply the deterministic variability noise to simulated times.
    pub noise: bool,
    /// Base seed for the noise stream.
    pub seed: u64,
    /// The execution runtime measured runs execute on. Owned by whoever
    /// owns the driver (one per benchmark run in the [`Runner`],
    /// one per daemon in the service); the default is the process-wide
    /// shared pool, so ad-hoc drivers never spawn private thread sets.
    ///
    /// [`Runner`]: crate::runner::Runner
    pub pool: Arc<WorkerPool>,
    /// Granula-monitor gate: when enabled (the default), measured runs
    /// trace per-superstep spans into the archive and a background
    /// sampler attaches resource samples ([`MonitorConfig::disabled`]
    /// restores the pre-monitor behaviour). Strictly data-plane passive:
    /// outputs are bit-identical either way.
    pub monitor: MonitorConfig,
    /// Cooperative cancellation handle for jobs this driver runs. The
    /// owner (e.g. the service's `DELETE /jobs/:id`) cancels it; running
    /// kernels observe it at the next superstep boundary. Also carries
    /// any per-job deadline from [`JobSpec::timeout_secs`].
    pub cancel: CancelToken,
    /// Injection schedule for this driver's jobs (empty by default —
    /// the fault plane is a thread-local no-op then). The service derives
    /// one per (job, attempt) from its configured
    /// [`FaultPlan`](graphalytics_core::fault::FaultPlan).
    pub faults: FaultScript,
}

impl Default for Driver {
    fn default() -> Self {
        Driver {
            validate: true,
            noise: true,
            seed: 0xB5ED,
            pool: WorkerPool::shared(),
            monitor: MonitorConfig::default(),
            cancel: CancelToken::new(),
            faults: FaultScript::empty(),
        }
    }
}

/// What a mutation replay hands to the execute phase: the materialized
/// post-mutation graph (validation anchor), the aggregate summary, and
/// the measured `Mutate` phases for the archive.
struct MutationReplay {
    merged: Arc<Csr>,
    summary: MutationSummary,
    phases: Vec<PhaseRecord>,
}

/// Measured-mode extras for `execute_repetitions`: the timed upload
/// phase and any replayed mutation script.
#[derive(Default)]
struct MeasuredPhases {
    upload_secs: Option<f64>,
    replay: Option<MutationReplay>,
}

/// Everything admission resolves before any phase runs.
struct Admission {
    cluster: ClusterSpec,
    vertices: u64,
    edges: u64,
    swap_slowdown: f64,
    cut_fraction: f64,
}

impl Driver {
    /// Arms the job deadline (if any) and installs the thread-local
    /// fault/cancellation scope for one job's lifecycle. Kernels observe
    /// the token and injection schedule at their checkpoints; dropping
    /// the guard restores any outer scope.
    fn fault_scope(&self, spec: &JobSpec) -> fault::FaultGuard {
        if let Some(timeout) = spec.timeout_secs {
            self.cancel.arm_deadline(std::time::Duration::from_secs_f64(timeout.max(0.0)));
        }
        fault::install(self.cancel.clone(), self.faults.clone())
    }

    /// Runs one job through the full lifecycle. Measured mode performs
    /// upload (timed) → execute×N → validate → delete; use
    /// [`Driver::run_uploaded`] directly to share one upload across
    /// several jobs (the [`Runner`](crate::runner::Runner) shares per
    /// (platform, dataset)).
    pub fn run(&self, platform: &dyn Platform, spec: &JobSpec, mode: RunMode<'_>) -> JobResult {
        let _scope = self.fault_scope(spec);
        match mode {
            RunMode::Analytic => self.run_analytic(platform, spec),
            RunMode::Measured { csr } => {
                let mut result = self.blank_result(platform, spec);
                if spec.mutations.is_some() && (!platform.supports_mutation() || spec.shards > 1)
                {
                    // Mutation scripts need the platform's delta-log path
                    // and an unsharded resident upload.
                    result.status = JobStatus::Unsupported;
                    return result;
                }
                if let Some(admission) = self.admit(platform, spec, Some(csr), &mut result) {
                    if let Err(e) = fault::checkpoint(FaultSite::Upload) {
                        result.status = JobStatus::from_error(&e);
                        return result;
                    }
                    let upload_start = Instant::now();
                    match graphalytics_engines::upload_with_shards(
                        platform,
                        csr.clone(),
                        spec.shards,
                        self.seed,
                        &self.pool,
                    ) {
                        Ok(loaded) => {
                            let upload_secs = upload_start.elapsed().as_secs_f64();
                            let replay = match spec.mutations {
                                Some(script) => {
                                    match self.replay_mutations(
                                        platform,
                                        loaded.as_ref(),
                                        csr,
                                        &script,
                                    ) {
                                        Ok(replay) => Some(replay),
                                        Err(e) => {
                                            result.status = JobStatus::from_error(&e);
                                            platform.delete(loaded);
                                            return result;
                                        }
                                    }
                                }
                                None => None,
                            };
                            result = self.execute_repetitions(
                                platform,
                                loaded.as_ref(),
                                spec,
                                admission,
                                result,
                                MeasuredPhases { upload_secs: Some(upload_secs), replay },
                            );
                            platform.delete(loaded);
                        }
                        Err(e) => {
                            result.status = if e.is_fault_control() {
                                JobStatus::from_error(&e)
                            } else {
                                JobStatus::ValidationFailed(format!("upload failed: {e}"))
                            };
                        }
                    }
                }
                result
            }
        }
    }

    /// Runs the execute×N / validate phases of one measured job on a
    /// graph some caller already uploaded to `platform` (upload-once,
    /// execute-many across algorithms and repetitions). Pass the measured
    /// upload wall time so it is reported on every job that shares it.
    pub fn run_uploaded(
        &self,
        platform: &dyn Platform,
        loaded: &dyn LoadedGraph,
        spec: &JobSpec,
        measured_upload_secs: Option<f64>,
    ) -> JobResult {
        let _scope = self.fault_scope(spec);
        let mut result = self.blank_result(platform, spec);
        let csr = loaded.csr();
        match self.admit_sized(
            platform,
            spec,
            csr.num_vertices() as u64,
            csr.num_edges() as u64,
            &mut result,
        ) {
            Some(admission) => self.execute_repetitions(
                platform,
                loaded,
                spec,
                admission,
                result,
                MeasuredPhases { upload_secs: measured_upload_secs, ..MeasuredPhases::default() },
            ),
            None => result,
        }
    }

    /// Replays a mutation script against the resident upload while a
    /// core-side mirror delta log tracks the identical batches; the
    /// mirror's materialized post-mutation graph anchors validation. Any
    /// apply-side failure comes back as the job's failure message.
    fn replay_mutations(
        &self,
        platform: &dyn Platform,
        loaded: &dyn LoadedGraph,
        csr: &Arc<Csr>,
        script: &MutationScript,
    ) -> Result<MutationReplay, graphalytics_core::Error> {
        let batches = script.batches_for(csr);
        let mut mirror = MutableGraph::with_config(
            csr.clone(),
            DeltaConfig { auto_compact: false, ..DeltaConfig::default() },
        );
        let mut summary = MutationSummary { batches: batches.len() as u32, ..Default::default() };
        let mut phases: Vec<PhaseRecord> = Vec::new();
        for batch in &batches {
            let mut ctx = RunContext::new(&self.pool);
            ctx.set_cancel(self.cancel.clone());
            let outcome = platform
                .apply_mutations(loaded, batch, &mut ctx)
                .map_err(|e| stage_error("mutation apply failed", e))?;
            mirror
                .apply(batch, &self.pool)
                .map_err(|e| stage_error("mutation mirror diverged", e))?;
            summary.inserted += outcome.inserted;
            summary.deleted += outcome.deleted;
            summary.updated += outcome.updated;
            summary.compactions += u64::from(outcome.compacted);
            summary.apply_secs += outcome.wall_seconds;
            summary.delta_arcs = outcome.delta_arcs;
            summary.fill_ratio = outcome.fill_ratio;
            phases.extend(ctx.take_phases());
        }
        let merged = mirror
            .materialize(&self.pool)
            .map_err(|e| stage_error("mutation mirror materialize failed", e))?;
        Ok(MutationReplay { merged: Arc::new(merged), summary, phases })
    }

    /// Admission without execution: returns the rejection row
    /// (Unsupported / OutOfMemory) for a measured job that would not be
    /// admitted, or `None` when the job may run. The
    /// [`Runner`](crate::runner::Runner) uses this to skip the upload
    /// phase entirely for (platform, dataset) groups whose every job is
    /// rejected.
    pub(crate) fn preflight(
        &self,
        platform: &dyn Platform,
        spec: &JobSpec,
        csr: &Csr,
    ) -> Option<JobResult> {
        let mut result = self.blank_result(platform, spec);
        match self.admit_sized(
            platform,
            spec,
            csr.num_vertices() as u64,
            csr.num_edges() as u64,
            &mut result,
        ) {
            Some(_) => None,
            None => Some(result),
        }
    }

    /// A result row for a measured job whose upload phase failed: the
    /// graph sizes are recorded, nothing executed.
    pub(crate) fn upload_failed_result(
        &self,
        platform: &dyn Platform,
        spec: &JobSpec,
        csr: &Csr,
        message: String,
    ) -> JobResult {
        let mut result = self.blank_result(platform, spec);
        result.vertices = csr.num_vertices() as u64;
        result.edges = csr.num_edges() as u64;
        result.status = JobStatus::ValidationFailed(message);
        result
    }

    /// One analytic job: counters estimated at the published size, one
    /// simulated measurement per repetition.
    fn run_analytic(&self, platform: &dyn Platform, spec: &JobSpec) -> JobResult {
        let mut result = self.blank_result(platform, spec);
        let Some(admission) = self.admit(platform, spec, None, &mut result) else {
            return result;
        };
        let desc = JobDescription { dataset: spec.dataset, algorithm: spec.algorithm };
        let counters = platform.estimate(
            admission.vertices,
            admission.edges,
            &spec.dataset.traits_,
            spec.dataset.directed,
            spec.algorithm,
            &desc.params_analytic(),
        );
        result.counters = counters;
        let archiver = Archiver::new(platform.name(), job_name(spec));
        self.finish_with_cost_model(platform, spec, admission, result, archiver, &[])
    }

    /// The execute×N + validate phases, shared by `run` and
    /// `run_uploaded`.
    fn execute_repetitions(
        &self,
        platform: &dyn Platform,
        loaded: &dyn LoadedGraph,
        spec: &JobSpec,
        admission: Admission,
        mut result: JobResult,
        measured: MeasuredPhases,
    ) -> JobResult {
        let MeasuredPhases { upload_secs: measured_upload_secs, replay } = measured;
        let csr = loaded.csr();
        if let Some(layout) = loaded.shard_layout() {
            result.shards = layout.shards;
            result.cut_fraction = Some(layout.cut_fraction);
        }
        let desc = JobDescription { dataset: spec.dataset, algorithm: spec.algorithm };
        let params = desc.params_for(csr);
        let mut archiver = Archiver::new(platform.name(), job_name(spec));
        if let Some(upload) = measured_upload_secs {
            result.measured_upload_secs = Some(upload);
            archiver.record_measured(
                "UploadGraph",
                upload,
                &[("edges", &csr.num_edges().to_string())],
            );
        }
        if let Some(replay) = &replay {
            result.mutation = Some(replay.summary);
            for phase in &replay.phases {
                archiver.record_measured(
                    phase.name,
                    phase.secs,
                    &[("batches", &replay.summary.batches.to_string())],
                );
            }
        }

        // The reference output is computed once — on the materialized
        // post-mutation graph when a mutation script ran, since that is
        // the graph the engine now answers for. A reference-side failure
        // is recorded as a validation failure instead of panicking the
        // benchmark mid-run.
        let reference_csr = replay.as_ref().map(|r| r.merged.as_ref()).unwrap_or(csr);
        let reference = if self.validate {
            match graphalytics_core::algorithms::run_reference(
                reference_csr,
                spec.algorithm,
                &params,
            ) {
                Ok(reference) => Some(reference),
                Err(e) => {
                    result.status =
                        JobStatus::ValidationFailed(format!("reference implementation: {e}"));
                    return result;
                }
            }
        } else {
            None
        };

        // The Granula monitor rides along while repetitions execute: a
        // background sampler polls /proc/self + pool utilization, and the
        // samples land under a `Monitor` operation in the archive.
        let sampler = self.monitor.enabled.then(|| {
            let pool = Arc::clone(&self.pool);
            pool.enable_telemetry();
            Sampler::start(
                self.monitor.sample_interval,
                Some(Box::new(move || {
                    let u = pool.utilization();
                    vec![
                        ("pool_busy_fraction".to_string(), format!("{:.6}", u.busy_fraction())),
                        ("pool_busy_secs".to_string(), format!("{:.6}", u.busy_secs)),
                        ("pool_dispatch_wakeups".to_string(), u.dispatch_wakeups.to_string()),
                    ]
                })),
            )
        });

        let repetitions = spec.repetitions.max(1);
        let mut walls: Vec<f64> = Vec::with_capacity(repetitions as usize);
        for rep in 0..repetitions as u64 {
            // Even engines whose kernels converge in one superstep hit a
            // boundary here, so cancellation/deadline is observed at
            // least once per repetition.
            if let Err(e) = fault::checkpoint(FaultSite::Repetition) {
                result.status = JobStatus::from_error(&e);
                return result;
            }
            let mut ctx = RunContext::with_run_index(&self.pool, spec.run_index + rep);
            ctx.set_cancel(self.cancel.clone());
            ctx.set_tracing(self.monitor.enabled);
            archiver.begin("ExecuteReal");
            let execution = platform.run(loaded, spec.algorithm, &params, &mut ctx);
            let supersteps = execution
                .as_ref()
                .map(|exec| exec.counters.supersteps)
                .unwrap_or(0)
                .to_string();
            let mut spans = Some(ctx.take_spans());
            for phase in ctx.take_phases() {
                let start = (archiver.elapsed_secs() - phase.secs).max(0.0);
                let mut op = OperationRecord {
                    name: phase.name.to_string(),
                    start_secs: start,
                    duration_secs: phase.secs,
                    simulated: false,
                    infos: vec![
                        ("repetition".to_string(), rep.to_string()),
                        ("supersteps".to_string(), supersteps.clone()),
                    ],
                    children: Vec::new(),
                };
                // The engine's superstep spans nest under the kernel
                // phase; the remaining phases (if any) stay leaves.
                if phase.name == "ProcessGraph" {
                    let mut cursor = start;
                    for span in spans.take().unwrap_or_default() {
                        let secs = span.secs;
                        op.children.push(span_to_op(span, cursor));
                        cursor += secs;
                    }
                }
                archiver.record_op(op);
            }
            archiver.end();
            match execution {
                Ok(exec) => {
                    if rep == 0 {
                        if let Some(reference) = &reference {
                            match graphalytics_core::validation::validate(reference, &exec.output)
                            {
                                Ok(report) if report.is_valid() => {}
                                Ok(report) => {
                                    result.status = JobStatus::ValidationFailed(format!(
                                        "{} mismatches",
                                        report.mismatches
                                    ));
                                    return result;
                                }
                                Err(e) => {
                                    result.status = JobStatus::ValidationFailed(e.to_string());
                                    return result;
                                }
                            }
                        }
                        result.counters = exec.counters;
                    }
                    walls.push(exec.wall_seconds);
                }
                Err(e) => {
                    result.status = JobStatus::from_error(&e);
                    return result;
                }
            }
        }
        result.measured_wall_secs =
            Some(walls.iter().sum::<f64>() / walls.len().max(1) as f64);
        if let Some(sampler) = sampler {
            let duration = sampler.elapsed_secs();
            archiver.record_op(monitor_op(sampler.stop(), duration));
        }
        self.finish_with_cost_model(platform, spec, admission, result, archiver, &walls)
    }

    /// Counters → simulated per-repetition times through the shared cost
    /// model, aggregation, archive records, SLA verdict.
    fn finish_with_cost_model(
        &self,
        platform: &dyn Platform,
        spec: &JobSpec,
        admission: Admission,
        mut result: JobResult,
        mut archiver: Archiver,
        walls: &[f64],
    ) -> JobResult {
        let profile = platform.profile();
        let Admission { cluster, vertices: v, edges: e, swap_slowdown, cut_fraction } = admission;
        let breakdown = processing_time(&profile.cost, &result.counters, &cluster, cut_fraction);
        let m = cluster.machines;
        let cv = if m > 1 { profile.cv_distributed } else { profile.cv_single };
        let upload = profile.startup_secs + profile.load_secs_per_edge * e as f64 / m as f64;
        let offload = v as f64 * 5.0e-9;

        let repetitions = spec.repetitions.max(1) as u64;
        let mut runs = Vec::with_capacity(repetitions as usize);
        for rep in 0..repetitions {
            let run_index = spec.run_index + rep;
            let noise = if self.noise {
                noise_factor(cv, self.seed ^ job_seed(&result), run_index)
            } else {
                1.0
            };
            let tproc = breakdown.total() * swap_slowdown * noise;
            runs.push(RunMeasurement {
                run_index,
                processing_secs: tproc,
                makespan_secs: upload + tproc + offload,
                measured_wall_secs: walls.get(rep as usize).copied(),
            });
        }
        let mean = runs.iter().map(|r| r.processing_secs).sum::<f64>() / runs.len() as f64;
        result.upload_secs = upload;
        result.processing_secs = mean;
        result.processing_min_secs =
            runs.iter().map(|r| r.processing_secs).fold(f64::INFINITY, f64::min);
        result.processing_max_secs =
            runs.iter().map(|r| r.processing_secs).fold(0.0, f64::max);
        result.makespan_secs = upload + mean + offload;

        archiver.record_simulated("Startup", profile.startup_secs, &[]);
        archiver.record_simulated(
            "LoadGraph",
            upload - profile.startup_secs,
            &[("edges", &e.to_string())],
        );
        let counters = &result.counters;
        for run in &runs {
            archiver.record_simulated(
                "ProcessGraph",
                run.processing_secs,
                &[
                    ("run_index", &run.run_index.to_string()),
                    ("supersteps", &counters.supersteps.to_string()),
                    ("messages", &counters.messages.to_string()),
                    ("compute_secs", &format!("{:.3e}", breakdown.compute_secs)),
                    ("network_secs", &format!("{:.3e}", breakdown.network_secs)),
                    ("barrier_secs", &format!("{:.3e}", breakdown.barrier_secs)),
                ],
            );
        }
        archiver.record_simulated("Offload", offload, &[]);
        archiver.record_simulated("DeleteGraph", 0.0, &[]);
        result.runs = runs;
        result.archive = Some(archiver.finish());

        if result.makespan_secs > SLA_MAKESPAN_SECS {
            result.status = JobStatus::SlaViolation;
        }
        result
    }

    /// An empty result shell for `spec` (sizes default to the published
    /// ones; admission overwrites for measured runs).
    fn blank_result(&self, platform: &dyn Platform, spec: &JobSpec) -> JobResult {
        let profile = platform.profile();
        JobResult {
            platform: platform.name().to_string(),
            paper_analog: profile.paper_analog.to_string(),
            dataset: spec.dataset.id.to_string(),
            algorithm: spec.algorithm,
            machines: spec.cluster.machines,
            threads: spec.cluster.threads_per_machine,
            shards: spec.shards.max(1),
            cut_fraction: None,
            status: JobStatus::Completed,
            vertices: spec.dataset.vertices,
            edges: spec.dataset.edges,
            upload_secs: 0.0,
            processing_secs: 0.0,
            processing_min_secs: 0.0,
            processing_max_secs: 0.0,
            makespan_secs: 0.0,
            measured_wall_secs: None,
            measured_upload_secs: None,
            runs: Vec::new(),
            counters: WorkCounters::new(),
            archive: None,
            mutation: None,
        }
    }

    /// Admission for `spec`, sized from `csr` when measured.
    fn admit(
        &self,
        platform: &dyn Platform,
        spec: &JobSpec,
        csr: Option<&Arc<Csr>>,
        result: &mut JobResult,
    ) -> Option<Admission> {
        let (v, e) = match csr {
            Some(csr) => (csr.num_vertices() as u64, csr.num_edges() as u64),
            None => (spec.dataset.vertices, spec.dataset.edges),
        };
        self.admit_sized(platform, spec, v, e, result)
    }

    /// Admission: algorithm support, deployment mode, memory. `None`
    /// means the job was rejected (status already set on `result`).
    fn admit_sized(
        &self,
        platform: &dyn Platform,
        spec: &JobSpec,
        v: u64,
        e: u64,
        result: &mut JobResult,
    ) -> Option<Admission> {
        let profile = platform.profile().clone();
        let mut cluster = spec.cluster;
        cluster.network = match profile.network {
            NetworkKind::Ethernet1G => NetworkSpec::ethernet_1g(),
            NetworkKind::InfinibandFdr => NetworkSpec::infiniband_fdr(),
        };
        result.machines = cluster.machines;
        result.threads = cluster.threads_per_machine;
        result.vertices = v;
        result.edges = e;

        if !platform.supports(spec.algorithm)
            || (cluster.is_distributed() && !profile.supports_distributed)
            || (spec.shards > 1 && !platform.supports_sharded())
        {
            result.status = JobStatus::Unsupported;
            return None;
        }

        let traits_ = spec.dataset.traits_;
        let directed = spec.dataset.directed;
        let arcs = if directed { e } else { 2 * e };
        let mean_degree = arcs as f64 / v.max(1) as f64;
        let sum_deg2 =
            graphalytics_engines::estimate::estimate_sum_deg2(v, arcs as f64, traits_.degree_skew);

        // Partitioning characteristics drive replication and cut fraction.
        let m = cluster.machines;
        let replication = if m > 1 && profile.partition == PartitionStrategy::GreedyVertexCut {
            estimate_replication(m, mean_degree, traits_.degree_skew)
        } else {
            1.0
        };
        let cut_fraction = if m <= 1 {
            0.0
        } else {
            match profile.partition {
                PartitionStrategy::HashEdgeCut => 1.0 - 1.0 / m as f64,
                PartitionStrategy::RangeEdgeCut => 0.9 * (1.0 - 1.0 / m as f64),
                PartitionStrategy::GreedyVertexCut => 1.0 - 1.0 / replication.max(1.0),
            }
        };

        // Memory admission (the stress-test mechanism).
        let footprint = profile.memory.footprint_per_machine(v, e, traits_.degree_skew, m, replication)
            + (profile.peak_extra_bytes(spec.algorithm, arcs, sum_deg2) / m as f64) as u64;
        let swap_slowdown = match profile.memory.check(footprint, cluster.machine.memory_bytes) {
            MemoryOutcome::Fits { .. } => 1.0,
            MemoryOutcome::Swapping { slowdown, .. } => slowdown,
            MemoryOutcome::OutOfMemory { .. } => {
                result.status = JobStatus::OutOfMemory;
                return None;
            }
        };
        Some(Admission { cluster, vertices: v, edges: e, swap_slowdown, cut_fraction })
    }
}

/// Wraps a stage failure in its stage prefix — except fault-plane errors
/// (cancel/deadline/injection), which keep their identity so
/// [`JobStatus::from_error`] classifies them structurally.
fn stage_error(stage: &str, e: graphalytics_core::Error) -> graphalytics_core::Error {
    if e.is_fault_control() {
        e
    } else {
        graphalytics_core::Error::Other(format!("{stage}: {e}"))
    }
}

fn job_name(spec: &JobSpec) -> String {
    format!("{}@{}", spec.algorithm, spec.dataset.id)
}

/// Converts one engine trace span (and its subtree) into an archive
/// operation. Top-level siblings are laid out sequentially by the caller;
/// nested children (per-shard spans) ran concurrently, so they inherit
/// their parent's start offset.
fn span_to_op(span: SpanRecord, start_secs: f64) -> OperationRecord {
    OperationRecord {
        name: span.name,
        start_secs,
        duration_secs: span.secs,
        simulated: false,
        infos: span.infos,
        children: span.children.into_iter().map(|c| span_to_op(c, start_secs)).collect(),
    }
}

/// The monitor's resource samples as an archive subtree: one zero-width
/// `ResourceSample` child per poll, offset on the sampler's clock (which
/// starts within microseconds of the archiver's).
fn monitor_op(samples: Vec<ResourceSample>, duration_secs: f64) -> OperationRecord {
    let children = samples
        .into_iter()
        .map(|s| {
            let mut infos = Vec::new();
            if let Some(rss) = s.usage.rss_bytes {
                infos.push(("rss_bytes".to_string(), rss.to_string()));
            }
            if let Some(t) = s.usage.utime_secs {
                infos.push(("utime_secs".to_string(), format!("{t:.2}")));
            }
            if let Some(t) = s.usage.stime_secs {
                infos.push(("stime_secs".to_string(), format!("{t:.2}")));
            }
            infos.extend(s.extra);
            OperationRecord {
                name: "ResourceSample".to_string(),
                start_secs: s.elapsed_secs,
                duration_secs: 0.0,
                simulated: false,
                infos,
                children: Vec::new(),
            }
        })
        .collect::<Vec<_>>();
    OperationRecord {
        name: "Monitor".to_string(),
        start_secs: 0.0,
        duration_secs,
        simulated: false,
        infos: vec![("samples".to_string(), children.len().to_string())],
        children,
    }
}

/// Stable per-job seed component so noise streams differ across jobs but
/// are reproducible.
fn job_seed(r: &JobResult) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in r
        .platform
        .bytes()
        .chain(r.dataset.bytes())
        .chain(r.algorithm.acronym().bytes())
        .chain([r.machines as u8, r.threads as u8])
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;
    use graphalytics_core::error::Result;
    use graphalytics_core::output::AlgorithmOutput;
    use graphalytics_core::params::AlgorithmParams;
    use graphalytics_engines::{platform_by_name, Execution};

    fn spec(ds: &'static str, alg: Algorithm, machines: u32) -> JobSpec {
        JobSpec {
            dataset: dataset(ds).unwrap(),
            algorithm: alg,
            cluster: if machines <= 1 {
                ClusterSpec::single_machine()
            } else {
                ClusterSpec::das5(machines)
            },
            run_index: 0,
            repetitions: 1,
            shards: 1,
            mutations: None,
            timeout_secs: None,
        }
    }

    fn proxy_csr(ds: &'static str) -> Arc<Csr> {
        let spec = dataset(ds).unwrap();
        let graph = crate::proxy::materialize(spec, 1 << 14, 5);
        Arc::new(graph.to_csr())
    }

    #[test]
    fn analytic_run_produces_times() {
        let platform = platform_by_name("spmv").unwrap();
        let driver = Driver { noise: false, ..Driver::default() };
        let r = driver.run(platform.as_ref(), &spec("D300", Algorithm::Bfs, 1), RunMode::Analytic);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(r.processing_secs > 0.0);
        assert!(r.makespan_secs > r.processing_secs);
        assert!(r.eps() > 0.0);
        assert!(r.archive.is_some());
        assert_eq!(r.repetitions(), 1);
        assert_eq!(r.runs[0].processing_secs, r.processing_secs);
    }

    #[test]
    fn measured_run_validates_output() {
        let platform = platform_by_name("native").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let r = driver.run(
            platform.as_ref(),
            &spec("G22", Algorithm::Bfs, 1),
            RunMode::Measured { csr: &csr },
        );
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(r.measured_wall_secs.is_some());
        assert!(r.measured_upload_secs.is_some(), "upload phase is timed");
        assert!(r.measured_upload_eps().unwrap() > 0.0);
        assert!(r.counters.edges_scanned > 0);
        assert_eq!(r.vertices, csr.num_vertices() as u64);
        // The archive carries the measured phases.
        let archive = r.archive.as_ref().unwrap();
        assert!(archive.duration_of("UploadGraph").is_some());
        assert!(archive.duration_of("ProcessGraph").is_some());
    }

    #[test]
    fn mutation_script_replays_and_validates_on_post_mutation_graph() {
        let platform = platform_by_name("pushpull").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let script = MutationScript::new(2, 24, 24, 0xFEED);
        for alg in [Algorithm::Wcc, Algorithm::PageRank, Algorithm::Bfs] {
            let job = spec("G22", alg, 1).with_mutations(script);
            let r = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
            assert!(r.status.is_success(), "{alg:?}: {:?}", r.status);
            let summary = r.mutation.expect("mutation summary recorded");
            assert_eq!(summary.batches, 2);
            assert!(summary.inserted + summary.updated > 0, "{alg:?}: batches mutated nothing");
            assert!(summary.deleted > 0, "{alg:?}: no deletions landed");
            let archive = r.archive.as_ref().unwrap();
            assert!(archive.duration_of("Mutate").is_some(), "{alg:?}: Mutate phase archived");
        }
    }

    #[test]
    fn mutation_script_needs_a_mutation_platform_and_one_shard() {
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let job = spec("G22", Algorithm::Wcc, 1)
            .with_mutations(MutationScript::new(1, 8, 8, 7));
        let gas = platform_by_name("gas").unwrap();
        let rejected = driver.run(gas.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert_eq!(rejected.status, JobStatus::Unsupported, "no mutation path on gas");
        assert!(rejected.mutation.is_none());
        let pushpull = platform_by_name("pushpull").unwrap();
        let sharded = driver.run(
            pushpull.as_ref(),
            &job.with_shards(2),
            RunMode::Measured { csr: &csr },
        );
        assert_eq!(sharded.status, JobStatus::Unsupported, "mutations need a resident upload");
    }

    #[test]
    fn repetitions_share_one_upload_and_vary_by_noise() {
        let platform = platform_by_name("native").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let job = spec("G22", Algorithm::Bfs, 1).with_repetitions(5);
        let r = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(r.repetitions(), 5);
        // Distinct noise samples per repetition...
        let mut samples: Vec<f64> = r.runs.iter().map(|m| m.processing_secs).collect();
        samples.dedup();
        assert_eq!(samples.len(), 5, "noise stream must differ per repetition");
        assert!(r.processing_min_secs < r.processing_max_secs);
        assert!(r.processing_min_secs <= r.processing_secs);
        assert!(r.processing_secs <= r.processing_max_secs);
        // ...and a deterministic mean for a fixed seed.
        let again = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert_eq!(r.processing_secs, again.processing_secs);
        assert_eq!(r.runs.len(), again.runs.len());
        for (a, b) in r.runs.iter().zip(&again.runs) {
            assert_eq!(a.processing_secs, b.processing_secs);
        }
        // Every repetition was actually executed (wall times recorded).
        assert!(r.runs.iter().all(|m| m.measured_wall_secs.is_some()));
    }

    #[test]
    fn analytic_repetitions_have_distinct_samples_and_deterministic_mean() {
        let platform = platform_by_name("pregel").unwrap();
        let driver = Driver::default();
        let job = spec("G22", Algorithm::PageRank, 1).with_repetitions(10);
        let a = driver.run(platform.as_ref(), &job, RunMode::Analytic);
        let b = driver.run(platform.as_ref(), &job, RunMode::Analytic);
        assert_eq!(a.processing_secs, b.processing_secs, "deterministic mean");
        assert!(a.processing_cv() > 0.0, "repetitions sample distinct noise");
        let unique: std::collections::BTreeSet<u64> =
            a.runs.iter().map(|r| r.processing_secs.to_bits()).collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn reference_failure_is_validation_failed_not_panic() {
        // A platform that claims SSSP works on unweighted graphs produces
        // output the reference cannot check (the reference errors on the
        // missing weights); the driver must record ValidationFailed.
        struct LyingGraph(Arc<Csr>);
        impl LoadedGraph for LyingGraph {
            fn csr(&self) -> &Csr {
                &self.0
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        struct LyingPlatform {
            profile: graphalytics_engines::PerfProfile,
        }
        impl Platform for LyingPlatform {
            fn name(&self) -> &'static str {
                "lying"
            }
            fn profile(&self) -> &graphalytics_engines::PerfProfile {
                &self.profile
            }
            fn upload(
                &self,
                csr: Arc<Csr>,
                _pool: &WorkerPool,
            ) -> Result<Box<dyn LoadedGraph>> {
                Ok(Box::new(LyingGraph(csr)))
            }
            fn run(
                &self,
                graph: &dyn LoadedGraph,
                algorithm: Algorithm,
                _params: &AlgorithmParams,
                _ctx: &mut RunContext<'_>,
            ) -> Result<Execution> {
                let csr = graph.csr();
                let values = graphalytics_core::output::OutputValues::F64(vec![
                    0.0;
                    csr.num_vertices()
                ]);
                Ok(Execution {
                    output: AlgorithmOutput::from_dense(algorithm, csr, values),
                    counters: WorkCounters::new(),
                    wall_seconds: 0.0,
                })
            }
            fn estimate(
                &self,
                _v: u64,
                _e: u64,
                _t: &graphalytics_core::datasets::GraphTraits,
                _d: bool,
                _a: Algorithm,
                _p: &AlgorithmParams,
            ) -> WorkCounters {
                WorkCounters::new()
            }
        }
        let platform = LyingPlatform { profile: graphalytics_engines::PerfProfile::native() };
        let csr = proxy_csr("G22"); // unweighted: the reference rejects SSSP
        let driver = Driver::default();
        let r = driver.run(
            &platform,
            &spec("G22", Algorithm::Sssp, 1),
            RunMode::Measured { csr: &csr },
        );
        match &r.status {
            JobStatus::ValidationFailed(message) => {
                assert!(message.contains("reference implementation"), "{message}");
            }
            other => panic!("expected ValidationFailed, got {other:?}"),
        }
    }

    #[test]
    fn run_uploaded_matches_full_lifecycle() {
        let platform = platform_by_name("spmv").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let job = spec("G22", Algorithm::PageRank, 1).with_repetitions(3);
        let full = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        let loaded = platform.upload(csr.clone(), &driver.pool).unwrap();
        let shared = driver.run_uploaded(platform.as_ref(), loaded.as_ref(), &job, Some(0.5));
        platform.delete(loaded);
        assert_eq!(full.status, shared.status);
        assert_eq!(full.processing_secs, shared.processing_secs);
        assert_eq!(full.counters.edges_scanned, shared.counters.edges_scanned);
        assert_eq!(shared.measured_upload_secs, Some(0.5));
    }

    #[test]
    fn lcc_on_pushpull_is_unsupported() {
        let platform = platform_by_name("pushpull").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("R4", Algorithm::Lcc, 1), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::Unsupported);
        assert_eq!(r.status.figure_mark(), "NA");
    }

    #[test]
    fn native_is_single_node_only() {
        let platform = platform_by_name("native").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("D300", Algorithm::Bfs, 4), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::Unsupported);
    }

    #[test]
    fn oversized_dataset_goes_oom() {
        // R5 (1.81B edges) cannot fit PowerGraph on one machine (Table 10).
        let platform = platform_by_name("gas").unwrap();
        let driver = Driver::default();
        let r = driver.run(platform.as_ref(), &spec("R5", Algorithm::Bfs, 1), RunMode::Analytic);
        assert_eq!(r.status, JobStatus::OutOfMemory);
        assert_eq!(r.status.figure_mark(), "F");
    }

    #[test]
    fn sharded_measured_run_reports_layout_and_gates_support() {
        let platform = platform_by_name("pregel").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        let base = driver.run(
            platform.as_ref(),
            &spec("G22", Algorithm::Bfs, 1),
            RunMode::Measured { csr: &csr },
        );
        let job = spec("G22", Algorithm::Bfs, 1).with_shards(4);
        let r = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(r.shards, 4);
        assert!(r.cut_fraction.unwrap() > 0.0);
        assert!(r.counters.inter_shard_messages > 0);
        assert_eq!(
            r.counters.messages, base.counters.messages,
            "sharded pregel preserves single-shard message counts"
        );
        // Platforms without a sharded run path reject sharded jobs.
        let spmv = platform_by_name("spmv").unwrap();
        let rejected = driver.run(spmv.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert_eq!(rejected.status, JobStatus::Unsupported);
        // A single-shard job on those platforms still runs.
        let ok = driver.run(
            spmv.as_ref(),
            &spec("G22", Algorithm::Bfs, 1),
            RunMode::Measured { csr: &csr },
        );
        assert!(ok.status.is_success(), "{:?}", ok.status);
        assert_eq!(ok.shards, 1);
        assert_eq!(ok.cut_fraction, None);
    }

    #[test]
    fn monitored_run_archives_spans_and_samples() {
        let platform = platform_by_name("pregel").unwrap();
        let csr = proxy_csr("G22");
        let driver = Driver::default();
        assert!(driver.monitor.enabled, "monitoring defaults on");
        let job = spec("G22", Algorithm::Bfs, 1).with_shards(2);
        let r = driver.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert!(r.status.is_success(), "{:?}", r.status);
        let archive = r.archive.as_ref().unwrap();

        // Job → ExecuteReal → ProcessGraph → Superstep → Shard.
        let execute = archive.root.find("ExecuteReal").expect("ExecuteReal archived");
        let process = execute.find("ProcessGraph").expect("ProcessGraph under ExecuteReal");
        assert!(!process.children.is_empty(), "supersteps nested under ProcessGraph");
        for (i, step) in process.children.iter().enumerate() {
            assert_eq!(step.name, "Superstep");
            let info = |k: &str| step.infos.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            assert_eq!(info("index").as_deref(), Some(i.to_string().as_str()));
            assert!(info("messages").is_some());
            assert!(info("edges_scanned").is_some());
            assert!(info("queue_depth").is_some());
            assert_eq!(step.children.iter().filter(|c| c.name == "Shard").count(), 2);
        }

        // The monitor attached at least the start + stop resource samples.
        let monitor = archive.root.find("Monitor").expect("Monitor op archived");
        assert!(monitor.children.len() >= 2, "{}", monitor.children.len());
        assert!(monitor.children.iter().all(|s| s.name == "ResourceSample"));
        let sample = &monitor.children[0];
        assert!(sample.infos.iter().any(|(k, _)| k == "pool_busy_fraction"));

        // Disabling the monitor drops the telemetry but never the result.
        let quiet = Driver { monitor: MonitorConfig::disabled(), ..Driver::default() };
        let q = quiet.run(platform.as_ref(), &job, RunMode::Measured { csr: &csr });
        assert!(q.status.is_success(), "{:?}", q.status);
        assert_eq!(q.processing_secs, r.processing_secs, "telemetry is data-plane passive");
        assert_eq!(q.counters, r.counters);
        let quiet_archive = q.archive.as_ref().unwrap();
        assert!(quiet_archive.root.find("Monitor").is_none());
        let quiet_process =
            quiet_archive.root.find("ExecuteReal").unwrap().find("ProcessGraph").unwrap();
        assert!(quiet_process.children.is_empty(), "no spans when disabled");
    }

    #[test]
    fn noise_is_reproducible() {
        let platform = platform_by_name("pregel").unwrap();
        let driver = Driver::default();
        let a =
            driver.run(platform.as_ref(), &spec("G22", Algorithm::Bfs, 1), RunMode::Analytic);
        let b =
            driver.run(platform.as_ref(), &spec("G22", Algorithm::Bfs, 1), RunMode::Analytic);
        assert_eq!(a.processing_secs, b.processing_secs);
        let c = driver.run(
            platform.as_ref(),
            &JobSpec { run_index: 1, ..spec("G22", Algorithm::Bfs, 1) },
            RunMode::Analytic,
        );
        assert_ne!(a.processing_secs, c.processing_secs);
    }
}
