//! Text rendering of tables and figures.
//!
//! The paper's figures are log-scale dot plots; their information content
//! is a (dataset × platform) or (resources × platform) matrix of numbers.
//! We render those matrices as aligned text tables with the paper's
//! failure annotations (`F` for SLA breaks/crashes, `NA` for
//! unimplemented algorithms).

use crate::driver::{JobResult, JobStatus};

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            line.push_str(&format!("{:<width$}", h, width = widths[i] + 2));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<width$}", row[i], width = widths[i] + 2));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// The cell for a job result: formatted processing time or the paper's
/// failure mark.
pub fn tproc_cell(result: &JobResult) -> String {
    match &result.status {
        JobStatus::Completed => fmt_secs(result.processing_secs),
        other => other.figure_mark().to_string(),
    }
}

/// Cell for throughput metrics.
pub fn throughput_cell(result: &JobResult, value: f64) -> String {
    match &result.status {
        JobStatus::Completed => fmt_throughput(value),
        other => other.figure_mark().to_string(),
    }
}

/// Human-scaled seconds (same scale breaks as the Granula visualizer).
pub fn fmt_secs(s: f64) -> String {
    graphalytics_granula::visualize::fmt_secs(s)
}

/// Human-scaled per-second rates: `3.1K/s`, `42M/s`.
pub fn fmt_throughput(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v >= 1.0e9 {
        format!("{:.1}G/s", v / 1.0e9)
    } else if v >= 1.0e6 {
        format!("{:.1}M/s", v / 1.0e6)
    } else if v >= 1.0e3 {
        format!("{:.1}K/s", v / 1.0e3)
    } else {
        format!("{v:.1}/s")
    }
}

/// Formats a speedup factor like the paper ("15.0x").
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["much-longer-name".into(), "2.5".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Columns aligned: "value" header starts at same offset in rows.
        let header_pos = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(header_pos));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_throughput(1.5e9), "1.5G/s");
        assert_eq!(fmt_throughput(2.0e6), "2.0M/s");
        assert_eq!(fmt_throughput(3_100.0), "3.1K/s");
        assert_eq!(fmt_throughput(12.0), "12.0/s");
        assert_eq!(fmt_throughput(f64::INFINITY), "inf");
        assert_eq!(fmt_speedup(15.04), "15.0x");
    }
}
