//! The benchmark runner: configuration-driven orchestration.
//!
//! This is the harness's outermost loop (Figure 1, components 2→5→9):
//! take a [`BenchmarkConfig`], resolve the platform and workload
//! selections, run every job through the [`Driver`], and collect a
//! [`ResultsDatabase`] plus per-job Granula archives. Measured mode
//! follows the benchmark lifecycle: each dataset's proxy is materialized
//! once (on the run's pool), each platform *uploads* it exactly once —
//! the measured upload time is shared by every job on that (platform,
//! dataset) pair — and every algorithm then executes
//! `benchmark.repetitions` times on the uploaded representation before
//! the engine deletes it.

use std::sync::Arc;

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Csr, Error, Result};
use graphalytics_engines::{all_platforms, platform_by_name, Platform};

use crate::config::BenchmarkConfig;
use crate::description::{BenchmarkDescription, JobDescription};
use crate::driver::{Driver, JobSpec, RunMode};
use crate::proxy;
use crate::results::ResultsDatabase;

/// How the runner obtains counters for each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerMode {
    /// Materialize scaled-down proxies and execute for real (validated).
    Measured,
    /// Analytic estimation at published dataset sizes.
    Analytic,
}

/// Orchestrates a full benchmark run.
pub struct Runner {
    pub config: BenchmarkConfig,
    pub mode: RunnerMode,
    pub cluster: ClusterSpec,
}

impl Runner {
    /// A runner for `config` in the given mode on a single machine.
    pub fn new(config: BenchmarkConfig, mode: RunnerMode) -> Self {
        Runner { config, mode, cluster: ClusterSpec::single_machine() }
    }

    /// Resolves the platform selection (empty = all six). Unknown names
    /// are rejected with [`Error::UnknownPlatform`].
    pub fn platforms(&self) -> Result<Vec<Box<dyn Platform>>> {
        if self.config.platforms.is_empty() {
            return Ok(all_platforms());
        }
        self.config
            .platforms
            .iter()
            .map(|name| {
                platform_by_name(name).ok_or_else(|| Error::UnknownPlatform(name.clone()))
            })
            .collect()
    }

    /// Resolves the workload selection (empty datasets/algorithms = the
    /// full benchmark description).
    pub fn description(&self) -> Result<BenchmarkDescription> {
        match (self.config.datasets.is_empty(), self.config.algorithms.is_empty()) {
            (true, true) => Ok(BenchmarkDescription::full()),
            _ => {
                let ids: Vec<&str> = if self.config.datasets.is_empty() {
                    graphalytics_core::datasets::all_datasets().iter().map(|d| d.id).collect()
                } else {
                    self.config.datasets.iter().map(String::as_str).collect()
                };
                let algorithms = if self.config.algorithms.is_empty() {
                    graphalytics_core::Algorithm::ALL.to_vec()
                } else {
                    self.config.algorithms.clone()
                };
                BenchmarkDescription::selection(&ids, &algorithms)
            }
        }
    }

    /// Runs every job and returns the populated results database. Fails
    /// up front (before any job runs) on unknown platforms or datasets.
    ///
    /// One [`WorkerPool`] is created per run — width from
    /// `benchmark.threads` — and shared by proxy generation, every CSR
    /// build, every engine upload and every measured execution; no job
    /// spawns threads of its own. Measured mode uploads once per
    /// (platform, dataset) and executes `benchmark.repetitions` times
    /// per job.
    pub fn run(&self) -> Result<ResultsDatabase> {
        let pool = Arc::new(WorkerPool::new(self.config.pool_threads()));
        let driver = Driver { seed: self.config.seed, pool: pool.clone(), ..Driver::default() };
        let platforms = self.platforms()?;
        let description = self.description()?;
        let db = ResultsDatabase::new();
        let repetitions = self.config.repetitions.max(1);

        // Process dataset-by-dataset so the expensive artifacts — the
        // materialized proxy and each platform's uploaded representation
        // — are built once and dropped before the next dataset.
        for group in group_by_dataset(&description) {
            let dataset = group[0].dataset;
            let csr: Option<Arc<Csr>> = if self.mode == RunnerMode::Measured {
                let graph = proxy::materialize_with(
                    dataset,
                    self.config.scale_divisor,
                    self.config.seed,
                    &pool,
                );
                Some(Arc::new(graph.to_csr_with(&pool)?))
            } else {
                None
            };
            for platform in &platforms {
                let spec = |job: &JobDescription| JobSpec {
                    dataset: job.dataset,
                    algorithm: job.algorithm,
                    cluster: self.cluster,
                    run_index: 0,
                    repetitions,
                    shards: self.config.shards,
                    mutations: None,
                    timeout_secs: None,
                };
                match &csr {
                    Some(csr) => {
                        // Admission first: jobs the platform rejects
                        // (unsupported algorithm, memory) are recorded
                        // without paying an upload no job would use.
                        let mut admitted = Vec::new();
                        for job in &group {
                            match driver.preflight(platform.as_ref(), &spec(job), csr) {
                                Some(rejected) => db.insert(rejected),
                                None => admitted.push(job),
                            }
                        }
                        if admitted.is_empty() {
                            continue;
                        }
                        // Upload phase: once per (platform, dataset),
                        // through the sharded path when configured.
                        let upload_start = std::time::Instant::now();
                        match graphalytics_engines::upload_with_shards(
                            platform.as_ref(),
                            csr.clone(),
                            self.config.shards,
                            self.config.seed,
                            &pool,
                        ) {
                            Ok(loaded) => {
                                let upload_secs = upload_start.elapsed().as_secs_f64();
                                for job in admitted {
                                    db.insert(driver.run_uploaded(
                                        platform.as_ref(),
                                        loaded.as_ref(),
                                        &spec(job),
                                        Some(upload_secs),
                                    ));
                                }
                                platform.delete(loaded);
                            }
                            Err(e) => {
                                // A failed upload fails every job that
                                // would have shared it.
                                for job in admitted {
                                    db.insert(driver.upload_failed_result(
                                        platform.as_ref(),
                                        &spec(job),
                                        csr,
                                        format!("upload failed: {e}"),
                                    ));
                                }
                            }
                        }
                    }
                    None => {
                        for job in &group {
                            db.insert(driver.run(
                                platform.as_ref(),
                                &spec(job),
                                RunMode::Analytic,
                            ));
                        }
                    }
                }
            }
        }
        Ok(db)
    }
}

/// Splits the description's job list into per-dataset groups, preserving
/// order (the description is already dataset-major).
fn group_by_dataset(description: &BenchmarkDescription) -> Vec<Vec<JobDescription>> {
    let mut groups: Vec<Vec<JobDescription>> = Vec::new();
    for job in &description.jobs {
        match groups.last_mut() {
            Some(group) if group[0].dataset.id == job.dataset.id => group.push(job.clone()),
            _ => groups.push(vec![job.clone()]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_driven_measured_run() {
        let config = BenchmarkConfig::parse(
            "benchmark.platforms = native, pushpull\n\
             benchmark.datasets = G22\n\
             benchmark.algorithms = bfs, wcc, lcc\n\
             benchmark.scale-divisor = 16384\n\
             benchmark.repetitions = 3\n",
        )
        .unwrap();
        let runner = Runner::new(config, RunnerMode::Measured);
        let db = runner.run().unwrap();
        // 2 platforms × 3 algorithms; LCC on pushpull is NA but recorded.
        assert_eq!(db.len(), 6);
        let ok = db.all().iter().filter(|r| r.status.is_success()).count();
        assert_eq!(ok, 5);
        assert!(db
            .all()
            .iter()
            .any(|r| r.platform == "pushpull" && r.status.figure_mark() == "NA"));
        for r in db.all() {
            if r.status.is_success() {
                // benchmark.repetitions honored, every repetition executed.
                assert_eq!(r.repetitions(), 3, "{} {}", r.platform, r.algorithm);
                assert!(r.runs.iter().all(|m| m.measured_wall_secs.is_some()));
                assert!(r.measured_upload_secs.is_some());
            }
        }
        // Upload once per (platform, dataset): every job of a platform on
        // the shared dataset reports the *same* measured upload time.
        for platform in ["native", "pushpull"] {
            let uploads: Vec<f64> = db
                .all()
                .iter()
                .filter(|r| r.platform == platform && r.status.is_success())
                .map(|r| r.measured_upload_secs.unwrap())
                .collect();
            assert!(!uploads.is_empty());
            assert!(
                uploads.iter().all(|&u| u == uploads[0]),
                "{platform}: jobs must share one upload, got {uploads:?}"
            );
        }
    }

    #[test]
    fn config_driven_sharded_run() {
        use crate::driver::JobStatus;
        let config = BenchmarkConfig::parse(
            "benchmark.platforms = pregel, pushpull, spmv\n\
             benchmark.datasets = G22\n\
             benchmark.algorithms = bfs\n\
             benchmark.scale-divisor = 16384\n\
             benchmark.shards = 2\n",
        )
        .unwrap();
        let runner = Runner::new(config, RunnerMode::Measured);
        let db = runner.run().unwrap();
        assert_eq!(db.len(), 3);
        for r in db.all() {
            if r.platform == "spmv" {
                // No sharded run path → rejected at admission.
                assert_eq!(r.status, JobStatus::Unsupported);
                continue;
            }
            assert!(r.status.is_success(), "{} {:?}", r.platform, r.status);
            assert_eq!(r.shards, 2);
            assert!(r.cut_fraction.unwrap() > 0.0);
            assert!(r.counters.inter_shard_messages > 0, "{}", r.platform);
        }
    }

    #[test]
    fn empty_selections_resolve_to_full_suite() {
        let runner = Runner::new(BenchmarkConfig::default(), RunnerMode::Analytic);
        assert_eq!(runner.platforms().unwrap().len(), 6);
        assert_eq!(runner.description().unwrap().len(), BenchmarkDescription::full().len());
    }

    #[test]
    fn analytic_run_over_selection() {
        let config = BenchmarkConfig::parse(
            "benchmark.datasets = R4\nbenchmark.algorithms = sssp\n",
        )
        .unwrap();
        let runner = Runner::new(config, RunnerMode::Analytic);
        let db = runner.run().unwrap();
        assert_eq!(db.len(), 6, "one job per platform");
        assert!(db.success_rate() > 0.5);
    }

    #[test]
    fn unknown_platform_is_rejected() {
        let config =
            BenchmarkConfig::parse("benchmark.platforms = quantum\n").unwrap();
        let runner = Runner::new(config, RunnerMode::Analytic);
        let err = runner.platforms().err().unwrap();
        assert!(matches!(err, Error::UnknownPlatform(ref n) if n == "quantum"), "{err}");
        // run() surfaces the same error instead of panicking mid-benchmark.
        assert!(runner.run().is_err());
    }

    #[test]
    fn unknown_dataset_fails_run_up_front() {
        let config = BenchmarkConfig::parse("benchmark.datasets = R99\n").unwrap();
        let runner = Runner::new(config, RunnerMode::Analytic);
        let err = runner.run().err().unwrap();
        assert!(matches!(err, Error::UnknownDataset(ref id) if id == "R99"), "{err}");
    }
}
