//! Benchmark configuration in Java-`.properties` style.
//!
//! The real Graphalytics harness is configured through `.properties`
//! files (`benchmark.name = ...`, `graph.<name>.vertex-file = ...`). This
//! module implements the format — `key = value` pairs with `#`/`!`
//! comments, dotted keys, and `\`-continuations — plus the typed
//! [`BenchmarkConfig`] the harness consumes (requirement R5's "benchmark
//! user may select a subset of the Graphalytics workload", Section 2.5).

use std::collections::BTreeMap;

use graphalytics_core::error::{Error, Result};
use graphalytics_core::Algorithm;

/// A parsed properties file: ordered key → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Properties {
    entries: BTreeMap<String, String>,
}

impl Properties {
    /// Parses properties text.
    pub fn parse(text: &str) -> Result<Properties> {
        let mut entries = BTreeMap::new();
        let mut pending = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim_start();
            if pending.is_empty() && (line.is_empty() || line.starts_with('#') || line.starts_with('!')) {
                continue;
            }
            let mut combined = std::mem::take(&mut pending);
            combined.push_str(line.trim_end());
            if combined.ends_with('\\') {
                combined.pop();
                pending = combined;
                continue;
            }
            let (key, value) = combined.split_once('=').ok_or_else(|| Error::Parse {
                file: "<properties>".into(),
                line: lineno as u64 + 1,
                message: format!("expected `key = value`, got {combined:?}"),
            })?;
            let key = key.trim().to_string();
            if key.is_empty() {
                return Err(Error::Parse {
                    file: "<properties>".into(),
                    line: lineno as u64 + 1,
                    message: "empty key".into(),
                });
            }
            entries.insert(key, value.trim().to_string());
        }
        if !pending.is_empty() {
            return Err(Error::Parse {
                file: "<properties>".into(),
                line: 0,
                message: "dangling line continuation".into(),
            });
        }
        Ok(Properties { entries })
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Typed lookup with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.entries.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                Error::InvalidParameters(format!("property {key}={v} has the wrong type"))
            }),
        }
    }

    /// Comma-separated list lookup.
    pub fn get_list(&self, key: &str) -> Vec<String> {
        self.entries
            .get(key)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The harness-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkConfig {
    /// Benchmark run name.
    pub name: String,
    /// Platform subset (model names or paper analogues); empty = all six.
    pub platforms: Vec<String>,
    /// Dataset subset (registry ids); empty = the experiment's default.
    pub datasets: Vec<String>,
    /// Algorithm subset; empty = the experiment's default.
    pub algorithms: Vec<Algorithm>,
    /// Divide published dataset sizes by this factor when materializing
    /// proxy graphs for measured runs.
    pub scale_divisor: u64,
    /// Repetitions for variability experiments.
    pub repetitions: u32,
    /// Execution shards for measured runs (1 = monolithic; clamped to at
    /// least 1). Platforms without a sharded run path report sharded jobs
    /// as unsupported.
    pub shards: u32,
    /// Base RNG seed for generation and simulated noise.
    pub seed: u64,
    /// Worker-pool width for *real* (measured) execution and proxy CSR
    /// builds; `0` sizes the pool from available parallelism. One pool is
    /// created per benchmark run and shared by every job — never per
    /// call. Distinct from the *simulated* `threads_per_machine` of the
    /// cluster spec.
    pub threads: u32,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            name: "graphalytics".into(),
            platforms: Vec::new(),
            datasets: Vec::new(),
            algorithms: Vec::new(),
            scale_divisor: 1,
            repetitions: 10,
            shards: 1,
            seed: 0xB5ED,
            threads: 0,
        }
    }
}

impl BenchmarkConfig {
    /// Builds a config from parsed properties. Recognized keys:
    /// `benchmark.name`, `benchmark.platforms`, `benchmark.datasets`,
    /// `benchmark.algorithms`, `benchmark.scale-divisor`,
    /// `benchmark.repetitions`, `benchmark.shards`, `benchmark.seed`,
    /// `benchmark.threads`.
    pub fn from_properties(props: &Properties) -> Result<BenchmarkConfig> {
        let defaults = BenchmarkConfig::default();
        let algorithms = props
            .get_list("benchmark.algorithms")
            .iter()
            .map(|a| {
                Algorithm::from_acronym(a)
                    .ok_or_else(|| Error::InvalidParameters(format!("unknown algorithm {a}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(BenchmarkConfig {
            name: props.get("benchmark.name").unwrap_or(&defaults.name).to_string(),
            platforms: props.get_list("benchmark.platforms"),
            datasets: props.get_list("benchmark.datasets"),
            algorithms,
            scale_divisor: props.get_or("benchmark.scale-divisor", defaults.scale_divisor)?,
            repetitions: props.get_or("benchmark.repetitions", defaults.repetitions)?,
            shards: props.get_or::<u32>("benchmark.shards", defaults.shards)?.max(1),
            seed: props.get_or("benchmark.seed", defaults.seed)?,
            threads: props.get_or("benchmark.threads", defaults.threads)?,
        })
    }

    /// The configured worker-pool width (`0` resolves to the host
    /// default).
    pub fn pool_threads(&self) -> u32 {
        if self.threads == 0 {
            graphalytics_core::pool::default_threads()
        } else {
            self.threads
        }
    }

    /// Parses a config from properties text.
    pub fn parse(text: &str) -> Result<BenchmarkConfig> {
        BenchmarkConfig::from_properties(&Properties::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_properties() {
        let p = Properties::parse(
            "# comment\nbenchmark.name = trial\n! bang comment\n\nbenchmark.repetitions = 5\n",
        )
        .unwrap();
        assert_eq!(p.get("benchmark.name"), Some("trial"));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn line_continuations() {
        let p = Properties::parse("benchmark.datasets = R1, \\\n  R2, R3\n").unwrap();
        assert_eq!(p.get_list("benchmark.datasets"), vec!["R1", "R2", "R3"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Properties::parse("no equals sign\n").is_err());
        assert!(Properties::parse(" = value\n").is_err());
        assert!(Properties::parse("key = trailing \\").is_err());
    }

    #[test]
    fn config_round_trip() {
        let cfg = BenchmarkConfig::parse(
            "benchmark.name = weekly\nbenchmark.platforms = spmv, native\n\
             benchmark.algorithms = bfs, pr\nbenchmark.scale-divisor = 100\n\
             benchmark.seed = 7\nbenchmark.threads = 3\nbenchmark.shards = 4\n",
        )
        .unwrap();
        assert_eq!(cfg.name, "weekly");
        assert_eq!(cfg.platforms, vec!["spmv", "native"]);
        assert_eq!(cfg.algorithms, vec![Algorithm::Bfs, Algorithm::PageRank]);
        assert_eq!(cfg.scale_divisor, 100);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.repetitions, 10, "default preserved");
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.pool_threads(), 3);
        assert_eq!(cfg.shards, 4);
    }

    #[test]
    fn shards_default_and_clamp() {
        assert_eq!(BenchmarkConfig::default().shards, 1);
        let cfg = BenchmarkConfig::parse("benchmark.shards = 0\n").unwrap();
        assert_eq!(cfg.shards, 1, "zero shards clamps to monolithic");
    }

    #[test]
    fn zero_threads_resolves_to_host_default() {
        let cfg = BenchmarkConfig::default();
        assert_eq!(cfg.threads, 0);
        assert!(cfg.pool_threads() >= 1);
    }

    #[test]
    fn bad_types_are_errors() {
        assert!(BenchmarkConfig::parse("benchmark.scale-divisor = soon\n").is_err());
        assert!(BenchmarkConfig::parse("benchmark.algorithms = bfs, zoom\n").is_err());
    }
}
