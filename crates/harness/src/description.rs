//! The benchmark description: datasets × algorithms × parameters.
//!
//! "The Graphalytics team provides a benchmark description ... definitions
//! of the algorithms, the datasets, and the algorithm parameters for each
//! graph (e.g., the root for BFS or number of iterations for PR)"
//! (Section 2.5, component 1 of Figure 1).

use graphalytics_core::datasets::{all_datasets, DatasetSpec};
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::{Algorithm, Csr, Error, Result};

/// One benchmark job blueprint: an algorithm on a dataset.
#[derive(Debug, Clone)]
pub struct JobDescription {
    pub dataset: &'static DatasetSpec,
    pub algorithm: Algorithm,
}

impl JobDescription {
    /// Resolves the per-dataset algorithm parameters against a
    /// materialized graph (roots are structural selections, so they need
    /// the concrete instance).
    pub fn params_for(&self, csr: &Csr) -> AlgorithmParams {
        AlgorithmParams {
            source_vertex: self.dataset.source.resolve(csr),
            pagerank_iterations: self.dataset.pagerank_iterations,
            damping_factor: 0.85,
            cdlp_iterations: self.dataset.cdlp_iterations,
        }
    }

    /// Parameters for analytic-mode runs (no materialized graph; the root
    /// is irrelevant to counter estimation).
    pub fn params_analytic(&self) -> AlgorithmParams {
        AlgorithmParams {
            source_vertex: None,
            pagerank_iterations: self.dataset.pagerank_iterations,
            damping_factor: 0.85,
            cdlp_iterations: self.dataset.cdlp_iterations,
        }
    }
}

/// A full benchmark description.
#[derive(Debug, Clone, Default)]
pub struct BenchmarkDescription {
    pub jobs: Vec<JobDescription>,
}

impl BenchmarkDescription {
    /// The complete workload: every algorithm on every dataset (SSSP only
    /// on weighted datasets).
    pub fn full() -> Self {
        let mut jobs = Vec::new();
        for dataset in all_datasets() {
            for algorithm in Algorithm::ALL {
                if algorithm.needs_weights() && !dataset.weighted {
                    continue;
                }
                jobs.push(JobDescription { dataset, algorithm });
            }
        }
        BenchmarkDescription { jobs }
    }

    /// A selection of algorithms over a selection of dataset ids.
    ///
    /// Rejects ids that are not in the registry with
    /// [`Error::UnknownDataset`] — the service and the config-driven runner
    /// must refuse bad requests rather than die.
    pub fn selection(dataset_ids: &[&str], algorithms: &[Algorithm]) -> Result<Self> {
        let mut jobs = Vec::new();
        for id in dataset_ids {
            let dataset = graphalytics_core::datasets::dataset(id)
                .ok_or_else(|| Error::UnknownDataset(id.to_string()))?;
            for &algorithm in algorithms {
                if algorithm.needs_weights() && !dataset.weighted {
                    continue;
                }
                jobs.push(JobDescription { dataset, algorithm });
            }
        }
        Ok(BenchmarkDescription { jobs })
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the description is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_description_covers_everything_runnable() {
        let d = BenchmarkDescription::full();
        // 16 datasets × 5 unweighted algorithms + weighted ones × SSSP.
        let weighted = all_datasets().iter().filter(|d| d.weighted).count();
        assert_eq!(d.len(), 16 * 5 + weighted);
        assert!(!d.is_empty());
        assert!(d.jobs.iter().all(|j| j.algorithm != Algorithm::Sssp || j.dataset.weighted));
    }

    #[test]
    fn selection_filters_sssp_on_unweighted() {
        let d = BenchmarkDescription::selection(&["G22"], &[Algorithm::Bfs, Algorithm::Sssp])
            .unwrap();
        assert_eq!(d.len(), 1, "G22 is unweighted; SSSP dropped");
    }

    #[test]
    fn params_resolve_root() {
        use graphalytics_core::GraphBuilder;
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(3);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let csr = b.build().unwrap().to_csr();
        let d = BenchmarkDescription::selection(&["R1"], &[Algorithm::Bfs]).unwrap();
        let params = d.jobs[0].params_for(&csr);
        assert_eq!(params.source_vertex, Some(1), "max out-degree root");
        assert_eq!(params.pagerank_iterations, 10);
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        let err = BenchmarkDescription::selection(&["R99"], &[Algorithm::Bfs]).unwrap_err();
        assert!(matches!(err, Error::UnknownDataset(ref id) if id == "R99"), "{err}");
    }
}
