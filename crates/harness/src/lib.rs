//! # graphalytics-harness
//!
//! The Graphalytics test harness (Figure 1 of the paper): it consumes a
//! benchmark description and configuration, orchestrates drivers over the
//! system under test, enforces the SLA, validates outputs against the
//! reference implementations, collects Granula archives, stores results,
//! and renders the paper's tables and figures.
//!
//! * [`config`] — `.properties`-style benchmark configuration files;
//! * [`description`] — the benchmark description: which algorithms run on
//!   which datasets with which parameters (component 1 in Figure 1);
//! * [`proxy`] — materializes structure-matched stand-in graphs for the
//!   registry datasets at a configurable fraction of the published size;
//! * [`driver`] — runs one job (platform × dataset × algorithm × cluster):
//!   memory admission, execution or analytic estimation, cost-model
//!   timing, SLA verdict, Granula archive;
//! * [`metrics`] — EPS/EVPS/speedup/slowdown/coefficient-of-variation;
//! * [`survey`] — the two-stage workload selection process and the
//!   Table 1 survey data behind it;
//! * [`experiments`] — the eight-experiment suite of Table 6;
//! * [`results`] — the results database with JSON export;
//! * [`report`] — text renderers for every table and figure.

pub mod config;
pub mod description;
pub mod driver;
pub mod experiments;
pub mod metrics;
pub mod proxy;
pub mod report;
pub mod results;
pub mod runner;
pub mod survey;

pub use config::BenchmarkConfig;
pub use description::BenchmarkDescription;
pub use driver::{
    Driver, JobResult, JobSpec, JobStatus, MutationScript, MutationSummary, RunMeasurement,
    RunMode,
};
pub use results::ResultsDatabase;
pub use runner::{Runner, RunnerMode};

/// The benchmark SLA: a job must complete with a makespan of at most one
/// hour (Section 2.3).
pub const SLA_MAKESPAN_SECS: f64 = 3600.0;
