//! Benchmark metrics (Section 2.3).
//!
//! * **EPS** — edges per second: `|E| / T_proc`;
//! * **EVPS** — edges and vertices per second: `(|V| + |E|) / T_proc`
//!   (closely related to the scale, since `|V| + |E| = 10^scale`);
//! * **speedup** — `T_proc(baseline) / T_proc(scaled)`; the baseline is
//!   the minimum resource configuration the platform completes;
//! * **slowdown** — the inverse, used by the weak-scalability experiment;
//! * **CV** — coefficient of variation of repeated runs: `σ / μ`, scale
//!   independent.

/// Edges per second.
pub fn eps(edges: u64, tproc_secs: f64) -> f64 {
    if tproc_secs <= 0.0 {
        return f64::INFINITY;
    }
    edges as f64 / tproc_secs
}

/// Edges and vertices per second.
pub fn evps(vertices: u64, edges: u64, tproc_secs: f64) -> f64 {
    if tproc_secs <= 0.0 {
        return f64::INFINITY;
    }
    (vertices + edges) as f64 / tproc_secs
}

/// Speedup of `scaled` relative to `baseline`.
pub fn speedup(baseline_secs: f64, scaled_secs: f64) -> f64 {
    if scaled_secs <= 0.0 {
        return f64::INFINITY;
    }
    baseline_secs / scaled_secs
}

/// Slowdown (inverse speedup), as used in Section 4.5.
pub fn slowdown(baseline_secs: f64, scaled_secs: f64) -> f64 {
    if baseline_secs <= 0.0 {
        return f64::INFINITY;
    }
    scaled_secs / baseline_secs
}

/// Sample mean.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Coefficient of variation (population standard deviation over mean).
pub fn coefficient_of_variation(samples: &[f64]) -> f64 {
    let m = mean(samples);
    if samples.len() < 2 || m == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64;
    var.sqrt() / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_metrics() {
        assert_eq!(eps(1_000_000, 2.0), 500_000.0);
        assert_eq!(evps(500_000, 1_000_000, 1.5), 1_000_000.0);
        assert!(eps(10, 0.0).is_infinite());
    }

    #[test]
    fn speedup_and_slowdown_are_inverses() {
        let s = speedup(10.0, 2.5);
        assert_eq!(s, 4.0);
        assert_eq!(slowdown(10.0, 2.5), 0.25);
        assert!((s * slowdown(10.0, 2.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv_is_scale_independent() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b: Vec<f64> = a.iter().map(|x| x * 1000.0).collect();
        let cva = coefficient_of_variation(&a);
        let cvb = coefficient_of_variation(&b);
        assert!((cva - cvb).abs() < 1e-12);
        assert!(cva > 0.0 && cva < 0.1);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[5.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
