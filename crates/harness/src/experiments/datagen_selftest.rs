//! Data-generation self-test (Section 4.8, Figure 10).
//!
//! Evaluates Datagen's new (v0.2.6) execution flow against the old
//! (v0.2.1) one on the DAS-4 cost model: execution time versus scale
//! factor for a 16-machine cluster (Figure 10 left) and versus cluster
//! size for the new flow (Figure 10 right). Scale factors are "the
//! approximate number of generated edges in millions".
//!
//! Small scale factors additionally run *for real* (both flows execute
//! and must produce identical graphs); paper-scale factors (up to SF
//! 10000 = 10 billion edges) use the analytic record counts through the
//! identical cost formulas.

use graphalytics_datagen::degree::persons_for_edges;
use graphalytics_datagen::flow::analytic_sim_seconds;
use graphalytics_datagen::{FlowKind, HadoopCluster};

use crate::report::{fmt_secs, TextTable};

/// Scale factors of Figure 10 (left).
pub const SCALE_FACTORS: [f64; 5] = [30.0, 100.0, 300.0, 1000.0, 3000.0];

/// Cluster sizes of Figure 10 (right).
pub const CLUSTER_SIZES: [u32; 3] = [4, 8, 16];

/// One row of the flow comparison.
pub struct FlowComparison {
    pub scale_factor: f64,
    pub old_secs: f64,
    pub new_secs: f64,
}

impl FlowComparison {
    /// Speedup of the new flow over the old.
    pub fn speedup(&self) -> f64 {
        self.old_secs / self.new_secs
    }
}

/// Figure 10 (left): v0.2.1 vs v0.2.6 on 16 machines across scale
/// factors.
pub fn flow_comparison() -> Vec<FlowComparison> {
    let cluster = HadoopCluster::das4(16);
    SCALE_FACTORS
        .iter()
        .map(|&sf| {
            let persons = persons_for_edges((sf * 1.0e6) as u64);
            FlowComparison {
                scale_factor: sf,
                old_secs: analytic_sim_seconds(persons, FlowKind::Old, &cluster),
                new_secs: analytic_sim_seconds(persons, FlowKind::New, &cluster),
            }
        })
        .collect()
}

/// Figure 10 (right): v0.2.6 across cluster sizes and scale factors.
pub fn cluster_scaling() -> Vec<(u32, Vec<(f64, f64)>)> {
    CLUSTER_SIZES
        .iter()
        .map(|&machines| {
            let cluster = HadoopCluster::das4(machines);
            let curve = SCALE_FACTORS
                .iter()
                .map(|&sf| {
                    let persons = persons_for_edges((sf * 1.0e6) as u64);
                    (sf, analytic_sim_seconds(persons, FlowKind::New, &cluster))
                })
                .collect();
            (machines, curve)
        })
        .collect()
}

/// Renders both panels of Figure 10.
pub fn render_fig10() -> String {
    let mut out = String::new();
    let mut left = TextTable::new(
        "Figure 10 (left): Datagen execution time, 16 machines",
        &["SF (M edges)", "v0.2.1 (old)", "v0.2.6 (new)", "speedup"],
    );
    for row in flow_comparison() {
        left.add_row(vec![
            format!("{:.0}", row.scale_factor),
            fmt_secs(row.old_secs),
            fmt_secs(row.new_secs),
            format!("{:.2}x", row.speedup()),
        ]);
    }
    out.push_str(&left.render());
    out.push('\n');

    let mut right = TextTable::new(
        "Figure 10 (right): Datagen v0.2.6 execution time vs cluster size",
        &["SF (M edges)", "4 machines", "8 machines", "16 machines"],
    );
    let curves = cluster_scaling();
    for (i, &sf) in SCALE_FACTORS.iter().enumerate() {
        right.add_row(vec![
            format!("{sf:.0}"),
            fmt_secs(curves[0].1[i].1),
            fmt_secs(curves[1].1[i].1),
            fmt_secs(curves[2].1[i].1),
        ]);
    }
    out.push_str(&right.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_flow_wins_and_speedup_grows_with_scale() {
        let rows = flow_comparison();
        for row in &rows {
            assert!(
                row.speedup() > 1.0,
                "SF {}: new flow must win ({:.0}s vs {:.0}s)",
                row.scale_factor,
                row.old_secs,
                row.new_secs
            );
        }
        // Paper: speedups 1.16x → 2.9x, increasing with scale factor.
        assert!(rows.last().unwrap().speedup() > rows.first().unwrap().speedup());
        assert!(rows[0].speedup() < 2.0, "SF30 speedup modest: {:.2}", rows[0].speedup());
        assert!(
            rows.last().unwrap().speedup() > 1.8,
            "SF3000 speedup substantial: {:.2}",
            rows.last().unwrap().speedup()
        );
    }

    #[test]
    fn sf1000_on_16_machines_lands_near_paper() {
        // Paper: v0.2.6 generates a billion-edge graph in ≈44 minutes on
        // 16 machines; v0.2.1 needed ≈95 minutes. Accept ±40%.
        let row = flow_comparison().into_iter().find(|r| r.scale_factor == 1000.0).unwrap();
        let new_min = row.new_secs / 60.0;
        let old_min = row.old_secs / 60.0;
        assert!((26.0..=62.0).contains(&new_min), "new flow {new_min:.0} min");
        assert!((57.0..=133.0).contains(&old_min), "old flow {old_min:.0} min");
    }

    #[test]
    fn horizontal_scaling_improves_with_scale_factor() {
        // Paper: 4→16 machine speedup grows from 1.1 (SF30) to 3.0
        // (SF1000).
        let curves = cluster_scaling();
        let four = &curves[0].1;
        let sixteen = &curves[2].1;
        let speedup_at = |i: usize| four[i].1 / sixteen[i].1;
        let s30 = speedup_at(0);
        let s1000 = speedup_at(3);
        assert!(s1000 > s30, "scaling improves: SF30 {s30:.2} vs SF1000 {s1000:.2}");
        assert!(s30 < 2.8, "SF30 cluster speedup stays modest: {s30:.2}");
        assert!(s1000 > 1.8);
        assert!(render_fig10().contains("v0.2.6"));
    }
}
