//! Vertical scalability (Section 4.3, Figure 7, Table 9).
//!
//! BFS and PageRank on D300(L), one machine, 1–32 threads. The paper's
//! findings: all platforms gain from more cores, only PGX.D and GraphMat
//! approach optimal efficiency, and Hyper-Threading (17–32 threads) adds
//! little.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::JobResult;
use crate::report::{fmt_secs, fmt_speedup, TextTable};

use super::ExperimentSuite;

/// Thread counts of the sweep.
pub const THREADS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Results: per algorithm, per platform, T_proc at each thread count.
pub struct VerticalScalability {
    pub platforms: Vec<String>,
    /// `(algorithm, platform-major results[platform][thread_idx])`.
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the sweep (analytic mode, no noise recommended for speedups).
pub fn run(suite: &ExperimentSuite) -> VerticalScalability {
    let dataset = graphalytics_core::datasets::dataset("D300").unwrap();
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = THREADS
                .iter()
                .map(|&t| {
                    suite.run_analytic(
                        p.as_ref(),
                        dataset,
                        algorithm,
                        ClusterSpec::single_machine_threads(t),
                        0,
                    )
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    VerticalScalability { platforms: suite.platform_labels(), curves }
}

impl VerticalScalability {
    /// Figure 7: T_proc vs thread count.
    pub fn render_fig7(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(THREADS.iter().map(|t| format!("{t}t")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 7 ({algorithm}): Tproc vs threads, D300(L)"),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(|r| fmt_secs(r.processing_secs)));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Maximum speedup per platform/algorithm over the 1-thread baseline.
    pub fn max_speedup(&self, algorithm: Algorithm, platform_label: &str) -> f64 {
        let idx = self.platforms.iter().position(|p| p == platform_label).unwrap();
        let results = &self.curves.iter().find(|(a, _)| *a == algorithm).unwrap().1[idx];
        let base = results[0].processing_secs;
        results
            .iter()
            .map(|r| crate::metrics::speedup(base, r.processing_secs))
            .fold(0.0, f64::max)
    }

    /// Table 9: max vertical speedups.
    pub fn render_table9(&self) -> String {
        let mut headers = vec!["alg".to_string()];
        headers.extend(self.platforms.clone());
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            "Table 9: vertical speedup on D300(L), 1-32 threads, 1 machine",
            &headers_ref,
        );
        for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
            let mut cells = vec![algorithm.acronym().to_uppercase()];
            for label in &self.platforms {
                cells.push(fmt_speedup(self.max_speedup(algorithm, label)));
            }
            table.add_row(cells);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shape_matches_table9() {
        let suite = ExperimentSuite::without_noise();
        let v = run(&suite);
        // Paper Table 9: PGX.D scales best (15.0 BFS / 13.9 PR);
        // GraphX worst (4.5 / 2.9).
        let pgxd_bfs = v.max_speedup(Algorithm::Bfs, "PGX.D");
        let graphx_bfs = v.max_speedup(Algorithm::Bfs, "GraphX");
        assert!(pgxd_bfs > 11.0, "PGX.D BFS speedup {pgxd_bfs:.1}");
        assert!(graphx_bfs < 7.0, "GraphX BFS speedup {graphx_bfs:.1}");
        assert!(pgxd_bfs > graphx_bfs + 4.0);
        for label in v.platforms.clone() {
            for alg in [Algorithm::Bfs, Algorithm::PageRank] {
                let s = v.max_speedup(alg, &label);
                assert!((1.5..=20.0).contains(&s), "{label} {alg}: {s:.1}");
            }
        }
        assert!(v.render_table9().contains("Table 9"));
        assert!(v.render_fig7().contains("32t"));
    }

    #[test]
    fn hyperthreading_gains_are_minor() {
        let suite = ExperimentSuite::without_noise();
        let v = run(&suite);
        for (_, per_platform) in &v.curves {
            for results in per_platform {
                let t16 = results[4].processing_secs;
                let t32 = results[5].processing_secs;
                assert!(t32 <= t16 * 1.01, "more threads never hurt");
                assert!(t32 > t16 * 0.75, "HT gain must be minor: {t16} -> {t32}");
            }
        }
    }

    #[test]
    fn monotone_thread_scaling() {
        let suite = ExperimentSuite::without_noise();
        let v = run(&suite);
        for (_, per_platform) in &v.curves {
            for results in per_platform {
                for w in results.windows(2) {
                    assert!(w[1].processing_secs <= w[0].processing_secs * 1.01);
                }
            }
        }
    }
}
