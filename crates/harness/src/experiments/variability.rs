//! Performance variability (Section 4.7, Table 11).
//!
//! BFS repeated 10 times: on D300(L) with one machine for all platforms,
//! and on D1000(XL) with 16 machines for the distributed platforms.
//! Reports mean T_proc and the coefficient of variation. Paper findings:
//! every platform stays within CV ≤ 10%; GraphMat and PGX.D have the
//! highest relative variability but tiny absolute deviations.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::metrics::{coefficient_of_variation, mean};
use crate::report::{fmt_secs, TextTable};

use super::ExperimentSuite;

/// Repetitions (n = 10 in the paper).
pub const REPETITIONS: u64 = 10;

/// Mean/CV per platform for one configuration.
pub struct VariabilityRow {
    pub platform: String,
    pub mean_secs: Option<f64>,
    pub cv: Option<f64>,
}

/// Results for the single-machine (S) and distributed (D) configurations.
pub struct Variability {
    pub single: Vec<VariabilityRow>,
    pub distributed: Vec<VariabilityRow>,
}

/// Runs the experiment (noise must be enabled on the suite's driver —
/// variability is exactly what is being measured).
pub fn run(suite: &ExperimentSuite) -> Variability {
    let measure = |dataset_id: &str, cluster: ClusterSpec| -> Vec<VariabilityRow> {
        let dataset = graphalytics_core::datasets::dataset(dataset_id).unwrap();
        suite
            .platforms
            .iter()
            .map(|p| {
                let samples: Vec<f64> = (0..REPETITIONS)
                    .map(|i| suite.run_analytic(p.as_ref(), dataset, Algorithm::Bfs, cluster, i))
                    .filter(|r| r.status.is_success())
                    .map(|r| r.processing_secs)
                    .collect();
                if samples.len() == REPETITIONS as usize {
                    VariabilityRow {
                        platform: p.profile().paper_analog.to_string(),
                        mean_secs: Some(mean(&samples)),
                        cv: Some(coefficient_of_variation(&samples)),
                    }
                } else {
                    VariabilityRow {
                        platform: p.profile().paper_analog.to_string(),
                        mean_secs: None,
                        cv: None,
                    }
                }
            })
            .collect()
    };
    Variability {
        single: measure("D300", ClusterSpec::single_machine()),
        distributed: measure("D1000", ClusterSpec::das5(16)),
    }
}

/// Table 11 rendering.
pub fn render_table11(v: &Variability) -> String {
    let mut table = TextTable::new(
        "Table 11: Tproc mean and CV, BFS, n = 10 (S: D300 on 1 node; D: D1000 on 16 nodes)",
        &["config", "metric", "Giraph", "GraphX", "P'graph", "GraphMat", "OpenG", "PGX.D"],
    );
    for (config, rows) in [("S", &v.single), ("D", &v.distributed)] {
        let mut means = vec![config.to_string(), "Mean".to_string()];
        let mut cvs = vec![config.to_string(), "CV".to_string()];
        for row in rows.iter() {
            means.push(row.mean_secs.map(fmt_secs).unwrap_or_else(|| "-".into()));
            cvs.push(row.cv.map(|c| format!("{:.1}%", 100.0 * c)).unwrap_or_else(|| "-".into()));
        }
        table.add_row(means);
        table.add_row(cvs);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cvs_within_ten_percent() {
        let suite = ExperimentSuite::new(); // noise on
        let v = run(&suite);
        for row in v.single.iter().chain(&v.distributed) {
            if let Some(cv) = row.cv {
                assert!(cv <= 0.14, "{}: CV {:.3} too high", row.platform, cv);
            }
        }
    }

    #[test]
    fn graphmat_most_variable_single_machine() {
        // Paper Table 11: GraphMat 9.7% and PGX.D 8.2% lead the S column.
        let suite = ExperimentSuite::new();
        let v = run(&suite);
        let cv_of = |platform: &str| {
            v.single.iter().find(|r| r.platform == platform).unwrap().cv.unwrap()
        };
        assert!(cv_of("GraphMat") > cv_of("PowerGraph"));
        assert!(cv_of("PGX.D") > cv_of("GraphX"));
    }

    #[test]
    fn openg_has_no_distributed_column() {
        let suite = ExperimentSuite::new();
        let v = run(&suite);
        let openg = v.distributed.iter().find(|r| r.platform == "OpenG").unwrap();
        assert!(openg.cv.is_none());
        assert!(render_table11(&v).contains('-'));
    }

    #[test]
    fn absolute_deviation_small_for_fast_engines() {
        // "due to their much smaller mean, the absolute variability is
        // small": GraphMat's σ in seconds stays below Giraph's.
        let suite = ExperimentSuite::new();
        let v = run(&suite);
        let sigma = |platform: &str| {
            let r = v.single.iter().find(|r| r.platform == platform).unwrap();
            r.mean_secs.unwrap() * r.cv.unwrap()
        };
        assert!(sigma("GraphMat") < sigma("Giraph"));
    }
}
