//! Weak horizontal scalability (Section 4.5, Figure 9).
//!
//! BFS and PageRank on the Graph500 series G22(S)–G26(XL) with 1–16
//! machines: each doubling of machines doubles the graph, so per-machine
//! work is constant and ideal T_proc is flat. Paper findings: nobody is
//! ideal; Giraph dips at 2 machines then scales well; GraphMat and
//! PowerGraph scale reasonably; GraphX poorly; PGX.D hits memory limits.

use std::sync::Arc;

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::{JobResult, JobSpec, RunMode};
use crate::proxy;
use crate::report::{tproc_cell, TextTable};

use super::ExperimentSuite;

/// The (machines, dataset) ladder: G22 on 1 machine up to G26 on 16.
pub const LADDER: [(u32, &str); 5] = [(1, "G22"), (2, "G23"), (4, "G24"), (8, "G25"), (16, "G26")];

/// Shard counts of the measured ladder.
pub const SHARD_LADDER: [u32; 3] = [1, 2, 4];

/// Results per algorithm per platform along the ladder.
pub struct WeakScalability {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the ladder.
pub fn run(suite: &ExperimentSuite) -> WeakScalability {
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = LADDER
                .iter()
                .map(|&(m, ds)| {
                    let dataset = graphalytics_core::datasets::dataset(ds).unwrap();
                    suite.run_analytic(p.as_ref(), dataset, algorithm, ClusterSpec::das5(m), 0)
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    WeakScalability { platforms: suite.platform_labels(), curves }
}

impl WeakScalability {
    /// Figure 9: T_proc along the weak-scaling ladder.
    pub fn render_fig9(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(LADDER.iter().map(|(m, ds)| format!("{ds}@{m}m")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 9 ({algorithm}): Tproc, weak scaling G22-G26"),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Maximum slowdown relative to the single-machine start of the
    /// ladder (the paper's metric).
    pub fn max_slowdown(&self, algorithm: Algorithm, platform_label: &str) -> Option<f64> {
        let idx = self.platforms.iter().position(|p| p == platform_label)?;
        let results = &self.curves.iter().find(|(a, _)| *a == algorithm)?.1[idx];
        if !results[0].status.is_success() {
            return None;
        }
        let base = results[0].processing_secs;
        results
            .iter()
            .filter(|r| r.status.is_success())
            .map(|r| crate::metrics::slowdown(base, r.processing_secs))
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }
}

/// *Measured* weak scaling over execution shards: each doubling of the
/// shard count doubles the G22 proxy (the scale divisor halves), so
/// per-shard work stays constant — the measured analogue of the G22–G26
/// machine ladder, executed for real through the sharded upload path.
pub struct MeasuredWeak {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the measured ladder. The rung at `shards = s` uses a G22 proxy
/// scaled down by `base_divisor / s`. Platforms without a sharded run
/// path report the multi-shard rungs as unsupported.
pub fn run_measured(suite: &ExperimentSuite, base_divisor: u64) -> MeasuredWeak {
    let dataset = graphalytics_core::datasets::dataset("G22").unwrap();
    let pool = &suite.driver.pool;
    let rungs: Vec<(u32, Arc<graphalytics_core::Csr>)> = SHARD_LADDER
        .iter()
        .map(|&shards| {
            let divisor = (base_divisor / shards as u64).max(1);
            let graph = proxy::materialize_with(dataset, divisor, suite.driver.seed, pool);
            (shards, Arc::new(graph.to_csr_with(pool).expect("proxy CSR build")))
        })
        .collect();
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = rungs
                .iter()
                .map(|(shards, csr)| {
                    let spec = JobSpec {
                        dataset,
                        algorithm,
                        cluster: ClusterSpec::single_machine(),
                        run_index: 0,
                        repetitions: 1,
                        shards: *shards,
                        mutations: None,
                        timeout_secs: None,
                    };
                    suite.driver.run(p.as_ref(), &spec, RunMode::Measured { csr })
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    MeasuredWeak { platforms: suite.platform_labels(), curves }
}

impl MeasuredWeak {
    /// Figure 9 (measured): T_proc and inter-shard message volume along
    /// the shard ladder, rendered alongside the cost-model table.
    pub fn render_fig9_measured(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(SHARD_LADDER.iter().map(|s| format!("{s}sh Tproc")));
            headers.extend(SHARD_LADDER.iter().map(|s| format!("{s}sh ism")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "Figure 9 ({algorithm}, measured): Tproc and inter-shard messages, \
                     weak scaling over shards, G22 proxy series"
                ),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                cells.extend(results.iter().map(|r| {
                    if r.status.is_success() {
                        r.counters.inter_shard_messages.to_string()
                    } else {
                        r.status.figure_mark().to_string()
                    }
                }));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Results for one platform/algorithm.
    pub fn curve(&self, algorithm: Algorithm, platform_label: &str) -> &Vec<JobResult> {
        let idx = self.platforms.iter().position(|p| p == platform_label).unwrap();
        &self.curves.iter().find(|(a, _)| *a == algorithm).unwrap().1[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobody_achieves_ideal_weak_scaling() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        for label in ["Giraph", "GraphX", "PowerGraph", "GraphMat"] {
            let slow = w.max_slowdown(Algorithm::PageRank, label).unwrap();
            assert!(slow > 1.05, "{label}: slowdown {slow:.2} suspiciously ideal");
        }
    }

    #[test]
    fn graphx_scales_worst_of_the_edge_cut_engines() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        let gx = w.max_slowdown(Algorithm::PageRank, "GraphX").unwrap();
        let gm = w.max_slowdown(Algorithm::PageRank, "GraphMat").unwrap();
        assert!(gx > gm, "GraphX {gx:.1} should exceed GraphMat {gm:.1}");
    }

    #[test]
    fn measured_weak_ladder_grows_graph_with_shards() {
        let suite = ExperimentSuite::without_noise();
        let m = run_measured(&suite, 1 << 16);
        let giraph = m.curve(Algorithm::Bfs, "Giraph");
        for (r, &s) in giraph.iter().zip(SHARD_LADDER.iter()) {
            assert!(r.status.is_success(), "{s} shards: {:?}", r.status);
            assert_eq!(r.shards, s);
        }
        // Each rung doubles the proxy: per-shard work stays constant.
        assert!(giraph[1].vertices > giraph[0].vertices);
        assert!(giraph[2].vertices > giraph[1].vertices);
        assert!(giraph[1].counters.inter_shard_messages > 0);
        assert!(giraph[2].counters.inter_shard_messages > 0);
        let text = m.render_fig9_measured();
        assert!(text.contains("weak scaling over shards"), "{text}");
        assert!(text.contains("4sh ism"), "{text}");
    }

    #[test]
    fn renders_with_failures_annotated() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        let text = w.render_fig9();
        assert!(text.contains("G26@16m"));
        // OpenG is single-node: distributed rungs are NA.
        assert!(text.contains("NA"));
    }
}
