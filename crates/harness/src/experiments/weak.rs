//! Weak horizontal scalability (Section 4.5, Figure 9).
//!
//! BFS and PageRank on the Graph500 series G22(S)–G26(XL) with 1–16
//! machines: each doubling of machines doubles the graph, so per-machine
//! work is constant and ideal T_proc is flat. Paper findings: nobody is
//! ideal; Giraph dips at 2 machines then scales well; GraphMat and
//! PowerGraph scale reasonably; GraphX poorly; PGX.D hits memory limits.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::JobResult;
use crate::report::{tproc_cell, TextTable};

use super::ExperimentSuite;

/// The (machines, dataset) ladder: G22 on 1 machine up to G26 on 16.
pub const LADDER: [(u32, &str); 5] = [(1, "G22"), (2, "G23"), (4, "G24"), (8, "G25"), (16, "G26")];

/// Results per algorithm per platform along the ladder.
pub struct WeakScalability {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the ladder.
pub fn run(suite: &ExperimentSuite) -> WeakScalability {
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = LADDER
                .iter()
                .map(|&(m, ds)| {
                    let dataset = graphalytics_core::datasets::dataset(ds).unwrap();
                    suite.run_analytic(p.as_ref(), dataset, algorithm, ClusterSpec::das5(m), 0)
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    WeakScalability { platforms: suite.platform_labels(), curves }
}

impl WeakScalability {
    /// Figure 9: T_proc along the weak-scaling ladder.
    pub fn render_fig9(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(LADDER.iter().map(|(m, ds)| format!("{ds}@{m}m")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 9 ({algorithm}): Tproc, weak scaling G22-G26"),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Maximum slowdown relative to the single-machine start of the
    /// ladder (the paper's metric).
    pub fn max_slowdown(&self, algorithm: Algorithm, platform_label: &str) -> Option<f64> {
        let idx = self.platforms.iter().position(|p| p == platform_label)?;
        let results = &self.curves.iter().find(|(a, _)| *a == algorithm)?.1[idx];
        if !results[0].status.is_success() {
            return None;
        }
        let base = results[0].processing_secs;
        results
            .iter()
            .filter(|r| r.status.is_success())
            .map(|r| crate::metrics::slowdown(base, r.processing_secs))
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobody_achieves_ideal_weak_scaling() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        for label in ["Giraph", "GraphX", "PowerGraph", "GraphMat"] {
            let slow = w.max_slowdown(Algorithm::PageRank, label).unwrap();
            assert!(slow > 1.05, "{label}: slowdown {slow:.2} suspiciously ideal");
        }
    }

    #[test]
    fn graphx_scales_worst_of_the_edge_cut_engines() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        let gx = w.max_slowdown(Algorithm::PageRank, "GraphX").unwrap();
        let gm = w.max_slowdown(Algorithm::PageRank, "GraphMat").unwrap();
        assert!(gx > gm, "GraphX {gx:.1} should exceed GraphMat {gm:.1}");
    }

    #[test]
    fn renders_with_failures_annotated() {
        let suite = ExperimentSuite::without_noise();
        let w = run(&suite);
        let text = w.render_fig9();
        assert!(text.contains("G26@16m"));
        // OpenG is single-node: distributed rungs are NA.
        assert!(text.contains("NA"));
    }
}
