//! Baseline experiment: dataset variety (Section 4.1, Figures 4–5,
//! Table 8).
//!
//! BFS and PageRank on every dataset up to class L, single machine.
//! Reports T_proc per platform (Figure 4), EPS/EVPS (Figure 5), and the
//! makespan/T_proc breakdown for BFS on D300(L) (Table 8).

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::datasets::{datasets_up_to, DatasetSpec};
use graphalytics_core::{Algorithm, SizeClass};

use crate::driver::JobResult;
use crate::report::{fmt_secs, throughput_cell, tproc_cell, TextTable};

use super::ExperimentSuite;

/// Results of the dataset-variety experiment.
pub struct DatasetVariety {
    /// Platform labels (columns).
    pub platforms: Vec<String>,
    /// `(dataset, algorithm, per-platform results)` rows.
    pub rows: Vec<(&'static DatasetSpec, Algorithm, Vec<JobResult>)>,
}

/// Runs BFS + PR over all datasets up to class L on one machine.
pub fn run(suite: &ExperimentSuite) -> DatasetVariety {
    // The paper's Figure 4 shows a representative subset; we run them all.
    let datasets = datasets_up_to(SizeClass::L);
    let mut rows = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        for dataset in &datasets {
            let results = suite
                .platforms
                .iter()
                .map(|p| {
                    suite.run_analytic(
                        p.as_ref(),
                        dataset,
                        algorithm,
                        ClusterSpec::single_machine(),
                        0,
                    )
                })
                .collect();
            rows.push((*dataset, algorithm, results));
        }
    }
    DatasetVariety { platforms: suite.platform_labels(), rows }
}

impl DatasetVariety {
    /// Figure 4: T_proc for BFS and PR across datasets.
    pub fn render_fig4(&self) -> String {
        let mut out = String::new();
        for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
            let mut headers = vec!["dataset".to_string()];
            headers.extend(self.platforms.clone());
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 4 ({}): Tproc, 1 machine", algorithm),
                &headers_ref,
            );
            for (dataset, alg, results) in &self.rows {
                if *alg != algorithm {
                    continue;
                }
                let mut cells = vec![dataset.display_id()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Figure 5: EPS and EVPS for BFS.
    pub fn render_fig5(&self) -> String {
        let mut out = String::new();
        for (metric, f) in [
            ("EPS", Box::new(|r: &JobResult| r.eps()) as Box<dyn Fn(&JobResult) -> f64>),
            ("EVPS", Box::new(|r: &JobResult| r.evps())),
        ] {
            let mut headers = vec!["dataset".to_string()];
            headers.extend(self.platforms.clone());
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table =
                TextTable::new(format!("Figure 5 (BFS): {metric}, 1 machine"), &headers_ref);
            for (dataset, alg, results) in &self.rows {
                if *alg != Algorithm::Bfs {
                    continue;
                }
                let mut cells = vec![dataset.display_id()];
                cells.extend(results.iter().map(|r| throughput_cell(r, f(r))));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Table 8: makespan vs T_proc for BFS on D300(L).
    pub fn render_table8(&self) -> String {
        let mut table = TextTable::new(
            "Table 8: Tproc and makespan for BFS on D300(L)",
            &["time", "Giraph", "GraphX", "P'Graph", "G'Mat(S)", "OpenG", "PGX.D"],
        );
        if let Some((_, _, results)) = self
            .rows
            .iter()
            .find(|(d, a, _)| d.id == "D300" && *a == Algorithm::Bfs)
        {
            let mut makespan = vec!["Makespan".to_string()];
            let mut tproc = vec!["Tproc".to_string()];
            let mut ratio = vec!["Ratio".to_string()];
            for r in results {
                makespan.push(fmt_secs(r.makespan_secs));
                tproc.push(fmt_secs(r.processing_secs));
                ratio.push(format!("{:.1}%", 100.0 * r.processing_secs / r.makespan_secs));
            }
            table.add_row(makespan);
            table.add_row(tproc);
            table.add_row(ratio);
        }
        table.render()
    }

    /// Raw BFS D300 results (for EXPERIMENTS.md paper-vs-model rows).
    pub fn bfs_d300(&self) -> Option<&Vec<JobResult>> {
        self.rows
            .iter()
            .find(|(d, a, _)| d.id == "D300" && *a == Algorithm::Bfs)
            .map(|(_, _, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::JobStatus;

    #[test]
    fn dataset_variety_reproduces_section_4_1_findings() {
        let suite = ExperimentSuite::without_noise();
        let dv = run(&suite);
        // Key finding: GraphMat and PGX.D significantly outperform;
        // Giraph and GraphX are ~2 orders of magnitude slower.
        let results = dv.bfs_d300().expect("D300 BFS present");
        let by = |analog: &str| {
            results.iter().find(|r| r.paper_analog == analog).unwrap().processing_secs
        };
        assert!(by("GraphMat") < by("PowerGraph"));
        assert!(by("PGX.D") < by("PowerGraph"));
        assert!(by("Giraph") > 10.0 * by("GraphMat"));
        assert!(by("GraphX") > 50.0 * by("GraphMat"));
        // Every job on the datasets Figure 4 displays completes on one
        // machine. (The full ≤L sweep includes G25, where GraphX and
        // PGX.D fail exactly as Table 10 prescribes.)
        let fig4 = ["R1", "R2", "R3", "R4", "G23", "D300"];
        for (d, _, results) in &dv.rows {
            if !fig4.contains(&d.id) {
                continue;
            }
            for r in results {
                assert_eq!(r.status, JobStatus::Completed, "{} on {}", r.paper_analog, r.dataset);
            }
        }
        // Tables render.
        assert!(dv.render_fig4().contains("Figure 4"));
        assert!(dv.render_fig5().contains("EVPS"));
        assert!(dv.render_table8().contains("Makespan"));
    }

    #[test]
    fn table8_overhead_shape_matches_paper() {
        // The paper: overhead between 66% and 99.8% of makespan; OpenG
        // and GraphMat have the smallest makespans.
        let suite = ExperimentSuite::without_noise();
        let dv = run(&suite);
        let results = dv.bfs_d300().unwrap();
        for r in results {
            let overhead = 1.0 - r.processing_secs / r.makespan_secs;
            assert!(
                (0.3..1.0).contains(&overhead),
                "{}: overhead {overhead:.2} out of range",
                r.paper_analog
            );
        }
        let makespan = |analog: &str| {
            results.iter().find(|r| r.paper_analog == analog).unwrap().makespan_secs
        };
        assert!(makespan("OpenG") < makespan("Giraph"));
        assert!(makespan("OpenG") < makespan("PGX.D"));
        assert!(makespan("GraphMat") < makespan("GraphX"));
    }
}
