//! The experiment suite of Table 6.
//!
//! Four categories: **baseline** (dataset variety §4.1 + algorithm
//! variety §4.2), **scalability** (vertical §4.3, strong §4.4, weak
//! §4.5), **robustness** (stress test §4.6, variability §4.7), and the
//! **self-test** (data generation §4.8). Each module reproduces one
//! experiment and renders the corresponding paper table/figure.
//!
//! Experiments run in *analytic* mode by default: the engines' counter
//! estimators at the paper-published dataset sizes, costed through the
//! per-engine profiles on the simulated DAS-5 cluster. Measured-mode
//! variants (real execution on scaled-down proxies) are exercised by the
//! integration tests and examples.

pub mod algorithm_variety;
pub mod baseline;
pub mod datagen_selftest;
pub mod stress;
pub mod strong;
pub mod variability;
pub mod vertical;
pub mod weak;

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::datasets::DatasetSpec;
use graphalytics_core::Algorithm;
use graphalytics_engines::{all_platforms, Platform};

use crate::driver::{Driver, JobResult, JobSpec, RunMode};

/// Shared context: the platforms under test and the driver.
pub struct ExperimentSuite {
    pub platforms: Vec<Box<dyn Platform>>,
    pub driver: Driver,
}

impl Default for ExperimentSuite {
    fn default() -> Self {
        ExperimentSuite { platforms: all_platforms(), driver: Driver::default() }
    }
}

impl ExperimentSuite {
    /// A suite over all six platforms with deterministic noise.
    pub fn new() -> Self {
        Self::default()
    }

    /// A suite without simulated noise (used where exact reproducibility
    /// of derived numbers matters more than realism).
    pub fn without_noise() -> Self {
        ExperimentSuite {
            platforms: all_platforms(),
            driver: Driver { noise: false, ..Driver::default() },
        }
    }

    /// Runs one analytic job.
    pub fn run_analytic(
        &self,
        platform: &dyn Platform,
        dataset: &'static DatasetSpec,
        algorithm: Algorithm,
        cluster: ClusterSpec,
        run_index: u64,
    ) -> JobResult {
        let spec = JobSpec { dataset, algorithm, cluster, run_index, repetitions: 1, shards: 1, mutations: None, timeout_secs: None };
        self.driver.run(platform, &spec, RunMode::Analytic)
    }

    /// Paper-facing platform labels, in Table 5 order.
    pub fn platform_labels(&self) -> Vec<String> {
        self.platforms.iter().map(|p| p.profile().paper_analog.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;

    #[test]
    fn suite_runs_an_analytic_job_per_platform() {
        let suite = ExperimentSuite::without_noise();
        for p in &suite.platforms {
            let r = suite.run_analytic(
                p.as_ref(),
                dataset("G22").unwrap(),
                Algorithm::Bfs,
                ClusterSpec::single_machine(),
                0,
            );
            assert!(r.status.is_success(), "{} failed: {:?}", p.name(), r.status);
        }
    }

    #[test]
    fn labels_in_table5_order() {
        let suite = ExperimentSuite::new();
        assert_eq!(
            suite.platform_labels(),
            vec!["Giraph", "GraphX", "PowerGraph", "GraphMat", "OpenG", "PGX.D"]
        );
    }
}
