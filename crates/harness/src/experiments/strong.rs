//! Strong horizontal scalability (Section 4.4, Figure 8).
//!
//! BFS and PageRank on D1000(XL) with 1–16 machines (constant workload).
//! Paper findings reproduced here: PGX.D and GraphMat show reasonable
//! speedups; Giraph collapses when going from one machine to two, then
//! recovers; GraphX and PowerGraph scale poorly; PGX.D cannot run on a
//! single machine (memory); GraphMat's single-machine PR is a swapping
//! outlier; OpenG has no distributed mode.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::JobResult;
use crate::report::{tproc_cell, TextTable};

use super::ExperimentSuite;

/// Machine counts of the sweep.
pub const MACHINES: [u32; 5] = [1, 2, 4, 8, 16];

/// Results per algorithm per platform per machine count.
pub struct StrongScalability {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the sweep.
pub fn run(suite: &ExperimentSuite) -> StrongScalability {
    let dataset = graphalytics_core::datasets::dataset("D1000").unwrap();
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = MACHINES
                .iter()
                .map(|&m| {
                    suite.run_analytic(p.as_ref(), dataset, algorithm, ClusterSpec::das5(m), 0)
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    StrongScalability { platforms: suite.platform_labels(), curves }
}

impl StrongScalability {
    /// Figure 8: T_proc vs machines.
    pub fn render_fig8(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(MACHINES.iter().map(|m| format!("{m}m")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 8 ({algorithm}): Tproc vs machines, D1000(XL)"),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Results for one platform/algorithm.
    pub fn curve(&self, algorithm: Algorithm, platform_label: &str) -> &Vec<JobResult> {
        let idx = self.platforms.iter().position(|p| p == platform_label).unwrap();
        &self.curves.iter().find(|(a, _)| *a == algorithm).unwrap().1[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::JobStatus;

    #[test]
    fn giraph_has_the_two_machine_cliff() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let giraph = s.curve(Algorithm::Bfs, "Giraph");
        assert!(giraph[0].status.is_success());
        assert!(giraph[1].status.is_success());
        // 2 machines slower than 1, then recovery with more machines.
        assert!(
            giraph[1].processing_secs > giraph[0].processing_secs,
            "cliff: {} -> {}",
            giraph[0].processing_secs,
            giraph[1].processing_secs
        );
        assert!(giraph[4].processing_secs < giraph[1].processing_secs);
    }

    #[test]
    fn pgxd_fails_on_one_machine_but_scales() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let pgxd = s.curve(Algorithm::Bfs, "PGX.D");
        assert_eq!(pgxd[0].status, JobStatus::OutOfMemory, "D1000 exceeds one machine");
        assert!(pgxd[1].status.is_success());
        // Sub-second processing from 4 machines (paper's observation).
        assert!(pgxd[2].processing_secs < 1.5, "got {}", pgxd[2].processing_secs);
    }

    #[test]
    fn graphmat_single_machine_pr_is_swap_outlier() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let gm = s.curve(Algorithm::PageRank, "GraphMat");
        assert!(gm[0].status.is_success(), "swapping completes, slowly");
        assert!(
            gm[0].processing_secs > 10.0 * gm[1].processing_secs,
            "swap outlier: 1m {} vs 2m {}",
            gm[0].processing_secs,
            gm[1].processing_secs
        );
    }

    #[test]
    fn openg_has_no_distributed_results() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let openg = s.curve(Algorithm::Bfs, "OpenG");
        assert!(openg[0].status.is_success());
        for r in &openg[1..] {
            assert_eq!(r.status, JobStatus::Unsupported);
        }
        assert!(s.render_fig8().contains("Figure 8"));
    }

    #[test]
    fn graphx_scales_worse_than_graphmat() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let gx = s.curve(Algorithm::Bfs, "GraphX");
        let gm = s.curve(Algorithm::Bfs, "GraphMat");
        // At 16 machines GraphMat remains far faster.
        assert!(gx[4].processing_secs > 10.0 * gm[4].processing_secs);
    }
}
