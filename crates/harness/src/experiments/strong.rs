//! Strong horizontal scalability (Section 4.4, Figure 8).
//!
//! BFS and PageRank on D1000(XL) with 1–16 machines (constant workload).
//! Paper findings reproduced here: PGX.D and GraphMat show reasonable
//! speedups; Giraph collapses when going from one machine to two, then
//! recovers; GraphX and PowerGraph scale poorly; PGX.D cannot run on a
//! single machine (memory); GraphMat's single-machine PR is a swapping
//! outlier; OpenG has no distributed mode.

use std::sync::Arc;

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::{JobResult, JobSpec, RunMode};
use crate::proxy;
use crate::report::{tproc_cell, TextTable};

use super::ExperimentSuite;

/// Machine counts of the sweep.
pub const MACHINES: [u32; 5] = [1, 2, 4, 8, 16];

/// Shard counts of the measured sweep.
pub const SHARDS: [u32; 3] = [1, 2, 4];

/// Results per algorithm per platform per machine count.
pub struct StrongScalability {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the sweep.
pub fn run(suite: &ExperimentSuite) -> StrongScalability {
    let dataset = graphalytics_core::datasets::dataset("D1000").unwrap();
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = MACHINES
                .iter()
                .map(|&m| {
                    suite.run_analytic(p.as_ref(), dataset, algorithm, ClusterSpec::das5(m), 0)
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    StrongScalability { platforms: suite.platform_labels(), curves }
}

impl StrongScalability {
    /// Figure 8: T_proc vs machines.
    pub fn render_fig8(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(MACHINES.iter().map(|m| format!("{m}m")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!("Figure 8 ({algorithm}): Tproc vs machines, D1000(XL)"),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Results for one platform/algorithm.
    pub fn curve(&self, algorithm: Algorithm, platform_label: &str) -> &Vec<JobResult> {
        let idx = self.platforms.iter().position(|p| p == platform_label).unwrap();
        &self.curves.iter().find(|(a, _)| *a == algorithm).unwrap().1[idx]
    }
}

/// *Measured* strong scaling over execution shards: the same D1000 proxy
/// at shards = 1/2/4 (constant workload), executed for real through the
/// sharded upload path. The measured companion to the cost-model curves
/// of [`StrongScalability`] — same figure, real inter-shard traffic.
pub struct MeasuredSharded {
    pub platforms: Vec<String>,
    pub curves: Vec<(Algorithm, Vec<Vec<JobResult>>)>,
}

/// Runs the measured sweep on a D1000 proxy scaled down by
/// `scale_divisor`. Platforms without a sharded run path report the
/// multi-shard rungs as unsupported — the measured analogue of the
/// paper's NA entries for missing distributed modes.
pub fn run_measured(suite: &ExperimentSuite, scale_divisor: u64) -> MeasuredSharded {
    let dataset = graphalytics_core::datasets::dataset("D1000").unwrap();
    let pool = &suite.driver.pool;
    let graph = proxy::materialize_with(dataset, scale_divisor, suite.driver.seed, pool);
    let csr = Arc::new(graph.to_csr_with(pool).expect("proxy CSR build"));
    let mut curves = Vec::new();
    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        let mut per_platform = Vec::new();
        for p in &suite.platforms {
            let results: Vec<JobResult> = SHARDS
                .iter()
                .map(|&shards| {
                    let spec = JobSpec {
                        dataset,
                        algorithm,
                        cluster: ClusterSpec::single_machine(),
                        run_index: 0,
                        repetitions: 1,
                        shards,
                        mutations: None,
                        timeout_secs: None,
                    };
                    suite.driver.run(p.as_ref(), &spec, RunMode::Measured { csr: &csr })
                })
                .collect();
            per_platform.push(results);
        }
        curves.push((algorithm, per_platform));
    }
    MeasuredSharded { platforms: suite.platform_labels(), curves }
}

impl MeasuredSharded {
    /// Figure 8 (measured): T_proc and inter-shard message volume per
    /// shard count, rendered alongside the cost-model table.
    pub fn render_fig8_measured(&self) -> String {
        let mut out = String::new();
        for (algorithm, per_platform) in &self.curves {
            let mut headers = vec!["platform".to_string()];
            headers.extend(SHARDS.iter().map(|s| format!("{s}sh Tproc")));
            headers.extend(SHARDS.iter().map(|s| format!("{s}sh ism")));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "Figure 8 ({algorithm}, measured): Tproc and inter-shard messages \
                     vs shards, D1000 proxy"
                ),
                &headers_ref,
            );
            for (label, results) in self.platforms.iter().zip(per_platform) {
                let mut cells = vec![label.clone()];
                cells.extend(results.iter().map(tproc_cell));
                cells.extend(results.iter().map(|r| {
                    if r.status.is_success() {
                        r.counters.inter_shard_messages.to_string()
                    } else {
                        r.status.figure_mark().to_string()
                    }
                }));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Results for one platform/algorithm.
    pub fn curve(&self, algorithm: Algorithm, platform_label: &str) -> &Vec<JobResult> {
        let idx = self.platforms.iter().position(|p| p == platform_label).unwrap();
        &self.curves.iter().find(|(a, _)| *a == algorithm).unwrap().1[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::JobStatus;

    #[test]
    fn giraph_has_the_two_machine_cliff() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let giraph = s.curve(Algorithm::Bfs, "Giraph");
        assert!(giraph[0].status.is_success());
        assert!(giraph[1].status.is_success());
        // 2 machines slower than 1, then recovery with more machines.
        assert!(
            giraph[1].processing_secs > giraph[0].processing_secs,
            "cliff: {} -> {}",
            giraph[0].processing_secs,
            giraph[1].processing_secs
        );
        assert!(giraph[4].processing_secs < giraph[1].processing_secs);
    }

    #[test]
    fn pgxd_fails_on_one_machine_but_scales() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let pgxd = s.curve(Algorithm::Bfs, "PGX.D");
        assert_eq!(pgxd[0].status, JobStatus::OutOfMemory, "D1000 exceeds one machine");
        assert!(pgxd[1].status.is_success());
        // Sub-second processing from 4 machines (paper's observation).
        assert!(pgxd[2].processing_secs < 1.5, "got {}", pgxd[2].processing_secs);
    }

    #[test]
    fn graphmat_single_machine_pr_is_swap_outlier() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let gm = s.curve(Algorithm::PageRank, "GraphMat");
        assert!(gm[0].status.is_success(), "swapping completes, slowly");
        assert!(
            gm[0].processing_secs > 10.0 * gm[1].processing_secs,
            "swap outlier: 1m {} vs 2m {}",
            gm[0].processing_secs,
            gm[1].processing_secs
        );
    }

    #[test]
    fn openg_has_no_distributed_results() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let openg = s.curve(Algorithm::Bfs, "OpenG");
        assert!(openg[0].status.is_success());
        for r in &openg[1..] {
            assert_eq!(r.status, JobStatus::Unsupported);
        }
        assert!(s.render_fig8().contains("Figure 8"));
    }

    #[test]
    fn measured_sharded_curves_report_traffic() {
        let suite = ExperimentSuite::without_noise();
        let m = run_measured(&suite, 1 << 14);
        // Giraph (pregel) has a sharded run path: every rung succeeds,
        // the logical message count is shard-invariant (bit-identical
        // execution), and multi-shard rungs carry real cut traffic.
        let giraph = m.curve(Algorithm::Bfs, "Giraph");
        for (r, &s) in giraph.iter().zip(SHARDS.iter()) {
            assert!(r.status.is_success(), "{s} shards: {:?}", r.status);
            assert_eq!(r.shards, s);
        }
        assert_eq!(giraph[0].counters.messages, giraph[1].counters.messages);
        assert_eq!(giraph[0].counters.messages, giraph[2].counters.messages);
        assert!(giraph[1].counters.inter_shard_messages > 0);
        assert!(giraph[2].counters.inter_shard_messages > 0);
        // GraphMat (spmv) has none: multi-shard rungs are NA.
        let gm = m.curve(Algorithm::PageRank, "GraphMat");
        assert!(gm[0].status.is_success());
        assert_eq!(gm[1].status, JobStatus::Unsupported);
        assert_eq!(gm[2].status, JobStatus::Unsupported);
        let text = m.render_fig8_measured();
        assert!(text.contains("measured"), "{text}");
        assert!(text.contains("4sh ism"), "{text}");
    }

    #[test]
    fn graphx_scales_worse_than_graphmat() {
        let suite = ExperimentSuite::without_noise();
        let s = run(&suite);
        let gx = s.curve(Algorithm::Bfs, "GraphX");
        let gm = s.curve(Algorithm::Bfs, "GraphMat");
        // At 16 machines GraphMat remains far faster.
        assert!(gx[4].processing_secs > 10.0 * gm[4].processing_secs);
    }
}
