//! Stress test (Section 4.6, Table 10).
//!
//! BFS on every dataset, single machine; reports the *smallest* dataset
//! (by scale) each platform fails to process. Key paper findings:
//! GraphX and PGX.D fail already at G25 (class L); Giraph and GraphMat
//! handle D1000 (scale 9.0) but fail G26 of the *same scale* — graph
//! structure, not just size, drives failures; PowerGraph and OpenG last
//! until the scale-9.3 Friendster graph.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::datasets::{all_datasets, DatasetSpec};
use graphalytics_core::Algorithm;

use crate::report::TextTable;

use super::ExperimentSuite;

/// Per-platform stress outcome.
pub struct StressOutcome {
    pub platform: String,
    /// Smallest failing dataset (by scale), if any fails.
    pub smallest_failure: Option<&'static DatasetSpec>,
}

/// Runs the stress test.
pub fn run(suite: &ExperimentSuite) -> Vec<StressOutcome> {
    let mut datasets: Vec<&'static DatasetSpec> = all_datasets();
    datasets.sort_by(|a, b| a.scale().total_cmp(&b.scale()));
    suite
        .platforms
        .iter()
        .map(|p| {
            let smallest_failure = datasets
                .iter()
                .find(|d| {
                    !suite
                        .run_analytic(
                            p.as_ref(),
                            d,
                            Algorithm::Bfs,
                            ClusterSpec::single_machine(),
                            0,
                        )
                        .status
                        .is_success()
                })
                .copied();
            StressOutcome { platform: p.profile().paper_analog.to_string(), smallest_failure }
        })
        .collect()
}

/// Table 10 rendering.
pub fn render_table10(outcomes: &[StressOutcome]) -> String {
    let mut table = TextTable::new(
        "Table 10: smallest dataset failing BFS on one machine",
        &["platform", "dataset", "scale"],
    );
    for o in outcomes {
        match o.smallest_failure {
            Some(d) => table.add_row(vec![
                o.platform.clone(),
                d.name.to_string(),
                format!("{:.1}", d.scale()),
            ]),
            None => table.add_row(vec![o.platform.clone(), "-none-".into(), "-".into()]),
        };
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_of<'a>(outcomes: &'a [StressOutcome], platform: &str) -> &'a DatasetSpec {
        outcomes
            .iter()
            .find(|o| o.platform == platform)
            .unwrap()
            .smallest_failure
            .unwrap_or_else(|| panic!("{platform} never fails"))
    }

    #[test]
    fn failure_points_match_table10() {
        let suite = ExperimentSuite::without_noise();
        let outcomes = run(&suite);
        // Table 10 exactly: Giraph G26, GraphX G25, PowerGraph R5,
        // GraphMat G26, OpenG R5, PGX.D G25.
        assert_eq!(failure_of(&outcomes, "Giraph").id, "G26");
        assert_eq!(failure_of(&outcomes, "GraphX").id, "G25");
        assert_eq!(failure_of(&outcomes, "PowerGraph").id, "R5");
        assert_eq!(failure_of(&outcomes, "GraphMat").id, "G26");
        assert_eq!(failure_of(&outcomes, "OpenG").id, "R5");
        assert_eq!(failure_of(&outcomes, "PGX.D").id, "G25");
        assert!(render_table10(&outcomes).contains("graph500-25"));
    }

    #[test]
    fn structure_sensitivity_finding() {
        // Giraph and GraphMat succeed on D1000 (scale 9.0) but fail G26
        // (also 9.0): failure depends on graph characteristics, not only
        // size — the paper's headline stress-test insight.
        let suite = ExperimentSuite::without_noise();
        for platform in ["pregel", "spmv"] {
            let p = graphalytics_engines::platform_by_name(platform).unwrap();
            let d1000 = suite.run_analytic(
                p.as_ref(),
                graphalytics_core::datasets::dataset("D1000").unwrap(),
                Algorithm::Bfs,
                ClusterSpec::single_machine(),
                0,
            );
            assert!(d1000.status.is_success(), "{platform} must survive D1000");
            let g26 = suite.run_analytic(
                p.as_ref(),
                graphalytics_core::datasets::dataset("G26").unwrap(),
                Algorithm::Bfs,
                ClusterSpec::single_machine(),
                0,
            );
            assert!(!g26.status.is_success(), "{platform} must fail G26");
        }
    }
}
