//! Algorithm variety (Section 4.2, Figure 6).
//!
//! All six algorithms on the two weighted graphs R4(S) and D300(L) on a
//! single machine. Reproduces the paper's findings: similar relative
//! performance for BFS/WCC/PR/SSSP, LCC completing only on OpenG and
//! PowerGraph, CDLP failing on GraphX, and LCC marked `NA` for PGX.D.

use graphalytics_cluster::ClusterSpec;
use graphalytics_core::Algorithm;

use crate::driver::JobResult;
use crate::report::{tproc_cell, TextTable};

use super::ExperimentSuite;

/// Results: per dataset, per algorithm, one result per platform.
pub struct AlgorithmVariety {
    pub platforms: Vec<String>,
    pub rows: Vec<(&'static str, Algorithm, Vec<JobResult>)>,
}

/// Figure 6's algorithm order (bottom-up in the plot).
pub const ALGORITHM_ORDER: [Algorithm; 6] = [
    Algorithm::Bfs,
    Algorithm::Wcc,
    Algorithm::Cdlp,
    Algorithm::PageRank,
    Algorithm::Lcc,
    Algorithm::Sssp,
];

/// Runs the experiment.
pub fn run(suite: &ExperimentSuite) -> AlgorithmVariety {
    let mut rows = Vec::new();
    for dataset_id in ["R4", "D300"] {
        let dataset = graphalytics_core::datasets::dataset(dataset_id).unwrap();
        for algorithm in ALGORITHM_ORDER {
            let results = suite
                .platforms
                .iter()
                .map(|p| {
                    suite.run_analytic(
                        p.as_ref(),
                        dataset,
                        algorithm,
                        ClusterSpec::single_machine(),
                        0,
                    )
                })
                .collect();
            rows.push((dataset.id, algorithm, results));
        }
    }
    AlgorithmVariety { platforms: suite.platform_labels(), rows }
}

impl AlgorithmVariety {
    /// Figure 6: T_proc per algorithm and platform, for both datasets.
    pub fn render_fig6(&self) -> String {
        let mut out = String::new();
        for dataset in ["R4", "D300"] {
            let mut headers = vec!["algorithm".to_string()];
            headers.extend(self.platforms.clone());
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            let label = if dataset == "R4" { "R4(S)" } else { "D300(L)" };
            let mut table =
                TextTable::new(format!("Figure 6: Tproc on {label}, 1 machine"), &headers_ref);
            for (ds, algorithm, results) in &self.rows {
                if *ds != dataset {
                    continue;
                }
                let mut cells = vec![algorithm.acronym().to_string()];
                cells.extend(results.iter().map(tproc_cell));
                table.add_row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Results for one dataset/algorithm pair.
    pub fn results_for(&self, dataset: &str, algorithm: Algorithm) -> Option<&Vec<JobResult>> {
        self.rows
            .iter()
            .find(|(d, a, _)| *d == dataset && *a == algorithm)
            .map(|(_, _, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::JobStatus;

    fn status_of<'a>(results: &'a [JobResult], analog: &str) -> &'a JobStatus {
        &results.iter().find(|r| r.paper_analog == analog).unwrap().status
    }

    #[test]
    fn figure6_failure_pattern_matches_paper() {
        let suite = ExperimentSuite::without_noise();
        let av = run(&suite);
        for dataset in ["R4", "D300"] {
            // LCC: only OpenG and PowerGraph complete; PGX.D is NA.
            let lcc = av.results_for(dataset, Algorithm::Lcc).unwrap();
            assert_eq!(*status_of(lcc, "OpenG"), JobStatus::Completed, "{dataset}");
            assert_eq!(*status_of(lcc, "PowerGraph"), JobStatus::Completed, "{dataset}");
            assert_eq!(*status_of(lcc, "PGX.D"), JobStatus::Unsupported, "{dataset}");
            assert!(!status_of(lcc, "Giraph").is_success(), "{dataset}: Giraph LCC must fail");
            assert!(!status_of(lcc, "GraphX").is_success(), "{dataset}: GraphX LCC must fail");
            assert!(!status_of(lcc, "GraphMat").is_success(), "{dataset}: GraphMat LCC must fail");
            // CDLP: GraphX is unable to complete, even on R4(S); others
            // complete.
            let cdlp = av.results_for(dataset, Algorithm::Cdlp).unwrap();
            assert!(!status_of(cdlp, "GraphX").is_success(), "{dataset}: GraphX CDLP must fail");
            assert!(status_of(cdlp, "Giraph").is_success(), "{dataset}");
            assert!(status_of(cdlp, "OpenG").is_success(), "{dataset}");
        }
    }

    #[test]
    fn openg_wins_cdlp() {
        // Paper: "OpenG performs best on CDLP".
        let suite = ExperimentSuite::without_noise();
        let av = run(&suite);
        let cdlp = av.results_for("D300", Algorithm::Cdlp).unwrap();
        let openg = cdlp.iter().find(|r| r.paper_analog == "OpenG").unwrap();
        for r in cdlp.iter().filter(|r| r.status.is_success()) {
            assert!(
                openg.processing_secs <= r.processing_secs * 1.05,
                "OpenG {} vs {} {}",
                openg.processing_secs,
                r.paper_analog,
                r.processing_secs
            );
        }
    }

    #[test]
    fn relative_order_similar_for_core_algorithms() {
        // Paper: relative performance similar for BFS, WCC, PR, SSSP —
        // PGX.D and GraphMat fastest, GraphX slowest.
        let suite = ExperimentSuite::without_noise();
        let av = run(&suite);
        for alg in [Algorithm::Bfs, Algorithm::Wcc, Algorithm::PageRank, Algorithm::Sssp] {
            let results = av.results_for("D300", alg).unwrap();
            let t = |analog: &str| {
                results.iter().find(|r| r.paper_analog == analog).unwrap().processing_secs
            };
            assert!(t("GraphMat") < t("Giraph"), "{alg}");
            assert!(t("PGX.D") < t("Giraph"), "{alg}");
            assert!(t("GraphX") > t("PowerGraph"), "{alg}");
        }
        assert!(av.render_fig6().contains("NA"));
    }
}
