//! The results database (components 9 and 12 of Figure 1).
//!
//! Stores every [`JobResult`] of a benchmark run, supports the queries the
//! experiments and reports need, and exports to JSON for the "public
//! results" archive.

use graphalytics_core::Algorithm;
use graphalytics_granula::json::Json;

use crate::driver::{JobResult, JobStatus};

/// An in-memory results store with JSON export.
#[derive(Default)]
pub struct ResultsDatabase {
    results: Vec<JobResult>,
}

impl ResultsDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a result.
    pub fn insert(&mut self, result: JobResult) {
        self.results.push(result);
    }

    /// All results.
    pub fn all(&self) -> &[JobResult] {
        &self.results
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Results for a platform × dataset × algorithm triple.
    pub fn query(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: Algorithm,
    ) -> Vec<&JobResult> {
        self.results
            .iter()
            .filter(|r| r.platform == platform && r.dataset == dataset && r.algorithm == algorithm)
            .collect()
    }

    /// Fraction of successful jobs.
    pub fn success_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        self.results.iter().filter(|r| r.status.is_success()).count() as f64
            / self.results.len() as f64
    }

    /// Serializes all results to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::Arr(self.results.iter().map(result_json).collect()).to_string_pretty()
    }
}

fn result_json(r: &JobResult) -> Json {
    Json::obj(vec![
        ("platform", Json::str(&r.platform)),
        ("paper_analog", Json::str(&r.paper_analog)),
        ("dataset", Json::str(&r.dataset)),
        ("algorithm", Json::str(r.algorithm.acronym())),
        ("machines", Json::Num(r.machines as f64)),
        ("threads", Json::Num(r.threads as f64)),
        (
            "status",
            Json::str(match &r.status {
                JobStatus::Completed => "completed".to_string(),
                JobStatus::Unsupported => "unsupported".to_string(),
                JobStatus::OutOfMemory => "oom".to_string(),
                JobStatus::SlaViolation => "sla-violation".to_string(),
                JobStatus::ValidationFailed(m) => format!("validation-failed: {m}"),
            }),
        ),
        ("vertices", Json::Num(r.vertices as f64)),
        ("edges", Json::Num(r.edges as f64)),
        ("upload_secs", Json::Num(r.upload_secs)),
        ("processing_secs", Json::Num(r.processing_secs)),
        ("makespan_secs", Json::Num(r.makespan_secs)),
        (
            "measured_wall_secs",
            r.measured_wall_secs.map(Json::Num).unwrap_or(Json::Null),
        ),
        ("eps", Json::Num(r.eps())),
        ("evps", Json::Num(r.evps())),
        ("supersteps", Json::Num(r.counters.supersteps as f64)),
        ("messages", Json::Num(r.counters.messages as f64)),
        ("edges_scanned", Json::Num(r.counters.edges_scanned as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_cluster::{ClusterSpec, WorkCounters};

    fn fake(platform: &str, dataset: &str, secs: f64, ok: bool) -> JobResult {
        let _ = ClusterSpec::single_machine();
        JobResult {
            platform: platform.into(),
            paper_analog: platform.to_uppercase(),
            dataset: dataset.into(),
            algorithm: Algorithm::Bfs,
            machines: 1,
            threads: 16,
            status: if ok { JobStatus::Completed } else { JobStatus::OutOfMemory },
            vertices: 100,
            edges: 1000,
            upload_secs: 1.0,
            processing_secs: secs,
            makespan_secs: secs + 1.0,
            measured_wall_secs: None,
            counters: WorkCounters::new(),
            archive: None,
        }
    }

    #[test]
    fn query_and_success_rate() {
        let mut db = ResultsDatabase::new();
        db.insert(fake("spmv", "G22", 0.5, true));
        db.insert(fake("spmv", "G22", 0.6, true));
        db.insert(fake("pregel", "G22", 9.0, false));
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.query("spmv", "G22", Algorithm::Bfs).len(), 2);
        assert_eq!(db.query("spmv", "G23", Algorithm::Bfs).len(), 0);
        assert!((db.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_export_contains_fields() {
        let mut db = ResultsDatabase::new();
        db.insert(fake("native", "R1", 0.25, true));
        let json = db.to_json();
        assert!(json.contains("\"platform\": \"native\""));
        assert!(json.contains("\"eps\""));
        assert!(json.contains("\"status\": \"completed\""));
    }
}
