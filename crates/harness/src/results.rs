//! The results database (components 9 and 12 of Figure 1).
//!
//! Stores every [`JobResult`] of a benchmark run, supports the queries the
//! experiments and reports need, and exports to JSON for the "public
//! results" archive.
//!
//! The store is `Send + Sync` (interior locking): the benchmark service
//! runs many driver jobs concurrently and records into one shared
//! database, so `insert` takes `&self` and reads return snapshots.

use std::sync::RwLock;

use graphalytics_core::Algorithm;
use graphalytics_granula::json::Json;

use crate::driver::{JobResult, JobStatus};

/// An in-memory, thread-safe results store with JSON export.
#[derive(Default)]
pub struct ResultsDatabase {
    results: RwLock<Vec<JobResult>>,
}

impl ResultsDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<JobResult>> {
        self.results.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a result.
    pub fn insert(&self, result: JobResult) {
        self.results.write().unwrap_or_else(|e| e.into_inner()).push(result);
    }

    /// A snapshot of all results, in insertion order.
    pub fn all(&self) -> Vec<JobResult> {
        self.read().clone()
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Results for a platform × dataset × algorithm triple.
    pub fn query(
        &self,
        platform: &str,
        dataset: &str,
        algorithm: Algorithm,
    ) -> Vec<JobResult> {
        self.read()
            .iter()
            .filter(|r| r.platform == platform && r.dataset == dataset && r.algorithm == algorithm)
            .cloned()
            .collect()
    }

    /// Folds over all results without cloning them — aggregation queries
    /// (counts, EPS means) on a large database should not copy every
    /// attached archive the way [`ResultsDatabase::all`] does.
    pub fn fold<T>(&self, init: T, f: impl FnMut(T, &JobResult) -> T) -> T {
        self.read().iter().fold(init, f)
    }

    /// Fraction of successful jobs.
    pub fn success_rate(&self) -> f64 {
        let results = self.read();
        if results.is_empty() {
            return 1.0;
        }
        results.iter().filter(|r| r.status.is_success()).count() as f64 / results.len() as f64
    }

    /// Serializes all results to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::Arr(self.read().iter().map(result_json).collect()).to_string_pretty()
    }
}

/// Serializes a single result to a JSON object (shared with the service's
/// per-job endpoints).
pub fn result_json(r: &JobResult) -> Json {
    Json::obj(vec![
        ("platform", Json::str(&r.platform)),
        ("paper_analog", Json::str(&r.paper_analog)),
        ("dataset", Json::str(&r.dataset)),
        ("algorithm", Json::str(r.algorithm.acronym())),
        ("machines", Json::Num(r.machines as f64)),
        ("threads", Json::Num(r.threads as f64)),
        ("shards", Json::Num(r.shards as f64)),
        ("cut_fraction", r.cut_fraction.map(Json::Num).unwrap_or(Json::Null)),
        (
            "status",
            Json::str(match &r.status {
                JobStatus::Completed => "completed".to_string(),
                JobStatus::Unsupported => "unsupported".to_string(),
                JobStatus::OutOfMemory => "oom".to_string(),
                JobStatus::SlaViolation => "sla-violation".to_string(),
                JobStatus::ValidationFailed(m) => format!("validation-failed: {m}"),
                JobStatus::Cancelled => "cancelled".to_string(),
                JobStatus::TimedOut => "timed-out".to_string(),
                JobStatus::Faulted { transient, message } => {
                    let class = if *transient { "transient" } else { "permanent" };
                    format!("faulted ({class}): {message}")
                }
            }),
        ),
        ("vertices", Json::Num(r.vertices as f64)),
        ("edges", Json::Num(r.edges as f64)),
        ("upload_secs", Json::Num(r.upload_secs)),
        ("processing_secs", Json::Num(r.processing_secs)),
        ("processing_min_secs", Json::Num(r.processing_min_secs)),
        ("processing_max_secs", Json::Num(r.processing_max_secs)),
        ("makespan_secs", Json::Num(r.makespan_secs)),
        (
            "measured_wall_secs",
            r.measured_wall_secs.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "measured_upload_secs",
            r.measured_upload_secs.map(Json::Num).unwrap_or(Json::Null),
        ),
        ("repetitions", Json::Num(r.repetitions() as f64)),
        (
            "runs",
            Json::Arr(
                r.runs
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("run_index", Json::Num(m.run_index as f64)),
                            ("processing_secs", Json::Num(m.processing_secs)),
                            ("makespan_secs", Json::Num(m.makespan_secs)),
                            (
                                "measured_wall_secs",
                                m.measured_wall_secs.map(Json::Num).unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("eps", Json::Num(r.eps())),
        ("evps", Json::Num(r.evps())),
        ("supersteps", Json::Num(r.counters.supersteps as f64)),
        ("messages", Json::Num(r.counters.messages as f64)),
        ("edges_scanned", Json::Num(r.counters.edges_scanned as f64)),
        ("inter_shard_messages", Json::Num(r.counters.inter_shard_messages as f64)),
        ("inter_shard_bytes", Json::Num(r.counters.inter_shard_bytes as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_cluster::{ClusterSpec, WorkCounters};

    fn fake(platform: &str, dataset: &str, secs: f64, ok: bool) -> JobResult {
        let _ = ClusterSpec::single_machine();
        JobResult {
            platform: platform.into(),
            paper_analog: platform.to_uppercase(),
            dataset: dataset.into(),
            algorithm: Algorithm::Bfs,
            machines: 1,
            threads: 16,
            shards: 1,
            cut_fraction: None,
            status: if ok { JobStatus::Completed } else { JobStatus::OutOfMemory },
            vertices: 100,
            edges: 1000,
            upload_secs: 1.0,
            processing_secs: secs,
            processing_min_secs: secs,
            processing_max_secs: secs,
            makespan_secs: secs + 1.0,
            measured_wall_secs: None,
            measured_upload_secs: None,
            runs: vec![crate::driver::RunMeasurement {
                run_index: 0,
                processing_secs: secs,
                makespan_secs: secs + 1.0,
                measured_wall_secs: None,
            }],
            counters: WorkCounters::new(),
            archive: None,
            mutation: None,
        }
    }

    #[test]
    fn query_and_success_rate() {
        let db = ResultsDatabase::new();
        db.insert(fake("spmv", "G22", 0.5, true));
        db.insert(fake("spmv", "G22", 0.6, true));
        db.insert(fake("pregel", "G22", 9.0, false));
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.query("spmv", "G22", Algorithm::Bfs).len(), 2);
        assert_eq!(db.query("spmv", "G23", Algorithm::Bfs).len(), 0);
        assert!((db.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_export_contains_fields() {
        let db = ResultsDatabase::new();
        db.insert(fake("native", "R1", 0.25, true));
        let json = db.to_json();
        assert!(json.contains("\"platform\": \"native\""));
        assert!(json.contains("\"eps\""));
        assert!(json.contains("\"status\": \"completed\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"inter_shard_messages\""));
    }

    #[test]
    fn fold_aggregates_without_snapshots() {
        let db = ResultsDatabase::new();
        db.insert(fake("spmv", "G22", 2.0, true));
        db.insert(fake("spmv", "G22", 4.0, true));
        db.insert(fake("gas", "G22", 1.0, false));
        let (count, ok, secs) = db.fold((0u32, 0u32, 0.0f64), |(count, ok, secs), r| {
            (count + 1, ok + u32::from(r.status.is_success()), secs + r.processing_secs)
        });
        assert_eq!((count, ok), (3, 2));
        assert_eq!(secs, 7.0);
    }

    #[test]
    fn concurrent_insert_and_query() {
        // The service's worker pool records into one shared database while
        // API threads read it: N writers × M inserts interleaved with
        // readers must never lose a result or tear a snapshot.
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 50;
        let db = ResultsDatabase::new();
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = &db;
                scope.spawn(move || {
                    let dataset = format!("D{w}");
                    for i in 0..PER_WRITER {
                        db.insert(fake("spmv", &dataset, i as f64, true));
                    }
                });
            }
            // Concurrent readers only ever observe complete results.
            for _ in 0..4 {
                let db = &db;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let snapshot = db.all();
                        assert!(snapshot.len() <= WRITERS * PER_WRITER);
                        assert!(snapshot.iter().all(|r| r.platform == "spmv"));
                        assert_eq!(db.success_rate(), 1.0);
                    }
                });
            }
        });
        assert_eq!(db.len(), WRITERS * PER_WRITER);
        for w in 0..WRITERS {
            assert_eq!(db.query("spmv", &format!("D{w}"), Algorithm::Bfs).len(), PER_WRITER);
        }
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ResultsDatabase>();
    }
}
