//! Analytic workload-shape estimation for paper-scale datasets.
//!
//! The paper's datasets reach 1.97B edges — too large to materialize here.
//! For those, experiments run in *analytic mode*: instead of executing, an
//! engine estimates the `WorkCounters` a run would produce from the
//! dataset's published size and structural traits (degree skew, diameter,
//! BFS reachability — `graphalytics_core::datasets::GraphTraits`).
//!
//! [`workload_shape`] computes the engine-independent quantities (how many
//! rounds, how many edge relaxations the *algorithm* needs); each engine
//! then maps the shape onto its own counter pattern in
//! `Platform::estimate`, mirroring what its `execute` actually counts —
//! integration tests check estimate-vs-measured agreement on generated
//! graphs.

use graphalytics_core::datasets::GraphTraits;
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::Algorithm;

/// Engine-independent workload shape of one algorithm on one graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadShape {
    /// Global iterations / supersteps the algorithm needs.
    pub supersteps: u64,
    /// Σ over supersteps of the number of *active* vertices.
    pub active_vertex_rounds: f64,
    /// Total adjacency entries the algorithm itself must relax.
    pub edge_traversals: f64,
    /// Σ_v d(v)² — the LCC intersection work and neighbour-list message
    /// volume.
    pub sum_deg2: f64,
    /// Stored arcs (2·|E| for undirected graphs).
    pub arcs: f64,
}

/// Estimates Σ_v d(v)² from mean degree and skew.
///
/// For near-regular graphs Σd² ≈ |V|·mean²; degree skew amplifies it
/// (hubs dominate the sum). The amplification factor `1 + skew/20`
/// (capped) is a two-point fit: social graphs (skew ≈ 20) get ≈ 2×,
/// Kronecker graphs (skew ≥ 10⁴) saturate at the cap.
pub fn estimate_sum_deg2(vertices: u64, arcs: f64, skew: f64) -> f64 {
    let mean = arcs / vertices.max(1) as f64;
    let amp = (1.0 + skew / 20.0).min(500.0);
    vertices as f64 * mean * mean * amp
}

/// Computes the workload shape for `algorithm` on a graph of
/// `vertices`/`edges` with the given traits.
pub fn workload_shape(
    vertices: u64,
    edges: u64,
    traits_: &GraphTraits,
    directed: bool,
    algorithm: Algorithm,
    params: &AlgorithmParams,
) -> WorkloadShape {
    let v = vertices as f64;
    let arcs = if directed { edges as f64 } else { 2.0 * edges as f64 };
    let diameter = traits_.pseudo_diameter.max(1) as f64;
    let reach = traits_.reachable_fraction.clamp(0.0, 1.0);
    let sum_deg2 = estimate_sum_deg2(vertices, arcs, traits_.degree_skew);
    match algorithm {
        Algorithm::Bfs => WorkloadShape {
            supersteps: diameter as u64 + 1,
            active_vertex_rounds: reach * v,
            edge_traversals: reach * arcs,
            sum_deg2,
            arcs,
        },
        Algorithm::PageRank => {
            let iters = params.pagerank_iterations.max(1) as f64;
            WorkloadShape {
                supersteps: iters as u64 + 1,
                active_vertex_rounds: iters * v,
                edge_traversals: iters * arcs,
                sum_deg2,
                arcs,
            }
        }
        Algorithm::Wcc => {
            // Min-label propagation converges in ~diameter rounds with
            // decaying activity; union-find engines override via their own
            // counter mapping.
            let rounds = (diameter + 2.0).min(25.0);
            WorkloadShape {
                supersteps: rounds as u64,
                active_vertex_rounds: 0.5 * rounds * v,
                edge_traversals: 0.6 * rounds * arcs,
                sum_deg2,
                arcs,
            }
        }
        Algorithm::Cdlp => {
            let iters = params.cdlp_iterations.max(1) as f64;
            WorkloadShape {
                supersteps: iters as u64 + 1,
                active_vertex_rounds: iters * v,
                // Both edge directions vote on directed graphs.
                edge_traversals: iters * arcs * if directed { 2.0 } else { 1.0 },
                sum_deg2,
                arcs,
            }
        }
        Algorithm::Lcc => WorkloadShape {
            supersteps: 2,
            active_vertex_rounds: 2.0 * v,
            edge_traversals: sum_deg2,
            sum_deg2,
            arcs,
        },
        Algorithm::Sssp => {
            // Sparse Bellman–Ford-style relaxation: ~1.5× diameter rounds,
            // activity decaying after the wave passes.
            let rounds = (1.5 * diameter).max(2.0);
            WorkloadShape {
                supersteps: rounds as u64,
                active_vertex_rounds: 0.5 * rounds * reach * v,
                edge_traversals: 0.5 * rounds * reach * arcs,
                sum_deg2,
                arcs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::datasets::dataset;

    fn shape_for(id: &str, alg: Algorithm) -> WorkloadShape {
        let d = dataset(id).unwrap();
        let params = AlgorithmParams::default();
        workload_shape(d.vertices, d.edges, &d.traits_, d.directed, alg, &params)
    }

    #[test]
    fn bfs_reachability_limits_work() {
        // R2's BFS covers ~10% of the graph (Section 4.1).
        let s = shape_for("R2", Algorithm::Bfs);
        let d = dataset("R2").unwrap();
        let arcs = 2.0 * d.edges as f64;
        assert!(s.edge_traversals < 0.15 * arcs);
        assert!(s.edge_traversals > 0.05 * arcs);
    }

    #[test]
    fn pagerank_scales_with_iterations() {
        let d = dataset("D300").unwrap();
        let p5 = AlgorithmParams { pagerank_iterations: 5, ..Default::default() };
        let p20 = AlgorithmParams { pagerank_iterations: 20, ..Default::default() };
        let s5 = workload_shape(d.vertices, d.edges, &d.traits_, d.directed, Algorithm::PageRank, &p5);
        let s20 =
            workload_shape(d.vertices, d.edges, &d.traits_, d.directed, Algorithm::PageRank, &p20);
        assert!((s20.edge_traversals / s5.edge_traversals - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lcc_work_explodes_on_skewed_graphs() {
        let social = shape_for("D300", Algorithm::Lcc);
        let kron = shape_for("G24", Algorithm::Lcc);
        // G24 has fewer edges than D300 but far more LCC work per edge.
        let social_per_arc = social.edge_traversals / social.arcs;
        let kron_per_arc = kron.edge_traversals / kron.arcs;
        assert!(kron_per_arc > 10.0 * social_per_arc);
    }

    #[test]
    fn sum_deg2_amplification_caps() {
        let low = estimate_sum_deg2(1000, 10_000.0, 5.0);
        let high = estimate_sum_deg2(1000, 10_000.0, 1.0e6);
        assert!(high > low);
        assert!(high <= 1000.0 * 100.0 * 500.0 + 1.0);
    }

    #[test]
    fn directed_cdlp_doubles_votes() {
        let r1 = shape_for("R1", Algorithm::Cdlp); // directed
        let d = dataset("R1").unwrap();
        let expected = 10.0 * d.edges as f64 * 2.0;
        assert!((r1.edge_traversals - expected).abs() / expected < 1e-9);
    }
}
