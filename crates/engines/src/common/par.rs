//! Partitioned-execution helpers shared by the engines.
//!
//! The engines parallelize over contiguous dense-index ranges on the
//! shared [`WorkerPool`] (see [`super::pool`]). This module holds what
//! sits *on top* of the pool:
//!
//! * [`map_vertices`] — the per-vertex map + per-worker tally shape that
//!   every vector-iteration engine repeats (values land in vertex order,
//!   tallies merge in worker order), deduplicated here now that the pool
//!   owns partitioning;
//! * [`run_partitioned`] — the historical spawn-per-call primitive, kept
//!   **only** as the pre-pool baseline for `repro_bench` and regression
//!   tests. Engine code must not call it.

use super::pool::WorkerPool;

pub use super::pool::split_ranges;

/// Splits `0..n` into up to `threads` contiguous ranges and runs `task`
/// on each, spawning **fresh scoped threads on every call** — the
/// pre-pool behaviour whose per-superstep cost the shared [`WorkerPool`]
/// exists to eliminate. Results come back in range order, identical to
/// `WorkerPool::new(threads).run(n, task)`.
pub fn run_partitioned<R, F>(threads: u32, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    WorkerPool::spawning(threads).run(n, task)
}

/// Maps every dense vertex `0..n` through `f` on the pool, giving each
/// worker a scalar tally `A` to fold side counts into (edges scanned,
/// random accesses, scratch maps, …).
///
/// Returns the per-vertex values in vertex order and the per-worker
/// tallies in worker order — the deterministic merge every engine used
/// to hand-roll around `run_partitioned`.
pub fn map_vertices<T, A, F>(pool: &WorkerPool, n: usize, f: F) -> (Vec<T>, Vec<A>)
where
    T: Send,
    A: Default + Send,
    F: Fn(u32, &mut A) -> T + Sync,
{
    let parts = pool.run(n, |_, range| {
        let mut tally = A::default();
        let mut out = Vec::with_capacity(range.len());
        for v in range {
            out.push(f(v as u32, &mut tally));
        }
        (out, tally)
    });
    let mut values = Vec::with_capacity(n);
    let mut tallies = Vec::with_capacity(parts.len());
    for (part, tally) in parts {
        values.extend(part);
        tallies.push(tally);
    }
    (values, tallies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_exactly_once() {
        for threads in [1u32, 2, 3, 8] {
            let parts = run_partitioned(threads, 100, |_, r| r);
            let mut covered = [0u8; 100];
            for r in parts {
                for i in r {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn results_in_worker_order() {
        let ids = run_partitioned(4, 40, |w, _| w);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_sums_across_thread_counts() {
        let data: Vec<u64> = (0..1000).map(|i| i * 7 % 31).collect();
        let sum = |threads| -> u64 {
            run_partitioned(threads, data.len(), |_, r| {
                r.map(|i| data[i]).sum::<u64>()
            })
            .into_iter()
            .sum()
        };
        assert_eq!(sum(1), sum(2));
        assert_eq!(sum(1), sum(7));
    }

    #[test]
    fn empty_range_single_worker() {
        let parts = run_partitioned(8, 0, |_, r| r.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn map_vertices_orders_values_and_tallies() {
        let data: Vec<u64> = (0..512).map(|i| i * 3 % 17).collect();
        let expect: u64 = data.iter().sum();
        for threads in [1u32, 3, 8] {
            let pool = WorkerPool::new(threads);
            let (values, tallies): (Vec<u64>, Vec<u64>) =
                map_vertices(&pool, data.len(), |v, tally| {
                    *tally += data[v as usize];
                    data[v as usize] * 2
                });
            assert_eq!(values, data.iter().map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(tallies.iter().sum::<u64>(), expect, "threads={threads}");
        }
    }
}
