//! A minimal deterministic parallel-for built on std scoped threads.
//!
//! Engines parallelize over contiguous dense-index ranges. Contiguous
//! static partitioning (rather than work stealing) keeps executions
//! *deterministic for a given thread count* and, combined with per-vertex
//! aggregation in the algorithms, makes outputs identical across thread
//! counts. Each worker returns a result (typically per-thread
//! `WorkCounters` or message buffers) that the caller merges in thread
//! order — again deterministic.

/// Splits `0..n` into contiguous ranges for `threads` workers, never
/// more workers than elements (but at least one range, possibly empty).
pub fn split_ranges(threads: u32, n: usize) -> Vec<std::ops::Range<usize>> {
    let workers = (threads.max(1) as usize).min(n.max(1));
    let chunk = n.div_ceil(workers);
    (0..workers).map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n)).collect()
}

/// Splits `0..n` into up to `threads` contiguous ranges and runs `task`
/// on each concurrently; returns results in range order.
///
/// `task` receives `(worker_index, range)`. With `threads == 1` or a tiny
/// `n` the task runs inline on the caller's thread.
pub fn run_partitioned<R, F>(threads: u32, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    if threads.max(1) == 1 || n < 2 {
        return vec![task(0, 0..n)];
    }
    let ranges = split_ranges(threads, n);
    let mut slots: Vec<Option<R>> = (0..ranges.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((w, slot), range) in slots.iter_mut().enumerate().zip(ranges) {
            let task = &task;
            scope.spawn(move || {
                *slot = Some(task(w, range));
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every worker ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_exactly_once() {
        for threads in [1u32, 2, 3, 8] {
            let parts = run_partitioned(threads, 100, |_, r| r);
            let mut covered = [0u8; 100];
            for r in parts {
                for i in r {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn results_in_worker_order() {
        let ids = run_partitioned(4, 40, |w, _| w);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_sums_across_thread_counts() {
        let data: Vec<u64> = (0..1000).map(|i| i * 7 % 31).collect();
        let sum = |threads| -> u64 {
            run_partitioned(threads, data.len(), |_, r| {
                r.map(|i| data[i]).sum::<u64>()
            })
            .into_iter()
            .sum()
        };
        assert_eq!(sum(1), sum(2));
        assert_eq!(sum(1), sum(7));
    }

    #[test]
    fn empty_range_single_worker() {
        let parts = run_partitioned(8, 0, |_, r| r.len());
        assert_eq!(parts, vec![0]);
    }
}
