//! The shared execution runtime, re-exported for the engines.
//!
//! The pool itself lives in [`graphalytics_core::pool`] because the
//! reference CSR build and the edge-file loader parallelize on it too;
//! every engine reaches it through this module. See the core module docs
//! for the determinism contract (contiguous static partitioning, results
//! merged in worker order, bit-identical outputs across thread counts).

pub use graphalytics_core::pool::{
    default_threads, par_sort_by_key, split_ranges, PoolStats, SharedSlice, WorkerPool,
};
