//! Shared engine infrastructure: the scoped-thread parallel-for and the
//! frontier (active-set) structure.

pub mod frontier;
pub mod par;

pub use frontier::Frontier;
pub use par::run_partitioned;
