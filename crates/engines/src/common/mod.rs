//! Shared engine infrastructure: the worker-pool execution runtime, the
//! partitioned-map helpers, and the frontier (active-set) structure.

pub mod frontier;
pub mod par;
pub mod pool;

pub use frontier::Frontier;
pub use par::{map_vertices, run_partitioned};
pub use pool::WorkerPool;
