//! Frontier (active vertex set) used by traversal-style engines.
//!
//! Supports the two representations whose trade-off drives push–pull
//! engines: a sparse list of active vertices (cheap when few are active)
//! and a dense bitmap (cheap membership tests, better when many are
//! active). [`Frontier::density`] is what the push–pull engine's
//! direction-optimizing heuristic inspects.

/// An active-vertex set over dense indices `0..n`.
#[derive(Debug, Clone)]
pub struct Frontier {
    n: usize,
    members: Vec<u32>,
    bitmap: Vec<bool>,
}

impl Frontier {
    /// An empty frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        Frontier { n, members: Vec::new(), bitmap: vec![false; n] }
    }

    /// A frontier containing a single vertex.
    pub fn singleton(n: usize, v: u32) -> Self {
        let mut f = Frontier::new(n);
        f.insert(v);
        f
    }

    /// Adds `v` if absent; returns true when newly inserted.
    pub fn insert(&mut self, v: u32) -> bool {
        if self.bitmap[v as usize] {
            return false;
        }
        self.bitmap[v as usize] = true;
        self.members.push(v);
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.bitmap[v as usize]
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Active fraction `|F| / n`.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.members.len() as f64 / self.n as f64
        }
    }

    /// Active vertices in insertion order (deterministic).
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Sorts members ascending — used before parallel range splits so
    /// behaviour does not depend on discovery order.
    pub fn sort(&mut self) {
        self.members.sort_unstable();
    }

    /// Clears to empty, retaining capacity.
    pub fn clear(&mut self) {
        for &v in &self.members {
            self.bitmap[v as usize] = false;
        }
        self.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut f = Frontier::new(10);
        assert!(f.insert(3));
        assert!(!f.insert(3));
        assert!(f.insert(7));
        assert_eq!(f.len(), 2);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        assert_eq!(f.density(), 0.2);
    }

    #[test]
    fn clear_resets_bitmap() {
        let mut f = Frontier::singleton(5, 2);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(2));
        assert!(f.insert(2));
    }

    #[test]
    fn sort_orders_members() {
        let mut f = Frontier::new(10);
        for v in [9, 1, 5] {
            f.insert(v);
        }
        f.sort();
        assert_eq!(f.members(), &[1, 5, 9]);
    }
}
