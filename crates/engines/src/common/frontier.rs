//! Frontier (active vertex set) used by traversal-style engines.
//!
//! Supports the two representations whose trade-off drives push–pull
//! engines: a sparse list of active vertices (cheap when few are active)
//! and a dense **bit-packed** bitmap over `Vec<u64>` words (cheap
//! membership tests, 8x denser than the old `Vec<bool>`, so a pull
//! phase's random `contains` probes hit cache far more often).
//! [`Frontier::density`] is what the push–pull engine's
//! direction-optimizing heuristic inspects.
//!
//! The structure is built for **double-buffered reuse**: traversal
//! kernels allocate a `current`/`next` pair once, then
//! `std::mem::swap` + [`Frontier::clear`] per superstep instead of
//! re-allocating `n`-sized buffers every level. `clear` is sparse (it
//! erases only the set bits of the members list) unless the set is so
//! dense that a word-fill is cheaper.
//!
//! Parallel producers never mutate a shared `Frontier`: workers collect
//! sparse per-worker candidate buffers and the caller merges them in
//! range order through [`Frontier::extend`], which preserves the exact
//! insertion sequence a sequential sweep would have produced — the
//! basis of the kernels' bit-identity across pool widths.

/// An active-vertex set over dense indices `0..n`.
#[derive(Debug, Clone)]
pub struct Frontier {
    n: usize,
    members: Vec<u32>,
    /// Bit-packed membership: bit `v % 64` of word `v / 64`.
    words: Vec<u64>,
}

impl Frontier {
    /// An empty frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        Frontier { n, members: Vec::new(), words: vec![0u64; n.div_ceil(64)] }
    }

    /// A frontier containing a single vertex.
    pub fn singleton(n: usize, v: u32) -> Self {
        let mut f = Frontier::new(n);
        f.insert(v);
        f
    }

    /// Adds `v` if absent; returns true when newly inserted.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        let (word, bit) = (v as usize / 64, 1u64 << (v % 64));
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        self.members.push(v);
        true
    }

    /// Merges sparse candidate buffers in the order given (deduping via
    /// the bitmap) — the sequential-equivalent merge for per-worker
    /// buffers produced over contiguous ranges.
    pub fn extend<I: IntoIterator<Item = u32>>(&mut self, candidates: I) {
        for v in candidates {
            self.insert(v);
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.words[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of active vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no vertex is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Active fraction `|F| / n`.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.members.len() as f64 / self.n as f64
        }
    }

    /// Active vertices in insertion order (deterministic).
    #[inline]
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Sorts members ascending — used before parallel range splits so
    /// behaviour does not depend on discovery order.
    pub fn sort(&mut self) {
        self.members.sort_unstable();
    }

    /// Clears to empty, retaining both buffers' capacity. Sparse sets
    /// erase member bits individually; dense ones fill the word array.
    pub fn clear(&mut self) {
        if self.members.len() >= self.words.len() {
            self.words.fill(0);
        } else {
            for &v in &self.members {
                self.words[v as usize / 64] = 0;
            }
        }
        self.members.clear();
    }

    /// Resident bytes of both representations (bitmap words + sparse
    /// member capacity) — reported by `repro_bench` so the footprint of
    /// the bit-packed layout is part of the committed trajectory.
    pub fn resident_bytes(&self) -> u64 {
        8 * self.words.len() as u64 + 4 * self.members.capacity() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut f = Frontier::new(10);
        assert!(f.insert(3));
        assert!(!f.insert(3));
        assert!(f.insert(7));
        assert_eq!(f.len(), 2);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        assert_eq!(f.density(), 0.2);
    }

    #[test]
    fn clear_resets_bitmap() {
        let mut f = Frontier::singleton(5, 2);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(2));
        assert!(f.insert(2));
    }

    #[test]
    fn dense_clear_resets_every_word() {
        let mut f = Frontier::new(200);
        for v in 0..200u32 {
            f.insert(v);
        }
        f.clear();
        assert!(f.is_empty());
        for v in 0..200u32 {
            assert!(!f.contains(v), "{v}");
        }
    }

    #[test]
    fn sort_orders_members() {
        let mut f = Frontier::new(10);
        for v in [9, 1, 5] {
            f.insert(v);
        }
        f.sort();
        assert_eq!(f.members(), &[1, 5, 9]);
    }

    #[test]
    fn bit_packing_spans_word_boundaries() {
        let mut f = Frontier::new(130);
        for v in [0u32, 63, 64, 127, 128, 129] {
            assert!(f.insert(v));
        }
        for v in [0u32, 63, 64, 127, 128, 129] {
            assert!(f.contains(v), "{v}");
        }
        assert!(!f.contains(1));
        assert!(!f.contains(65));
    }

    #[test]
    fn extend_preserves_sequential_insertion_order() {
        // Two "worker" buffers with a cross-buffer duplicate: merging in
        // range order must equal sequential insertion of the
        // concatenation.
        let mut merged = Frontier::new(32);
        merged.extend([5u32, 9, 7].into_iter().chain([9u32, 2, 5, 11]));
        let mut seq = Frontier::new(32);
        for v in [5u32, 9, 7, 9, 2, 5, 11] {
            seq.insert(v);
        }
        assert_eq!(merged.members(), seq.members());
    }

    #[test]
    fn resident_bytes_tracks_words_not_n() {
        let f = Frontier::new(1 << 16);
        // 65536 bits = 1024 words = 8 KiB, vs 64 KiB for Vec<bool>.
        assert_eq!(f.resident_bytes(), 8 * 1024);
    }
}
