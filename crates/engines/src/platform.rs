//! The `Platform` abstraction: what the harness drives.
//!
//! A platform is an engine (programming model + runtime) that can execute
//! the Graphalytics workload. The benchmark process is a phased
//! *lifecycle*, not a single call (paper §3; the Graphalytics driver API
//! codifies the same phases):
//!
//! 1. **upload** — [`Platform::upload`] hands the engine the generic
//!    [`Csr`] once; the engine builds its own preprocessed representation
//!    (a [`LoadedGraph`]): partitioned adjacency, cached degree/transpose
//!    views, pre-built edge datasets. Built once, reused across runs *and*
//!    algorithms.
//! 2. **execute × N** — [`Platform::run`] executes one algorithm on the
//!    uploaded graph. The harness repeats this `benchmark.repetitions`
//!    times; only this phase counts towards the paper's `T_proc`
//!    (EPS/EVPS are derived from processing time, never from upload).
//! 3. **delete** — [`Platform::delete`] releases the engine-owned
//!    representation.
//!
//! [`RunContext`] carries the shared execution runtime (the
//! [`WorkerPool`]), the repetition index, and phase-timing hooks whose
//! records the harness folds into the Granula archive; the returned
//! [`Execution`] carries the output (validated by the harness against the
//! reference implementation), measured wall time, and the
//! [`WorkCounters`] the run accumulated — which the harness feeds through
//! the engine's [`PerfProfile`] to obtain simulated cluster time.

use std::sync::Arc;
use std::time::Instant;

use graphalytics_core::error::{Error, Result};
use graphalytics_core::output::AlgorithmOutput;
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Algorithm, Csr, MutationBatch};

use graphalytics_cluster::WorkCounters;

use crate::profile::PerfProfile;

/// The result of one real execution (one repetition of the execute phase).
#[derive(Debug, Clone)]
pub struct Execution {
    pub output: AlgorithmOutput,
    pub counters: WorkCounters,
    /// Wall-clock seconds of the real local execution — the processing
    /// phase only; upload time is measured separately by the caller.
    pub wall_seconds: f64,
}

/// The result of one [`Platform::apply_mutations`] call — the `Mutate`
/// phase's analogue of [`Execution`]. Counts reflect what actually
/// changed (set semantics: re-inserting a present edge or deleting an
/// absent one is a no-op, not an error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mutation {
    /// Edges added.
    pub inserted: u64,
    /// Edges removed.
    pub deleted: u64,
    /// Existing edges whose weight changed.
    pub updated: u64,
    /// Whether this apply crossed the fill ratio and compacted the log.
    pub compacted: bool,
    /// Outstanding delta-log entries after the apply (0 if compacted).
    pub delta_arcs: u64,
    /// Log size relative to the resident base CSR after the apply.
    pub fill_ratio: f64,
    /// Wall-clock seconds of the apply (incl. incremental maintenance
    /// and any compaction) — recorded as the `Mutate` phase on the
    /// [`RunContext`].
    pub wall_seconds: f64,
}

/// An engine-owned, preprocessed graph representation produced by
/// [`Platform::upload`].
///
/// Engines downcast (via [`LoadedGraph::as_any`]) to their own concrete
/// type inside [`Platform::run`]; handing a graph uploaded by one engine
/// to another is an error, exactly like pointing a Giraph job at a
/// GraphMat heap.
pub trait LoadedGraph: Send + Sync {
    /// The generic CSR this representation was built from.
    fn csr(&self) -> &Csr;

    /// Downcast hook for the owning engine.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Estimated resident bytes of the engine-owned representation
    /// (defaults to the CSR footprint; engines with extra derived state
    /// add it on top).
    fn resident_bytes(&self) -> u64 {
        self.csr().resident_bytes()
    }

    /// Partition summary when this representation came through
    /// [`Platform::upload_sharded`] with more than one shard; `None` for
    /// monolithic uploads.
    fn shard_layout(&self) -> Option<crate::sharded::ShardLayout> {
        None
    }
}

/// One timed phase recorded by an engine during [`Platform::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    pub name: &'static str,
    pub secs: f64,
}

/// Per-run context: the execution runtime, the repetition index (drives
/// deterministic noise streams downstream), and phase-timer hooks whose
/// records the harness archives.
pub struct RunContext<'a> {
    /// The shared execution runtime. Owned by whoever owns the benchmark
    /// run (one per run in the harness, one per daemon in the service) so
    /// engines never spawn threads themselves; outputs are bit-identical
    /// for every pool width.
    pub pool: &'a WorkerPool,
    /// Repetition index of this execution within the job (0-based).
    pub run_index: u64,
    phases: Vec<PhaseRecord>,
    /// Granula-monitor gate: when true, engines collect per-superstep
    /// [`SpanRecord`]s during [`Platform::run`]. On by default; the
    /// harness turns it off when its `MonitorConfig` is disabled.
    tracing: bool,
    spans: Vec<crate::trace::SpanRecord>,
    /// Cooperative cancellation handle for this run. Defaults to a fresh
    /// (never-cancelled) token; the harness driver threads its job-level
    /// token through so the service can abort running jobs at the next
    /// superstep boundary.
    cancel: graphalytics_core::fault::CancelToken,
}

impl<'a> RunContext<'a> {
    /// A context for the first (or only) repetition.
    pub fn new(pool: &'a WorkerPool) -> Self {
        Self::with_run_index(pool, 0)
    }

    /// A context for repetition `run_index`.
    pub fn with_run_index(pool: &'a WorkerPool, run_index: u64) -> Self {
        RunContext {
            pool,
            run_index,
            phases: Vec::new(),
            tracing: true,
            spans: Vec::new(),
            cancel: graphalytics_core::fault::CancelToken::new(),
        }
    }

    /// Attaches the job-level cancellation token to this context.
    pub fn set_cancel(&mut self, token: graphalytics_core::fault::CancelToken) {
        self.cancel = token;
    }

    /// The cancellation token engines observe (also checked by the
    /// thread-local fault scope at superstep boundaries).
    pub fn cancel_token(&self) -> &graphalytics_core::fault::CancelToken {
        &self.cancel
    }

    /// Structured cancellation/deadline verdict for this run.
    pub fn check_cancelled(&self) -> Result<()> {
        self.cancel.check()
    }

    /// Enables or disables per-superstep span tracing for runs through
    /// this context.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    /// Whether span tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Installs this thread's span collector for one engine execution
    /// (a no-op collector when tracing is disabled). Pair with
    /// [`RunContext::absorb_trace`] after the algorithm dispatch; see
    /// [`crate::trace`].
    ///
    /// Deliberately *not* a closure-taking `trace_scope` method: routing
    /// the dispatch (which holds `&mut WorkCounters`) through a generic
    /// method on `&mut self` measurably deoptimized the tight sequential
    /// kernels — pushpull WCC lost ~25% throughput even with tracing
    /// disabled. Two plain calls around the dispatch keep the optimizer
    /// out of trouble.
    pub fn begin_trace(&mut self) {
        crate::trace::install(self.tracing);
    }

    /// Uninstalls the span collector and keeps everything the kernels
    /// recorded since [`RunContext::begin_trace`]. Runs on error paths
    /// too, so a failed repetition never leaks a live collector.
    pub fn absorb_trace(&mut self) {
        self.spans.extend(crate::trace::drain());
    }

    /// Spans recorded so far, in recording order.
    pub fn spans(&self) -> &[crate::trace::SpanRecord] {
        &self.spans
    }

    /// Drains the recorded spans (the harness folds them into the
    /// Granula archive after each repetition).
    pub fn take_spans(&mut self) -> Vec<crate::trace::SpanRecord> {
        std::mem::take(&mut self.spans)
    }

    /// Runs `f`, recording its wall time under `name`.
    pub fn time_phase<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let start = Instant::now();
        let result = f(self);
        self.record_phase(name, start.elapsed().as_secs_f64());
        result
    }

    /// Records an already-measured phase duration.
    pub fn record_phase(&mut self, name: &'static str, secs: f64) {
        self.phases.push(PhaseRecord { name, secs });
    }

    /// Phases recorded so far, in recording order.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Drains the recorded phases (the harness moves them into the
    /// Granula archive after each repetition).
    pub fn take_phases(&mut self) -> Vec<PhaseRecord> {
        std::mem::take(&mut self.phases)
    }
}

/// A graph-analysis platform engine, driven through the benchmark-run
/// lifecycle: [`upload`](Platform::upload) once, [`run`](Platform::run)
/// `N` times (across repetitions and algorithms), then
/// [`delete`](Platform::delete).
pub trait Platform: Send + Sync {
    /// Short model name: `pregel`, `dataflow`, `gas`, `spmv`, `native`,
    /// `pushpull`.
    fn name(&self) -> &'static str;

    /// The engine's performance profile (cost/memory constants, overheads).
    fn profile(&self) -> &PerfProfile;

    /// Whether the engine implements `algorithm`. Defaults to yes; the
    /// push–pull engine declines LCC like PGX.D in the paper.
    fn supports(&self, _algorithm: Algorithm) -> bool {
        true
    }

    /// The upload phase: builds this engine's preprocessed representation
    /// of `csr` on `pool`. Called once per (platform, dataset); the
    /// result is reused by every subsequent [`run`](Platform::run).
    fn upload(&self, csr: Arc<Csr>, pool: &WorkerPool) -> Result<Box<dyn LoadedGraph>>;

    /// Whether the engine has a sharded (multi-pool) execution path.
    /// Engines that do guarantee N-shard output bit-identical to
    /// single-shard for every supported algorithm.
    fn supports_sharded(&self) -> bool {
        false
    }

    /// The sharded upload variant: partitions `csr` per `plan` and
    /// builds a representation whose runs execute across per-shard
    /// pools with explicit inter-shard message queues. The default
    /// accepts `plan.shards <= 1` (a plain [`upload`](Platform::upload))
    /// and rejects more for engines without a sharded path.
    fn upload_sharded(
        &self,
        csr: Arc<Csr>,
        plan: &crate::sharded::ShardPlan,
        pool: &WorkerPool,
    ) -> Result<Box<dyn LoadedGraph>> {
        if plan.shards <= 1 {
            return self.upload(csr, pool);
        }
        Err(Error::InvalidParameters(format!(
            "platform {} has no sharded execution path",
            self.name()
        )))
    }

    /// Whether the engine can apply streaming mutations to a resident
    /// uploaded graph. Engines that do guarantee post-mutation results
    /// bit-identical (discrete outputs) or validator-epsilon-equal
    /// (PageRank) to a cold run on the materialized post-mutation graph.
    fn supports_mutation(&self) -> bool {
        false
    }

    /// The mutate lifecycle verb: applies `batch` (edge insertions and
    /// deletions) to a resident uploaded graph in place, maintaining any
    /// cached incremental algorithm state, and compacts the delta log
    /// when it crosses the engine's fill ratio. Wall time is recorded as
    /// a measured `Mutate` phase on `ctx`. The default rejects —
    /// engines without a delta-log representation cannot mutate.
    fn apply_mutations(
        &self,
        graph: &dyn LoadedGraph,
        batch: &MutationBatch,
        ctx: &mut RunContext<'_>,
    ) -> Result<Mutation> {
        let _ = (graph, batch, ctx);
        Err(Error::InvalidParameters(format!(
            "platform {} has no mutation path",
            self.name()
        )))
    }

    /// One execution of `algorithm` on a previously uploaded graph.
    ///
    /// `graph` must come from this platform's own
    /// [`upload`](Platform::upload); the engine downcasts to its concrete
    /// representation and errors on a foreign graph. Execution happens on
    /// `ctx.pool`; outputs are bit-identical for every pool width and
    /// every repetition.
    fn run(
        &self,
        graph: &dyn LoadedGraph,
        algorithm: Algorithm,
        params: &AlgorithmParams,
        ctx: &mut RunContext<'_>,
    ) -> Result<Execution>;

    /// The delete phase: releases the engine-owned representation. The
    /// default simply drops it; engines with external state can override.
    fn delete(&self, graph: Box<dyn LoadedGraph>) {
        drop(graph);
    }

    /// Estimates the counters a run on a graph with the given size/traits
    /// would produce, without executing — used for paper-scale datasets
    /// that cannot be materialized (see `estimate`).
    fn estimate(
        &self,
        vertices: u64,
        edges: u64,
        traits_: &graphalytics_core::datasets::GraphTraits,
        directed: bool,
        algorithm: Algorithm,
        params: &AlgorithmParams,
    ) -> WorkCounters;
}

/// Helper: the standard unsupported-algorithm error.
pub fn unsupported(platform: &str, algorithm: Algorithm) -> Error {
    Error::Unsupported { platform: platform.to_string(), algorithm: algorithm.to_string() }
}

/// Downcasts a [`LoadedGraph`] to the engine's concrete representation,
/// rejecting graphs uploaded by a different platform.
pub fn downcast_graph<'a, T: 'static>(
    platform: &str,
    graph: &'a dyn LoadedGraph,
) -> Result<&'a T> {
    graph.as_any().downcast_ref::<T>().ok_or_else(|| {
        Error::InvalidParameters(format!(
            "graph was not uploaded through platform {platform}"
        ))
    })
}

/// Convenience for one-shot callers (examples, micro-benchmarks): a full
/// upload → run → delete lifecycle for a single `(algorithm, params)`.
/// The returned [`Execution::wall_seconds`] covers the run phase only.
/// Benchmark code that repeats runs should drive the phases itself so the
/// upload is paid once.
pub fn run_once(
    platform: &dyn Platform,
    csr: &Arc<Csr>,
    algorithm: Algorithm,
    params: &AlgorithmParams,
    pool: &WorkerPool,
) -> Result<Execution> {
    let loaded = platform.upload(csr.clone(), pool)?;
    let mut ctx = RunContext::new(pool);
    let result = platform.run(loaded.as_ref(), algorithm, params, &mut ctx);
    platform.delete(loaded);
    result
}

/// All six engines, in the paper's table order (community then industry):
/// Giraph-like, GraphX-like, PowerGraph-like, GraphMat-like, OpenG-like,
/// PGX.D-like.
pub fn all_platforms() -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(crate::pregel::PregelEngine::new()),
        Box::new(crate::dataflow::DataflowEngine::new()),
        Box::new(crate::gas::GasEngine::new()),
        Box::new(crate::spmv::SpmvEngine::new()),
        Box::new(crate::native::NativeEngine::new()),
        Box::new(crate::pushpull::PushPullEngine::new()),
    ]
}

/// Looks an engine up by model name or by its paper analogue
/// (case-insensitive): `"pregel"` or `"giraph"`, `"spmv"` or `"graphmat"`.
pub fn platform_by_name(name: &str) -> Option<Box<dyn Platform>> {
    let lower = name.to_ascii_lowercase();
    all_platforms().into_iter().find(|p| {
        p.name() == lower || p.profile().paper_analog.to_ascii_lowercase() == lower
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::GraphBuilder;

    fn sample_csr() -> Arc<Csr> {
        let mut b = GraphBuilder::new(true);
        b.add_vertex_range(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        Arc::new(b.build().unwrap().to_csr())
    }

    #[test]
    fn six_engines_registered() {
        let all = all_platforms();
        assert_eq!(all.len(), 6);
        let names: Vec<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["pregel", "dataflow", "gas", "spmv", "native", "pushpull"]);
    }

    #[test]
    fn lookup_by_both_names() {
        assert!(platform_by_name("pregel").is_some());
        assert!(platform_by_name("Giraph").is_some());
        assert!(platform_by_name("GraphMat").is_some());
        assert!(platform_by_name("PGX.D").is_some());
        assert!(platform_by_name("nope").is_none());
    }

    #[test]
    fn pushpull_declines_lcc_like_pgxd() {
        let p = platform_by_name("pgx.d").unwrap();
        assert!(!p.supports(Algorithm::Lcc));
        assert!(p.supports(Algorithm::Bfs));
        let g = platform_by_name("giraph").unwrap();
        assert!(g.supports(Algorithm::Lcc));
    }

    #[test]
    fn foreign_loaded_graph_is_rejected() {
        // A graph uploaded through one engine must not run on another.
        let csr = sample_csr();
        let pool = WorkerPool::inline();
        let spmv = platform_by_name("spmv").unwrap();
        let pregel = platform_by_name("pregel").unwrap();
        let loaded = spmv.upload(csr.clone(), &pool).unwrap();
        let mut ctx = RunContext::new(&pool);
        let err = pregel
            .run(loaded.as_ref(), Algorithm::Bfs, &AlgorithmParams::with_source(0), &mut ctx)
            .unwrap_err();
        assert!(err.to_string().contains("not uploaded"), "{err}");
        spmv.delete(loaded);
    }

    #[test]
    fn loaded_graph_exposes_csr_and_bytes() {
        let csr = sample_csr();
        let pool = WorkerPool::inline();
        for platform in all_platforms() {
            let loaded = platform.upload(csr.clone(), &pool).unwrap();
            assert_eq!(loaded.csr().num_vertices(), 4, "{}", platform.name());
            assert!(
                loaded.resident_bytes() >= csr.resident_bytes(),
                "{}: engine representation at least pins the CSR",
                platform.name()
            );
            platform.delete(loaded);
        }
    }

    #[test]
    fn sharded_upload_default_and_overrides() {
        let csr = sample_csr();
        let pool = WorkerPool::inline();
        let plan = crate::sharded::ShardPlan::new(2);
        for platform in all_platforms() {
            // shards <= 1 always works (falls back to the plain upload).
            let single = platform
                .upload_sharded(csr.clone(), &crate::sharded::ShardPlan::new(1), &pool)
                .unwrap();
            assert!(single.shard_layout().is_none(), "{}", platform.name());
            platform.delete(single);
            let result = platform.upload_sharded(csr.clone(), &plan, &pool);
            if platform.supports_sharded() {
                let loaded = result.unwrap();
                let layout = loaded.shard_layout().expect("sharded upload reports layout");
                assert_eq!(layout.shards, 2, "{}", platform.name());
                platform.delete(loaded);
            } else {
                assert!(result.is_err(), "{} must reject multi-shard uploads", platform.name());
            }
        }
        // Pregel and pushpull are the sharded engines.
        assert!(platform_by_name("pregel").unwrap().supports_sharded());
        assert!(platform_by_name("pushpull").unwrap().supports_sharded());
        assert!(!platform_by_name("spmv").unwrap().supports_sharded());
    }

    #[test]
    fn run_context_records_phases() {
        let pool = WorkerPool::inline();
        let mut ctx = RunContext::with_run_index(&pool, 3);
        assert_eq!(ctx.run_index, 3);
        let out = ctx.time_phase("ProcessGraph", |_| 41 + 1);
        assert_eq!(out, 42);
        ctx.record_phase("Offload", 0.5);
        let phases = ctx.take_phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "ProcessGraph");
        assert_eq!(phases[1], PhaseRecord { name: "Offload", secs: 0.5 });
        assert!(ctx.phases().is_empty(), "take_phases drains");
    }

    #[test]
    fn run_collects_spans_when_tracing_enabled() {
        let csr = sample_csr();
        let pool = WorkerPool::inline();
        let platform = platform_by_name("pregel").unwrap();
        let loaded = platform.upload(csr, &pool).unwrap();
        let params = AlgorithmParams::with_source(0);

        let mut ctx = RunContext::new(&pool);
        assert!(ctx.tracing(), "tracing defaults on");
        platform.run(loaded.as_ref(), Algorithm::Bfs, &params, &mut ctx).unwrap();
        let spans = ctx.take_spans();
        assert!(!spans.is_empty(), "traced run records superstep spans");
        for span in &spans {
            assert_eq!(span.name, "Superstep");
            assert!(span.infos.iter().any(|(k, _)| k == "index"));
            assert!(span.infos.iter().any(|(k, _)| k == "active"));
            assert!(span.infos.iter().any(|(k, _)| k == "messages"));
        }

        let mut quiet = RunContext::new(&pool);
        quiet.set_tracing(false);
        platform.run(loaded.as_ref(), Algorithm::Bfs, &params, &mut quiet).unwrap();
        assert!(quiet.spans().is_empty(), "disabled tracing collects nothing");
        platform.delete(loaded);
    }

    #[test]
    fn run_once_matches_explicit_lifecycle() {
        let csr = sample_csr();
        let pool = WorkerPool::inline();
        let platform = platform_by_name("native").unwrap();
        let params = AlgorithmParams::with_source(0);
        let one_shot = run_once(platform.as_ref(), &csr, Algorithm::Bfs, &params, &pool).unwrap();
        let loaded = platform.upload(csr.clone(), &pool).unwrap();
        let mut ctx = RunContext::new(&pool);
        let explicit =
            platform.run(loaded.as_ref(), Algorithm::Bfs, &params, &mut ctx).unwrap();
        platform.delete(loaded);
        assert_eq!(one_shot.output, explicit.output);
    }
}
