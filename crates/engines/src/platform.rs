//! The `Platform` abstraction: what the harness drives.
//!
//! A platform is an engine (programming model + runtime) that can execute
//! the Graphalytics workload. [`Platform::execute`] runs an algorithm *for
//! real* on this host and returns the output (validated by the harness
//! against the reference implementation), measured wall time, and the
//! [`WorkCounters`] the run accumulated — which the harness feeds through
//! the engine's [`PerfProfile`] to obtain simulated cluster time.

use graphalytics_core::error::{Error, Result};
use graphalytics_core::output::AlgorithmOutput;
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::{Algorithm, Csr};

use graphalytics_cluster::WorkCounters;

use crate::profile::PerfProfile;

/// The result of one real execution.
#[derive(Debug, Clone)]
pub struct Execution {
    pub output: AlgorithmOutput,
    pub counters: WorkCounters,
    /// Wall-clock seconds of the real local execution.
    pub wall_seconds: f64,
}

/// A graph-analysis platform engine.
pub trait Platform: Send + Sync {
    /// Short model name: `pregel`, `dataflow`, `gas`, `spmv`, `native`,
    /// `pushpull`.
    fn name(&self) -> &'static str;

    /// The engine's performance profile (cost/memory constants, overheads).
    fn profile(&self) -> &PerfProfile;

    /// Whether the engine implements `algorithm`. Defaults to yes; the
    /// push–pull engine declines LCC like PGX.D in the paper.
    fn supports(&self, _algorithm: Algorithm) -> bool {
        true
    }

    /// Executes `algorithm` on `csr` on the shared execution runtime.
    ///
    /// The pool is owned by the caller (one per benchmark run in the
    /// harness, one per daemon in the service) so engines never spawn
    /// threads themselves; outputs are bit-identical for every pool
    /// width.
    fn execute(
        &self,
        csr: &Csr,
        algorithm: Algorithm,
        params: &AlgorithmParams,
        pool: &WorkerPool,
    ) -> Result<Execution>;

    /// Estimates the counters a run on a graph with the given size/traits
    /// would produce, without executing — used for paper-scale datasets
    /// that cannot be materialized (see `estimate`).
    fn estimate(
        &self,
        vertices: u64,
        edges: u64,
        traits_: &graphalytics_core::datasets::GraphTraits,
        directed: bool,
        algorithm: Algorithm,
        params: &AlgorithmParams,
    ) -> WorkCounters;
}

/// Helper: the standard unsupported-algorithm error.
pub fn unsupported(platform: &str, algorithm: Algorithm) -> Error {
    Error::Unsupported { platform: platform.to_string(), algorithm: algorithm.to_string() }
}

/// All six engines, in the paper's table order (community then industry):
/// Giraph-like, GraphX-like, PowerGraph-like, GraphMat-like, OpenG-like,
/// PGX.D-like.
pub fn all_platforms() -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(crate::pregel::PregelEngine::new()),
        Box::new(crate::dataflow::DataflowEngine::new()),
        Box::new(crate::gas::GasEngine::new()),
        Box::new(crate::spmv::SpmvEngine::new()),
        Box::new(crate::native::NativeEngine::new()),
        Box::new(crate::pushpull::PushPullEngine::new()),
    ]
}

/// Looks an engine up by model name or by its paper analogue
/// (case-insensitive): `"pregel"` or `"giraph"`, `"spmv"` or `"graphmat"`.
pub fn platform_by_name(name: &str) -> Option<Box<dyn Platform>> {
    let lower = name.to_ascii_lowercase();
    all_platforms().into_iter().find(|p| {
        p.name() == lower || p.profile().paper_analog.to_ascii_lowercase() == lower
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_engines_registered() {
        let all = all_platforms();
        assert_eq!(all.len(), 6);
        let names: Vec<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["pregel", "dataflow", "gas", "spmv", "native", "pushpull"]);
    }

    #[test]
    fn lookup_by_both_names() {
        assert!(platform_by_name("pregel").is_some());
        assert!(platform_by_name("Giraph").is_some());
        assert!(platform_by_name("GraphMat").is_some());
        assert!(platform_by_name("PGX.D").is_some());
        assert!(platform_by_name("nope").is_none());
    }

    #[test]
    fn pushpull_declines_lcc_like_pgxd() {
        let p = platform_by_name("pgx.d").unwrap();
        assert!(!p.supports(Algorithm::Lcc));
        assert!(p.supports(Algorithm::Bfs));
        let g = platform_by_name("giraph").unwrap();
        assert!(g.supports(Algorithm::Lcc));
    }
}
