//! The push–pull engine (PGX.D-like).
//!
//! "PGX.D enables vertices to *pull* (read) data from neighbors, as
//! opposed to conventional graph analysis systems which only allow
//! vertices to *push* (write) data" (Section 3.1). The engine implements
//! the hybrid: every iteration chooses **push** (scatter from the active
//! frontier, producing messages) or **pull** (scan the in-edges of
//! undecided vertices, no messages) — the generalization of
//! direction-optimizing BFS, driven by Beamer-style α/β scanned-edge
//! estimates rather than a fixed density threshold.
//!
//! The traversal kernels (BFS, SSSP) run on the shared [`WorkerPool`]:
//! workers scan contiguous chunks of the frontier (or vertex range) and
//! stage sparse candidate buffers; the caller merges them in range
//! order, which reproduces the exact discovery/relaxation order of a
//! sequential sweep — so outputs *and* work counters are bit-identical
//! at every pool width. SSSP is delta-stepping (Meyer & Sanders) over a
//! light/heavy edge split cached on the uploaded representation.
//!
//! Profile-wise this engine mirrors PGX.D: near-linear thread scaling
//! (cooperative context switching ⇒ tiny serial fraction), a compact wire
//! format on InfiniBand, but a large memory footprint ("optimized for
//! machines with large amounts of cores and memory", Section 4.6) and —
//! like the real system — **no LCC implementation** (Figure 6 marks it
//! `NA`).

mod delta;
mod sharded;

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use graphalytics_core::error::Result;
use graphalytics_core::fault::{self, FaultSite};
use graphalytics_core::output::{AlgorithmOutput, OutputValues};
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::{Algorithm, Csr, VertexId};

use graphalytics_cluster::WorkCounters;

use crate::common::frontier::Frontier;
use crate::common::pool::{SharedSlice, WorkerPool};
use crate::platform::{unsupported, Execution, LoadedGraph, Platform, RunContext};
use crate::profile::PerfProfile;
use crate::sharded::ShardPlan;
use crate::trace::IterTimer;

pub use sharded::PushPullShardedGraph;

/// Beamer α: a push level switches to pull when the frontier's
/// out-degree sum exceeds `m_unexplored / α` — the point where scanning
/// undecided vertices' in-edges (with early exit) beats scattering the
/// whole frontier.
pub const BFS_ALPHA: u64 = 14;

/// Beamer β: a pull level switches back to push once the frontier
/// shrinks below `n / β`.
pub const BFS_BETA: u64 = 24;

/// Below this arc count SSSP skips the light/heavy split and runs the
/// simple label-correcting kernel. Delta-stepping's win is scanning
/// fewer edges, but it pays per-relaxation bucket bookkeeping
/// (`BTreeMap` re-bucketing, activation filters) that the
/// label-correcting loop does not; measured on graph500 instances the
/// wall-time crossover sits around 10^5 arcs, so smaller graphs take
/// the cheaper kernel.
pub const DELTA_MIN_ARCS: u64 = 100_000;

/// Estimated scanned-edge work under which a traversal round runs inline
/// instead of dispatching to the pool — a condvar wake costs more than a
/// few thousand edge scans. The estimate is a property of the active
/// *set*, so the inline/parallel decision is identical at every width
/// (and both paths merge chunk results in the same order anyway).
const PAR_WORK_CUTOFF: u64 = 4096;

/// Cached `available_parallelism`: the pool deliberately does not clamp
/// its width to the host (partitioning must depend only on `(threads,
/// n)`), so the kernels check the host themselves before paying for a
/// dispatch that pure time-slicing cannot win back.
fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// True when a traversal round is worth dispatching to the pool: enough
/// estimated edge work to amortize the wake-up, more than one item, and
/// a host that can actually run workers concurrently. Every input is
/// set-level or host-constant — never pool-width-dependent — so the
/// decision is identical at every width; and since the inline and
/// chunked paths produce identical outputs *and* counters by
/// construction, the choice is unobservable in results either way.
fn parallel_worth(len: usize, work: u64) -> bool {
    work >= PAR_WORK_CUTOFF && len > 1 && host_cores() > 1
}

/// Direction-optimizing switch state shared by the single-shard and
/// sharded BFS drivers. All inputs are set-level quantities (frontier
/// out-degree sum, frontier cardinality, undiscovered-edge estimate), so
/// the push/pull schedule is identical at every pool width and shard
/// count.
struct DirectionState {
    pulling: bool,
    /// Out-degree sum of still-undiscovered vertices (Beamer's `m_u`).
    unexplored: u64,
}

impl DirectionState {
    fn new(total_out_degree: u64, root_degree: u64) -> Self {
        DirectionState { pulling: false, unexplored: total_out_degree.saturating_sub(root_degree) }
    }

    /// Picks this level's direction from the frontier's out-degree sum
    /// and cardinality.
    fn choose(&mut self, frontier_degree: u64, frontier_len: usize, n: usize) -> bool {
        if self.pulling {
            if (frontier_len as u64).saturating_mul(BFS_BETA) < n as u64 {
                self.pulling = false;
            }
        } else if frontier_degree.saturating_mul(BFS_ALPHA) > self.unexplored {
            self.pulling = true;
        }
        self.pulling
    }

    /// Subtracts newly discovered vertices' out-degrees from `m_u`.
    fn discovered(&mut self, degree_sum: u64) {
        self.unexplored = self.unexplored.saturating_sub(degree_sum);
    }
}

/// The delta-stepping edge split: every vertex's out-edges partitioned
/// into light (`w ≤ Δ`) and heavy (`w > Δ`) CSR-shaped arrays, with the
/// original row order preserved inside each class. Built once per
/// uploaded graph — lazily, on the first SSSP run, recorded as the
/// `TraversalPrep` phase so repetitions reuse it and the processing
/// clock never includes it.
pub struct LightHeavy {
    delta: f64,
    light_index: Vec<u32>,
    light_targets: Vec<u32>,
    light_weights: Vec<f64>,
    heavy_index: Vec<u32>,
    heavy_targets: Vec<u32>,
    heavy_weights: Vec<f64>,
}

impl LightHeavy {
    /// The bucket width Δ (mean out-edge weight).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    #[inline]
    fn light(&self, u: u32) -> (&[u32], &[f64]) {
        let (lo, hi) =
            (self.light_index[u as usize] as usize, self.light_index[u as usize + 1] as usize);
        (&self.light_targets[lo..hi], &self.light_weights[lo..hi])
    }

    #[inline]
    fn heavy(&self, u: u32) -> (&[u32], &[f64]) {
        let (lo, hi) =
            (self.heavy_index[u as usize] as usize, self.heavy_index[u as usize + 1] as usize);
        (&self.heavy_targets[lo..hi], &self.heavy_weights[lo..hi])
    }

    #[inline]
    fn light_degree(&self, u: u32) -> u64 {
        (self.light_index[u as usize + 1] - self.light_index[u as usize]) as u64
    }

    #[inline]
    fn heavy_degree(&self, u: u32) -> u64 {
        (self.heavy_index[u as usize + 1] - self.heavy_index[u as usize]) as u64
    }

    /// Total light arcs in the split.
    pub fn num_light(&self) -> u64 {
        self.light_targets.len() as u64
    }

    /// Total heavy arcs in the split.
    pub fn num_heavy(&self) -> u64 {
        self.heavy_targets.len() as u64
    }

    /// Bytes held by both halves of the split.
    pub fn resident_bytes(&self) -> u64 {
        4 * (self.light_index.len()
            + self.heavy_index.len()
            + self.light_targets.len()
            + self.heavy_targets.len()) as u64
            + 8 * (self.light_weights.len() + self.heavy_weights.len()) as u64
    }
}

/// Mean out-edge weight, computed width-invariantly: each row is summed
/// left-to-right on whichever worker owns it, and the `n` row sums are
/// folded sequentially — the f64 result is bit-identical at every pool
/// width. Returns `None` when the mean is unusable as a bucket width.
fn mean_weight<'a, R>(n: usize, arcs: u64, rows: R, pool: &WorkerPool) -> Option<f64>
where
    R: Fn(u32) -> (&'a [u32], &'a [f64]) + Sync,
{
    if arcs == 0 {
        return None;
    }
    let row_sums: Vec<f64> = pool
        .run(n, |_, range| {
            range.map(|u| rows(u as u32).1.iter().sum::<f64>()).collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mean = row_sums.iter().sum::<f64>() / arcs as f64;
    (mean.is_finite() && mean > 0.0).then_some(mean)
}

/// Partitions every row into its light/heavy halves at Δ. Per-worker
/// pieces are concatenated in range order, so the arrays equal what a
/// single sequential sweep would build.
fn split_rows<'a, R>(n: usize, delta: f64, rows: R, pool: &WorkerPool) -> LightHeavy
where
    R: Fn(u32) -> (&'a [u32], &'a [f64]) + Sync,
{
    struct Piece {
        light_counts: Vec<u32>,
        heavy_counts: Vec<u32>,
        lt: Vec<u32>,
        lw: Vec<f64>,
        ht: Vec<u32>,
        hw: Vec<f64>,
    }
    let pieces: Vec<Piece> = pool.run(n, |_, range| {
        let mut p = Piece {
            light_counts: Vec::with_capacity(range.len()),
            heavy_counts: Vec::with_capacity(range.len()),
            lt: Vec::new(),
            lw: Vec::new(),
            ht: Vec::new(),
            hw: Vec::new(),
        };
        for u in range {
            let (targets, weights) = rows(u as u32);
            let (mut light, mut heavy) = (0u32, 0u32);
            for (&v, &w) in targets.iter().zip(weights) {
                if w <= delta {
                    p.lt.push(v);
                    p.lw.push(w);
                    light += 1;
                } else {
                    p.ht.push(v);
                    p.hw.push(w);
                    heavy += 1;
                }
            }
            p.light_counts.push(light);
            p.heavy_counts.push(heavy);
        }
        p
    });
    let mut lh = LightHeavy {
        delta,
        light_index: Vec::with_capacity(n + 1),
        light_targets: Vec::new(),
        light_weights: Vec::new(),
        heavy_index: Vec::with_capacity(n + 1),
        heavy_targets: Vec::new(),
        heavy_weights: Vec::new(),
    };
    lh.light_index.push(0);
    lh.heavy_index.push(0);
    let (mut light_total, mut heavy_total) = (0u32, 0u32);
    for p in pieces {
        for count in p.light_counts {
            light_total += count;
            lh.light_index.push(light_total);
        }
        for count in p.heavy_counts {
            heavy_total += count;
            lh.heavy_index.push(heavy_total);
        }
        lh.light_targets.extend_from_slice(&p.lt);
        lh.light_weights.extend_from_slice(&p.lw);
        lh.heavy_targets.extend_from_slice(&p.ht);
        lh.heavy_weights.extend_from_slice(&p.hw);
    }
    lh
}

/// Whether the graph qualifies for delta-stepping at all. Arc counts
/// above `u32::MAX` would overflow the split's `u32` offsets.
fn delta_eligible(csr: &Csr) -> bool {
    csr.is_weighted()
        && csr.num_arcs() as u64 >= DELTA_MIN_ARCS
        && csr.num_arcs() as u64 <= u32::MAX as u64
}

/// The uploaded representation: PGX.D's dual-direction adjacency. The
/// upload phase pins both CSR directions (push walks out-edges, pull
/// walks in-edges — the engine needs both resident, which is part of
/// PGX.D's large-memory profile) and caches the out-degree table that
/// the pull direction and the α/β switch consult.
pub struct PushPullGraph {
    csr: Arc<Csr>,
    /// Cached out-degrees for the pull direction and the α/β estimates.
    out_degrees: Box<[u32]>,
    /// Σ out-degrees — the BFS `m_u` starting point.
    total_out_degree: u64,
    /// Delta-stepping split, built on first SSSP use (`TraversalPrep`).
    light_heavy: OnceLock<Option<LightHeavy>>,
    /// Streaming-mutation state; `None` until the first
    /// [`Platform::apply_mutations`] batch arrives.
    delta: delta::DeltaSlot,
}

impl PushPullGraph {
    /// The full cached degree vector.
    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// Σ out-degrees over all vertices.
    #[inline]
    pub fn total_out_degree(&self) -> u64 {
        self.total_out_degree
    }

    /// The delta-stepping split, built on first use and cached on the
    /// uploaded representation. `None` when the graph is unweighted or
    /// too small for bucketing to pay.
    pub fn light_heavy(&self, pool: &WorkerPool) -> Option<&LightHeavy> {
        self.light_heavy
            .get_or_init(|| {
                if !delta_eligible(&self.csr) {
                    return None;
                }
                let csr = &self.csr;
                let n = csr.num_vertices();
                let rows = |u: u32| (csr.out_neighbors(u), csr.out_weights(u));
                let delta = mean_weight(n, csr.num_arcs() as u64, rows, pool)?;
                Some(split_rows(n, delta, rows, pool))
            })
            .as_ref()
    }

    /// Whether the split has already been built (used by `run` to decide
    /// if a `TraversalPrep` phase is still owed).
    pub fn traversal_prepared(&self) -> bool {
        self.light_heavy.get().is_some()
    }
}

impl LoadedGraph for PushPullGraph {
    fn csr(&self) -> &Csr {
        &self.csr
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn resident_bytes(&self) -> u64 {
        self.csr.resident_bytes()
            + 4 * self.out_degrees.len() as u64
            + self
                .light_heavy
                .get()
                .and_then(|split| split.as_ref())
                .map_or(0, LightHeavy::resident_bytes)
    }
}

/// Which representation a run dispatches to: the monolithic
/// dual-direction CSR on the shared pool, or the shard set with its
/// per-shard pools and queues. Both produce bit-identical output for
/// every supported algorithm.
enum Exec<'a> {
    Single(&'a PushPullGraph),
    Sharded(&'a PushPullShardedGraph),
}

impl<'a> Exec<'a> {
    fn csr(&self) -> &'a Csr {
        match self {
            Exec::Single(g) => g.csr(),
            Exec::Sharded(g) => g.set().csr(),
        }
    }

    fn bfs(&self, root: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<i64> {
        match self {
            Exec::Single(g) => direction_optimizing_bfs(g, root, pool, c),
            Exec::Sharded(g) => sharded::sharded_bfs(g, root, c),
        }
    }

    fn pagerank(
        &self,
        iterations: u32,
        damping: f64,
        pool: &WorkerPool,
        c: &mut WorkCounters,
    ) -> Vec<f64> {
        match self {
            Exec::Single(g) => pull_pagerank(g, iterations, damping, pool, c),
            Exec::Sharded(g) => sharded::sharded_pagerank(g, iterations, damping, c),
        }
    }

    fn wcc(&self, c: &mut WorkCounters) -> Vec<VertexId> {
        match self {
            Exec::Single(g) => pushpull_wcc(g.csr(), c),
            Exec::Sharded(g) => sharded::sharded_wcc(g, c),
        }
    }

    fn cdlp(&self, iterations: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<VertexId> {
        match self {
            Exec::Single(g) => pull_cdlp(g.csr(), iterations, pool, c),
            Exec::Sharded(g) => sharded::sharded_cdlp(g, iterations, c),
        }
    }

    fn sssp(&self, root: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<f64> {
        match self {
            Exec::Single(g) => match g.light_heavy(pool) {
                Some(split) => delta_stepping_sssp(g.csr(), split, root, pool, c),
                None => label_correcting_sssp(g.csr(), root, c),
            },
            Exec::Sharded(g) => sharded::sharded_sssp(g, pool, root, c),
        }
    }
}

/// Builds the dual-direction representation with its cached degree
/// table — the upload phase, also reused for mutated-graph snapshots.
fn build_graph(csr: Arc<Csr>, pool: &WorkerPool) -> PushPullGraph {
    let n = csr.num_vertices();
    let csr_ref = &csr;
    let degrees: Vec<u32> = pool
        .run(n, |_, range| {
            range.map(|u| csr_ref.out_degree(u as u32) as u32).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let total_out_degree = degrees.iter().map(|&d| d as u64).sum();
    PushPullGraph {
        csr,
        out_degrees: degrees.into(),
        total_out_degree,
        light_heavy: OnceLock::new(),
        delta: delta::empty_slot(),
    }
}

/// The PGX.D-like platform.
pub struct PushPullEngine {
    profile: PerfProfile,
}

impl PushPullEngine {
    pub fn new() -> Self {
        PushPullEngine { profile: PerfProfile::pushpull() }
    }
}

impl Default for PushPullEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform for PushPullEngine {
    fn name(&self) -> &'static str {
        "pushpull"
    }

    fn profile(&self) -> &PerfProfile {
        &self.profile
    }

    fn supports(&self, algorithm: Algorithm) -> bool {
        algorithm != Algorithm::Lcc
    }

    fn upload(&self, csr: Arc<Csr>, pool: &WorkerPool) -> Result<Box<dyn LoadedGraph>> {
        Ok(Box::new(build_graph(csr, pool)))
    }

    fn supports_sharded(&self) -> bool {
        true
    }

    fn upload_sharded(
        &self,
        csr: Arc<Csr>,
        plan: &ShardPlan,
        pool: &WorkerPool,
    ) -> Result<Box<dyn LoadedGraph>> {
        if plan.shards <= 1 {
            return self.upload(csr, pool);
        }
        let set = crate::sharded::ShardSet::build(csr, plan, pool)?;
        Ok(Box::new(PushPullShardedGraph::new(set)))
    }

    fn supports_mutation(&self) -> bool {
        true
    }

    fn apply_mutations(
        &self,
        graph: &dyn LoadedGraph,
        batch: &graphalytics_core::MutationBatch,
        ctx: &mut RunContext<'_>,
    ) -> Result<crate::platform::Mutation> {
        if let Some(g) = graph.as_any().downcast_ref::<PushPullGraph>() {
            return delta::apply(g, batch, ctx);
        }
        if graph.as_any().downcast_ref::<PushPullShardedGraph>().is_some() {
            return Err(graphalytics_core::Error::InvalidParameters(
                "sharded pushpull graphs do not take mutations; mutate an unsharded upload"
                    .into(),
            ));
        }
        Err(graphalytics_core::Error::InvalidParameters(format!(
            "graph was not uploaded through platform {}",
            self.name()
        )))
    }

    fn run(
        &self,
        graph: &dyn LoadedGraph,
        algorithm: Algorithm,
        params: &AlgorithmParams,
        ctx: &mut RunContext<'_>,
    ) -> Result<Execution> {
        let exec = if let Some(g) = graph.as_any().downcast_ref::<PushPullGraph>() {
            Exec::Single(g)
        } else if let Some(g) = graph.as_any().downcast_ref::<PushPullShardedGraph>() {
            Exec::Sharded(g)
        } else {
            return Err(graphalytics_core::Error::InvalidParameters(format!(
                "graph was not uploaded through platform {}",
                self.name()
            )));
        };
        // Mutated resident graphs route through the delta view: WCC and
        // PageRank serve incrementally maintained state; everything else
        // runs on a lazily materialized snapshot of the merged graph
        // (built once per mutation epoch, recorded as `Materialize`).
        let mut snapshot_hold: Option<Arc<PushPullGraph>> = None;
        if let Exec::Single(g) = &exec {
            if g.has_mutations() {
                match algorithm {
                    Algorithm::Wcc | Algorithm::PageRank => {
                        return delta::run_incremental(g, algorithm, params, ctx);
                    }
                    Algorithm::Lcc => return Err(unsupported(self.name(), algorithm)),
                    _ => {
                        let (snap, built) = g.mutated_snapshot(ctx.pool)?;
                        if let Some(secs) = built {
                            ctx.record_phase("Materialize", secs);
                        }
                        snapshot_hold = Some(snap);
                    }
                }
            }
        }
        let exec = match &snapshot_hold {
            Some(snap) => Exec::Single(snap),
            None => exec,
        };
        let csr = exec.csr();
        let pool = ctx.pool;
        // The one-time SSSP preprocessing (the delta-stepping light/heavy
        // split) runs before the processing clock starts and is recorded
        // as its own phase — the paper's methodology prices graph
        // preprocessing separately from T_proc, and repetitions reuse it.
        if algorithm == Algorithm::Sssp && csr.is_weighted() {
            let prepared = match &exec {
                Exec::Single(g) => g.traversal_prepared(),
                Exec::Sharded(g) => g.traversal_prepared(),
            };
            if !prepared {
                let prep = Instant::now();
                match &exec {
                    Exec::Single(g) => {
                        g.light_heavy(pool);
                    }
                    Exec::Sharded(g) => {
                        g.light_heavy(pool);
                    }
                }
                ctx.record_phase("TraversalPrep", prep.elapsed().as_secs_f64());
            }
        }
        let start = Instant::now();
        let mut c = WorkCounters::new();
        ctx.check_cancelled()?;
        ctx.begin_trace();
        let values = fault::catch_abort(|| -> Result<OutputValues> {
            Ok(match algorithm {
                Algorithm::Bfs => {
                    let root = graphalytics_core::algorithms::resolve_root(csr, params)?;
                    OutputValues::I64(exec.bfs(root, pool, &mut c))
                }
                Algorithm::PageRank => OutputValues::F64(exec.pagerank(
                    params.pagerank_iterations,
                    params.damping_factor,
                    pool,
                    &mut c,
                )),
                Algorithm::Wcc => OutputValues::Id(exec.wcc(&mut c)),
                Algorithm::Cdlp => {
                    OutputValues::Id(exec.cdlp(params.cdlp_iterations, pool, &mut c))
                }
                Algorithm::Lcc => return Err(unsupported(self.name(), algorithm)),
                Algorithm::Sssp => {
                    if !csr.is_weighted() {
                        return Err(graphalytics_core::Error::InvalidParameters(
                            "SSSP requires a weighted graph".into(),
                        ));
                    }
                    let root = graphalytics_core::algorithms::resolve_root(csr, params)?;
                    OutputValues::F64(exec.sssp(root, pool, &mut c))
                }
            })
        });
        ctx.absorb_trace();
        let values = values?;
        let wall_seconds = start.elapsed().as_secs_f64();
        ctx.record_phase("ProcessGraph", wall_seconds);
        Ok(Execution {
            output: AlgorithmOutput::from_dense(algorithm, csr, values),
            counters: c,
            wall_seconds,
        })
    }

    fn estimate(
        &self,
        vertices: u64,
        edges: u64,
        traits_: &graphalytics_core::datasets::GraphTraits,
        directed: bool,
        algorithm: Algorithm,
        params: &AlgorithmParams,
    ) -> WorkCounters {
        let s = crate::estimate::workload_shape(vertices, edges, traits_, directed, algorithm, params);
        let mut c = WorkCounters::new();
        c.supersteps = s.supersteps;
        match algorithm {
            Algorithm::Bfs => {
                // Direction optimization: sparse push phases plus
                // early-exit pull phases examine a small fraction of the
                // arcs (~20% is the classic direction-optimizing figure),
                // but every pulled edge is a pointer-chasing random read.
                c.vertices_processed = 2 * vertices;
                c.edges_scanned = (0.2 * s.arcs).min(2.0 * s.edge_traversals) as u64;
                c.random_accesses = c.edges_scanned;
                // Only the sparse push phases emit messages; their volume
                // is bounded by a couple of frontier sweeps.
                c.messages = (0.2 * s.edge_traversals).min(2.0 * vertices as f64) as u64;
            }
            Algorithm::PageRank => {
                // Pure pull: streaming reads, no message buffers.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
            }
            Algorithm::Cdlp => {
                // Pull mode with multiset counting.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
                c.random_accesses = s.edge_traversals as u64;
            }
            Algorithm::Sssp => {
                // Delta-stepping: buckets bound re-relaxation, so scans
                // stay near one pass over the arcs and only successful
                // relaxations become messages (roughly one per vertex
                // plus a correction tail).
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
                c.messages = (2.0 * vertices as f64).min(s.edge_traversals) as u64;
            }
            _ => {
                // WCC: push relaxations emit one message per scanned
                // edge.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
                c.messages = s.edge_traversals as u64;
            }
        }
        c.message_bytes = 8 * c.messages;
        c
    }
}

/// Direction-optimizing BFS: push while the frontier is sparse, pull
/// (scan undecided vertices' in-edges) once the α/β estimates say the
/// pull scan is cheaper.
///
/// Like [`pushpull_wcc`], dispatches on the tracing state outside the
/// kernel: this is the hottest loop in the suite, and trace hooks in
/// the body cost ~35% even when disabled.
fn direction_optimizing_bfs(
    g: &PushPullGraph,
    root: u32,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<i64> {
    if crate::trace::active() {
        bfs_kernel::<true>(g, root, pool, c)
    } else {
        bfs_kernel::<false>(g, root, pool, c)
    }
}

#[inline(never)]
fn bfs_kernel<const TRACED: bool>(
    g: &PushPullGraph,
    root: u32,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<i64> {
    let csr = g.csr();
    let degrees = g.out_degrees();
    let n = csr.num_vertices();
    let mut depth = vec![i64::MAX; n];
    depth[root as usize] = 0;
    let mut frontier = Frontier::singleton(n, root);
    let mut next = Frontier::new(n);
    let mut frontier_degree = degrees[root as usize] as u64;
    let mut dir = DirectionState::new(g.total_out_degree(), frontier_degree);
    let mut level = 0i64;
    let mut it = TRACED.then(|| IterTimer::new("Iteration", c));
    while !frontier.is_empty() {
        fault::tick(FaultSite::Superstep);
        let active = frontier.len();
        let pulling = dir.choose(frontier_degree, active, n);
        c.supersteps += 1;
        level += 1;
        let mut next_degree = 0u64;
        if !pulling {
            // Push: workers scan contiguous chunks of the frontier and
            // stage undiscovered targets; the merge applies them in chunk
            // order — the discovery order of a sequential sweep, so
            // `next`'s member order is width-invariant. Rounds below the
            // dispatch cutoff apply discoveries directly (same
            // first-encounter order, no staging buffers).
            c.vertices_processed += active as u64;
            if !parallel_worth(frontier.len(), frontier_degree) {
                let mut edges = 0u64;
                for &u in frontier.members() {
                    let out = csr.out_neighbors(u);
                    edges += out.len() as u64;
                    for &v in out {
                        if depth[v as usize] == i64::MAX {
                            depth[v as usize] = level;
                            next.insert(v);
                            next_degree += degrees[v as usize] as u64;
                        }
                    }
                }
                c.edges_scanned += edges;
                c.add_messages(edges, 8);
            } else {
                let members = frontier.members();
                let depth_ref: &[i64] = &depth;
                let chunks = pool.run(members.len(), |_, range| {
                    let mut found = Vec::new();
                    let mut edges = 0u64;
                    for &u in &members[range] {
                        let out = csr.out_neighbors(u);
                        edges += out.len() as u64;
                        for &v in out {
                            if depth_ref[v as usize] == i64::MAX {
                                found.push(v);
                            }
                        }
                    }
                    (found, edges)
                });
                for (found, edges) in chunks {
                    c.edges_scanned += edges;
                    c.add_messages(edges, 8);
                    for v in found {
                        if depth[v as usize] == i64::MAX {
                            depth[v as usize] = level;
                            next.insert(v);
                            next_degree += degrees[v as usize] as u64;
                        }
                    }
                }
            }
        } else {
            // Pull: every undecided vertex reads its in-neighbours until
            // it finds one in the frontier (early exit — the pull win).
            // Workers own contiguous vertex ranges and write only their
            // own depth slots; newly found vertices merge in range order,
            // which is exactly ascending-vertex order. Below the cutoff
            // the same ascending sweep runs directly.
            c.vertices_processed += n as u64;
            if !parallel_worth(n, dir.unexplored + n as u64) {
                let mut edges = 0u64;
                for v in 0..n {
                    if depth[v] != i64::MAX {
                        continue;
                    }
                    for &u in csr.in_neighbors(v as u32) {
                        edges += 1;
                        if frontier.contains(u) {
                            depth[v] = level;
                            next.insert(v as u32);
                            next_degree += degrees[v] as u64;
                            break;
                        }
                    }
                }
                c.edges_scanned += edges;
                c.random_accesses += edges;
            } else {
                let frontier_ref = &frontier;
                let depth_ptr = SharedSlice::new(depth.as_mut_ptr());
                let chunks = pool.run(n, |_, range| {
                    let mut found = Vec::new();
                    let mut edges = 0u64;
                    for v in range {
                        // SAFETY: pool ranges are disjoint; only this
                        // worker touches index v.
                        let dv = unsafe { depth_ptr.at(v) };
                        if *dv != i64::MAX {
                            continue;
                        }
                        for &u in csr.in_neighbors(v as u32) {
                            edges += 1;
                            if frontier_ref.contains(u) {
                                *dv = level;
                                found.push(v as u32);
                                break;
                            }
                        }
                    }
                    (found, edges)
                });
                for (found, edges) in chunks {
                    c.edges_scanned += edges;
                    c.random_accesses += edges;
                    for v in found {
                        next.insert(v);
                        next_degree += degrees[v as usize] as u64;
                    }
                }
            }
        }
        dir.discovered(next_degree);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
        frontier_degree = next_degree;
        if TRACED {
            if let Some(it) = it.as_mut() {
                it.lap(c, |s| {
                    s.with_info("active", active)
                        .with_info("mode", if pulling { "pull" } else { "push" })
                });
            }
        }
    }
    depth
}

/// Pull PageRank (PGX.D's home turf: pure reads, no message buffers),
/// dividing by the uploaded representation's cached out-degrees.
fn pull_pagerank(
    graph: &PushPullGraph,
    iterations: u32,
    damping: f64,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let csr = graph.csr();
    let degrees = graph.out_degrees();
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        fault::tick(FaultSite::Superstep);
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let rank_ref = &rank;
        let dangling: f64 =
            (0..n).filter(|&u| degrees[u] == 0).map(|u| rank_ref[u]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let (next, tallies) = crate::common::map_vertices(pool, n, |v, edges: &mut u64| {
            let inn = csr.in_neighbors(v);
            *edges += inn.len() as u64;
            let mut sum = 0.0f64;
            for &u in inn {
                sum += rank_ref[u as usize] / degrees[u as usize] as f64;
            }
            base + damping * sum
        });
        for edges in tallies {
            c.edges_scanned += edges;
        }
        rank = next;
        it.lap(c, |s| s.with_info("active", n));
    }
    rank
}

/// WCC: push rounds on the shrinking active set, with messages.
///
/// Dispatches on the tracing state *outside* the kernel: the per-edge
/// loop is sensitive enough that merely having the trace hooks in the
/// function body deoptimizes it ~2x even when they never run, so the
/// untraced instantiation must contain no trace code at all.
fn pushpull_wcc(csr: &Csr, c: &mut WorkCounters) -> Vec<VertexId> {
    if crate::trace::active() {
        wcc_kernel::<true>(csr, c)
    } else {
        wcc_kernel::<false>(csr, c)
    }
}

fn wcc_kernel<const TRACED: bool>(csr: &Csr, c: &mut WorkCounters) -> Vec<VertexId> {
    let n = csr.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut active = Frontier::new(n);
    for v in 0..n as u32 {
        active.insert(v);
    }
    let mut next = Frontier::new(n);
    let mut it = TRACED.then(|| IterTimer::new("Iteration", c));
    while !active.is_empty() {
        fault::tick(FaultSite::Superstep);
        c.supersteps += 1;
        c.vertices_processed += active.len() as u64;
        // Accumulate the per-edge tallies in a register and flush once
        // per superstep: three counter read-modify-writes per traversed
        // edge would dominate this loop (every push is exactly one
        // 8-byte message, so one count covers all three counters).
        let mut edges = 0u64;
        for &u in active.members() {
            let lu = label[u as usize];
            let push = |v: u32, label: &mut Vec<u32>, next: &mut Frontier| {
                if lu < label[v as usize] {
                    label[v as usize] = lu;
                    next.insert(v);
                }
            };
            let out = csr.out_neighbors(u);
            edges += out.len() as u64;
            for &v in out {
                push(v, &mut label, &mut next);
            }
            if csr.is_directed() {
                let inn = csr.in_neighbors(u);
                edges += inn.len() as u64;
                for &v in inn {
                    push(v, &mut label, &mut next);
                }
            }
        }
        c.edges_scanned += edges;
        c.add_messages(edges, 8);
        let active_count = active.len();
        std::mem::swap(&mut active, &mut next);
        next.clear();
        if TRACED {
            if let Some(it) = it.as_mut() {
                it.lap(c, |s| s.with_info("active", active_count));
            }
        }
    }
    label.into_iter().map(|l| csr.id_of(l)).collect()
}

/// CDLP: pull mode — each vertex reads neighbour labels directly.
fn pull_cdlp(csr: &Csr, iterations: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<VertexId> {
    type Tally = (u64, std::collections::HashMap<VertexId, u32>);
    let n = csr.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as u32).map(|u| csr.id_of(u)).collect();
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        fault::tick(FaultSite::Superstep);
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let labels_ref = &labels;
        let (next, tallies) = crate::common::map_vertices(pool, n, |v, tally: &mut Tally| {
            let (edges, freq) = tally;
            freq.clear();
            let outn = csr.out_neighbors(v);
            *edges += outn.len() as u64;
            for &u in outn {
                *freq.entry(labels_ref[u as usize]).or_insert(0u32) += 1;
            }
            if csr.is_directed() {
                let inn = csr.in_neighbors(v);
                *edges += inn.len() as u64;
                for &u in inn {
                    *freq.entry(labels_ref[u as usize]).or_insert(0) += 1;
                }
            }
            graphalytics_core::algorithms::cdlp::select_label(freq)
                .unwrap_or(labels_ref[v as usize])
        });
        for (edges, _) in tallies {
            c.edges_scanned += edges;
            c.random_accesses += edges;
        }
        labels = next;
        it.lap(c, |s| s.with_info("active", n));
    }
    labels
}

/// The simple label-correcting SSSP: synchronous push relaxation over
/// the active frontier. The tiny-graph fallback when delta-stepping is
/// not worth its bucket bookkeeping, and the scanned-edge baseline the
/// delta regression test and `repro_bench` compare against. Messages
/// count only *successful* relaxations (12 bytes each: target + f64
/// distance), the same rule as the delta kernel.
pub fn label_correcting_sssp(csr: &Csr, root: u32, c: &mut WorkCounters) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut active = Frontier::singleton(n, root);
    let mut next = Frontier::new(n);
    let mut it = IterTimer::new("Iteration", c);
    while !active.is_empty() {
        fault::tick(FaultSite::Superstep);
        let active_count = active.len();
        c.supersteps += 1;
        c.vertices_processed += active_count as u64;
        let mut edges = 0u64;
        let mut relaxed = 0u64;
        for &u in active.members() {
            let du = dist[u as usize];
            let out = csr.out_neighbors(u);
            let weights = csr.out_weights(u);
            edges += out.len() as u64;
            for (&v, &w) in out.iter().zip(weights) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    relaxed += 1;
                    next.insert(v);
                }
            }
        }
        c.edges_scanned += edges;
        c.add_messages(relaxed, 12);
        std::mem::swap(&mut active, &mut next);
        next.clear();
        it.lap(c, |s| s.with_info("active", active_count));
    }
    dist
}

/// One synchronous relaxation round over `active`, on the light or heavy
/// half of the split: workers scan contiguous chunks and stage improving
/// candidates (read-only against the distance snapshot); the merge
/// applies them in chunk order — the relaxation order of a sequential
/// sweep — counting one 12-byte message per *successful* relaxation.
/// Rounds below the dispatch cutoff run the same two phases on the
/// caller thread through a reused `scratch` buffer (the snapshot
/// semantics must be kept either way: a source's distance is read as it
/// was at round start, so both paths produce the identical candidate
/// stream). Changed vertices are re-bucketed by their new tentative
/// distance — re-entries into the *current* bucket (the common case for
/// light edges) land in `pending` for the next round instead of paying a
/// map lookup.
#[allow(clippy::too_many_arguments)]
fn relax_round<const HEAVY: bool>(
    lh: &LightHeavy,
    active: &[u32],
    work: u64,
    dist: &mut [f64],
    changed: &mut Frontier,
    buckets: &mut BTreeMap<u64, Vec<u32>>,
    bucket: u64,
    pending: &mut Vec<u32>,
    scratch: &mut Vec<(u32, f64)>,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) {
    let delta = lh.delta;
    c.supersteps += 1;
    c.vertices_processed += active.len() as u64;
    let mut relaxed = 0u64;
    if !parallel_worth(active.len(), work) {
        scratch.clear();
        let mut edges = 0u64;
        for &u in active {
            let du = dist[u as usize];
            let (targets, weights) = if HEAVY { lh.heavy(u) } else { lh.light(u) };
            edges += targets.len() as u64;
            for (&v, &w) in targets.iter().zip(weights) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    scratch.push((v, nd));
                }
            }
        }
        c.edges_scanned += edges;
        for &(v, nd) in scratch.iter() {
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                relaxed += 1;
                changed.insert(v);
            }
        }
    } else {
        let dist_ref: &[f64] = dist;
        let chunks = pool.run(active.len(), |_, range| {
            let mut candidates: Vec<(u32, f64)> = Vec::new();
            let mut edges = 0u64;
            for &u in &active[range] {
                let du = dist_ref[u as usize];
                let (targets, weights) = if HEAVY { lh.heavy(u) } else { lh.light(u) };
                edges += targets.len() as u64;
                for (&v, &w) in targets.iter().zip(weights) {
                    let nd = du + w;
                    if nd < dist_ref[v as usize] {
                        candidates.push((v, nd));
                    }
                }
            }
            (candidates, edges)
        });
        for (candidates, edges) in chunks {
            c.edges_scanned += edges;
            for (v, nd) in candidates {
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    relaxed += 1;
                    changed.insert(v);
                }
            }
        }
    }
    c.add_messages(relaxed, 12);
    for &v in changed.members() {
        let b = (dist[v as usize] / delta) as u64;
        // Light relaxations never land below the current bucket
        // (distances of current-bucket sources are ≥ bucket·Δ and
        // weights are positive), and heavy ones always land above it.
        if b == bucket {
            pending.push(v);
        } else {
            buckets.entry(b).or_default().push(v);
        }
    }
    changed.clear();
}

/// Delta-stepping SSSP (Meyer & Sanders) over the cached light/heavy
/// split: vertices are bucketed by `⌊dist/Δ⌋`; each bucket runs light
/// rounds to a local fixpoint, then one heavy pass over everything the
/// bucket settled. Light relaxations within the bucket re-enter it;
/// heavier improvements land in later buckets — so far fewer edges are
/// re-scanned than the label-correcting sweep.
///
/// Output is bitwise identical to [`label_correcting_sssp`]: both
/// compute the unique relaxation fixpoint where every `dist[v]` is a
/// path-ordered f64 sum and no edge can improve it, and the fixpoint
/// does not depend on the relaxation schedule. Settled vertices are
/// final because `⌊a/Δ⌋ > ⌊b/Δ⌋` implies `a > b` and `fl(a+w) ≥ a` for
/// `w > 0` — candidates from later buckets cannot improve them.
fn delta_stepping_sssp(
    csr: &Csr,
    lh: &LightHeavy,
    root: u32,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<f64> {
    if crate::trace::active() {
        delta_sssp_kernel::<true>(csr, lh, root, pool, c)
    } else {
        delta_sssp_kernel::<false>(csr, lh, root, pool, c)
    }
}

#[inline(never)]
fn delta_sssp_kernel<const TRACED: bool>(
    csr: &Csr,
    lh: &LightHeavy,
    root: u32,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let n = csr.num_vertices();
    let delta = lh.delta;
    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    buckets.insert(0, vec![root]);
    // Reused across all rounds (double-buffered-style: clear, not
    // reallocate): the bucket's settled set, the per-round activation
    // dedup, the per-round successful-relaxation set, the current /
    // pending bucket buffers, and the candidate scratch.
    let mut settled = Frontier::new(n);
    let mut seen = Frontier::new(n);
    let mut changed = Frontier::new(n);
    let mut active: Vec<u32> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let mut pending: Vec<u32> = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    let mut it = TRACED.then(|| IterTimer::new("Iteration", c));
    while let Some((&bucket, _)) = buckets.first_key_value() {
        fault::tick(FaultSite::Superstep);
        settled.clear();
        // Light rounds: drain bucket `bucket` to its local fixpoint —
        // first the map's entry, then whatever each round re-enqueued
        // into `pending`. Entries whose distance has since improved into
        // a later bucket (or that already ran this round) are stale and
        // skipped.
        loop {
            current.clear();
            std::mem::swap(&mut current, &mut pending);
            if current.is_empty() {
                match buckets.remove(&bucket) {
                    Some(cur) => current = cur,
                    None => break,
                }
            }
            active.clear();
            let mut light_work = 0u64;
            for &v in &current {
                if (dist[v as usize] / delta) as u64 == bucket && seen.insert(v) {
                    active.push(v);
                    light_work += lh.light_degree(v);
                }
            }
            seen.clear();
            if active.is_empty() {
                continue;
            }
            for &v in &active {
                settled.insert(v);
            }
            let round_active = active.len();
            relax_round::<false>(
                lh,
                &active,
                light_work,
                &mut dist,
                &mut changed,
                &mut buckets,
                bucket,
                &mut pending,
                &mut scratch,
                pool,
                c,
            );
            if TRACED {
                if let Some(it) = it.as_mut() {
                    it.lap(c, |s| {
                        s.with_info("active", round_active)
                            .with_info("mode", "light")
                            .with_info("bucket", bucket)
                    });
                }
            }
        }
        // One heavy pass over everything this bucket settled: heavy
        // edges (w > Δ) cannot re-enter the bucket, so once is enough.
        if !settled.is_empty() {
            let heavy_work: u64 = settled.members().iter().map(|&v| lh.heavy_degree(v)).sum();
            if heavy_work > 0 {
                let round_active = settled.len();
                relax_round::<true>(
                    lh,
                    settled.members(),
                    heavy_work,
                    &mut dist,
                    &mut changed,
                    &mut buckets,
                    bucket,
                    &mut pending,
                    &mut scratch,
                    pool,
                    c,
                );
                if TRACED {
                    if let Some(it) = it.as_mut() {
                        it.lap(c, |s| {
                            s.with_info("active", round_active)
                                .with_info("mode", "heavy")
                                .with_info("bucket", bucket)
                        });
                    }
                }
                // A heavy relaxation mathematically lands above the
                // current bucket, but f64 rounding can floor it back in
                // (fl(du+w) can dip just under (bucket+1)·Δ). The outer
                // loop only consults the map, so spill any such
                // re-entries back — min-bucket selection then resumes
                // the bucket exactly as the map-only variant would.
                for v in pending.drain(..) {
                    buckets.entry((dist[v as usize] / delta) as u64).or_default().push(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::GraphBuilder;

    fn sample(directed: bool) -> Csr {
        let mut b = GraphBuilder::new(directed);
        b.set_weighted(true);
        b.add_vertex_range(6);
        for (s, d, w) in
            [(0, 1, 1.0), (1, 2, 0.5), (0, 2, 3.0), (2, 3, 1.0), (3, 4, 2.0), (1, 4, 9.0)]
        {
            b.add_weighted_edge(s, d, w);
        }
        b.build().unwrap().to_csr()
    }

    /// Number of vertices in [`mid_weighted_csr`]: two out-edges each,
    /// so the 120k arcs clear `DELTA_MIN_ARCS` and the graph takes the
    /// delta-stepping path.
    const MID_N: u64 = 60_000;

    fn mid_weighted_csr() -> Arc<Csr> {
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(MID_N);
        for v in 0..MID_N {
            b.add_weighted_edge(v, (v * 7 + 1) % MID_N, ((v % 13) + 1) as f64);
            b.add_weighted_edge(v, (v * 31 + 5) % MID_N, (((v % 3) + 1) as f64) * 2.5);
        }
        Arc::new(b.build().unwrap().to_csr())
    }

    fn upload(csr: Arc<Csr>, pool: &WorkerPool) -> Box<dyn LoadedGraph> {
        PushPullEngine::new().upload(csr, pool).unwrap()
    }

    #[test]
    fn supported_algorithms_match_reference() {
        for directed in [true, false] {
            let csr = Arc::new(sample(directed));
            let engine = PushPullEngine::new();
            let params = AlgorithmParams::with_source(0);
            let pool = WorkerPool::new(2);
            let loaded = engine.upload(csr.clone(), &pool).unwrap();
            for alg in Algorithm::ALL {
                let mut ctx = RunContext::new(&pool);
                if alg == Algorithm::Lcc {
                    assert!(engine.run(loaded.as_ref(), alg, &params, &mut ctx).is_err());
                    continue;
                }
                let run = engine.run(loaded.as_ref(), alg, &params, &mut ctx).unwrap();
                let expected =
                    graphalytics_core::algorithms::run_reference(&csr, alg, &params).unwrap();
                graphalytics_core::validation::validate(&expected, &run.output)
                    .unwrap()
                    .into_result()
                    .unwrap();
            }
            engine.delete(loaded);
        }
    }

    #[test]
    fn bfs_switches_to_pull_on_dense_frontier() {
        // A star: after one push step the frontier's out-degree sum (99)
        // exceeds m_u/α, so the next level runs in pull mode.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(100);
        for i in 1..100u64 {
            b.add_edge(0, i);
        }
        let pool = WorkerPool::inline();
        let loaded = upload(Arc::new(b.build().unwrap().to_csr()), &pool);
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        let mut c = WorkCounters::new();
        let depths = direction_optimizing_bfs(g, 0, &pool, &mut c);
        assert!(depths.iter().all(|&d| d <= 2));
        // Pull iterations process all vertices; push processes frontier
        // only. The dense level must have been pull.
        assert!(c.vertices_processed > 100);
    }

    #[test]
    fn pull_pagerank_no_messages() {
        let csr = Arc::new(sample(true));
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        let loaded = engine.upload(csr, &pool).unwrap();
        let graph = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        let mut c = WorkCounters::new();
        let _ = pull_pagerank(graph, 5, 0.85, &pool, &mut c);
        assert_eq!(c.messages, 0, "pull mode reads, never sends");
        assert!(c.edges_scanned > 0);
    }

    #[test]
    fn light_heavy_split_partitions_every_edge_at_mean_weight() {
        let csr = mid_weighted_csr();
        let pool = WorkerPool::new(2);
        let loaded = upload(csr.clone(), &pool);
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        assert!(!g.traversal_prepared(), "split is lazy");
        let lh = g.light_heavy(&pool).expect("eligible graph");
        assert!(g.traversal_prepared());
        assert_eq!(lh.num_light() + lh.num_heavy(), csr.num_arcs() as u64);
        let total: f64 =
            (0..MID_N as u32).map(|u| csr.out_weights(u).iter().sum::<f64>()).sum();
        assert_eq!(lh.delta(), total / csr.num_arcs() as f64);
        for u in 0..MID_N as u32 {
            let (_, lw) = lh.light(u);
            assert!(lw.iter().all(|&w| w <= lh.delta()));
            let (_, hw) = lh.heavy(u);
            assert!(hw.iter().all(|&w| w > lh.delta()));
            assert_eq!(
                lh.light_degree(u) + lh.heavy_degree(u),
                csr.out_degree(u) as u64,
                "vertex {u}"
            );
        }
    }

    #[test]
    fn tiny_graphs_skip_the_delta_split() {
        let pool = WorkerPool::inline();
        let loaded = upload(Arc::new(sample(true)), &pool);
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        assert!(g.light_heavy(&pool).is_none(), "below DELTA_MIN_ARCS");
    }

    #[test]
    fn sssp_messages_count_only_successful_relaxations() {
        // 0→1 (w=1), 0→2 (w=5), 1→2 (w=1), 2→1 (w=10). The 2→1 edge is
        // scanned twice and never relaxes: 5 scans, 3 successes.
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(3);
        for (s, d, w) in [(0, 1, 1.0), (0, 2, 5.0), (1, 2, 1.0), (2, 1, 10.0)] {
            b.add_weighted_edge(s, d, w);
        }
        let csr = b.build().unwrap().to_csr();
        let mut c = WorkCounters::new();
        let dist = label_correcting_sssp(&csr, 0, &mut c);
        assert_eq!(dist, vec![0.0, 1.0, 2.0]);
        assert_eq!(c.edges_scanned, 5);
        assert_eq!(c.messages, 3, "only successful relaxations are messages");
        assert_eq!(c.message_bytes, 36);
    }

    #[test]
    fn delta_stepping_matches_label_correcting_bitwise() {
        let csr = mid_weighted_csr();
        let pool = WorkerPool::new(4);
        let loaded = upload(csr.clone(), &pool);
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        let lh = g.light_heavy(&pool).unwrap();
        let mut cd = WorkCounters::new();
        let delta = delta_stepping_sssp(&csr, lh, 0, &pool, &mut cd);
        let mut cb = WorkCounters::new();
        let base = label_correcting_sssp(&csr, 0, &mut cb);
        assert_eq!(delta, base, "same relaxation fixpoint, bitwise");
    }

    /// Cold-run an algorithm on the materialized post-mutation graph —
    /// the correctness anchor for every incremental path.
    fn cold_on_materialized(
        g: &PushPullGraph,
        alg: Algorithm,
        params: &AlgorithmParams,
        pool: &WorkerPool,
    ) -> AlgorithmOutput {
        let guard = g.delta.lock().unwrap();
        let merged = Arc::new(guard.as_ref().unwrap().graph.materialize(pool).unwrap());
        drop(guard);
        let engine = PushPullEngine::new();
        let loaded = engine.upload(merged, pool).unwrap();
        let mut ctx = RunContext::new(pool);
        engine.run(loaded.as_ref(), alg, params, &mut ctx).unwrap().output
    }

    #[test]
    fn mutated_wcc_is_bit_identical_to_cold_recompute() {
        for directed in [true, false] {
            let csr = Arc::new(sample(directed));
            let engine = PushPullEngine::new();
            let pool = WorkerPool::new(2);
            let loaded = engine.upload(csr.clone(), &pool).unwrap();
            let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
            let params = AlgorithmParams::default();

            // Batch 1 (no cached labels yet → full merged compute),
            // splitting 3–4 off and bridging 5 in.
            let mut batch = graphalytics_core::MutationBatch::new();
            batch.delete(2, 3).insert(4, 5);
            let mut ctx = RunContext::new(&pool);
            let m = engine.apply_mutations(loaded.as_ref(), &batch, &mut ctx).unwrap();
            assert_eq!((m.inserted, m.deleted), (1, 1));
            assert!(ctx.phases().iter().any(|p| p.name == "Mutate"), "Mutate phase recorded");
            let mut ctx = RunContext::new(&pool);
            let warm = engine.run(loaded.as_ref(), Algorithm::Wcc, &params, &mut ctx).unwrap();
            let cold = cold_on_materialized(g, Algorithm::Wcc, &params, &pool);
            assert_eq!(warm.output.values, cold.values, "directed={directed} batch 1");

            // Batch 2 exercises the incremental maintenance proper
            // (cached labels now exist): another split + a merge.
            let mut batch = graphalytics_core::MutationBatch::new();
            batch.delete(0, 1).insert(3, 5);
            engine
                .apply_mutations(loaded.as_ref(), &batch, &mut RunContext::new(&pool))
                .unwrap();
            let mut ctx = RunContext::new(&pool);
            let warm = engine.run(loaded.as_ref(), Algorithm::Wcc, &params, &mut ctx).unwrap();
            let cold = cold_on_materialized(g, Algorithm::Wcc, &params, &pool);
            assert_eq!(warm.output.values, cold.values, "directed={directed} batch 2");
            engine.delete(loaded);
        }
    }

    #[test]
    fn mutated_pagerank_matches_cold_recompute_within_epsilon() {
        let csr = Arc::new(sample(false));
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        let loaded = engine.upload(csr, &pool).unwrap();
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        // 120 iterations: converged for n=6, so the warm path engages
        // on the second run.
        let params = AlgorithmParams { pagerank_iterations: 120, ..AlgorithmParams::default() };

        let mut batch = graphalytics_core::MutationBatch::new();
        batch.insert(0, 4).delete(2, 3);
        engine.apply_mutations(loaded.as_ref(), &batch, &mut RunContext::new(&pool)).unwrap();
        // First post-mutation run: cold replay over the merged view —
        // bit-identical to the materialized cold run.
        let mut ctx = RunContext::new(&pool);
        let first = engine.run(loaded.as_ref(), Algorithm::PageRank, &params, &mut ctx).unwrap();
        let cold = cold_on_materialized(g, Algorithm::PageRank, &params, &pool);
        assert_eq!(first.output.values, cold.values, "full replay is bitwise");

        // Second mutation: the cached ranks warm-start the solve, which
        // must stay within the validator's epsilon of a cold run.
        let mut batch = graphalytics_core::MutationBatch::new();
        batch.insert(1, 5).insert(3, 5);
        engine.apply_mutations(loaded.as_ref(), &batch, &mut RunContext::new(&pool)).unwrap();
        let mut ctx = RunContext::new(&pool);
        let warm = engine.run(loaded.as_ref(), Algorithm::PageRank, &params, &mut ctx).unwrap();
        let cold = cold_on_materialized(g, Algorithm::PageRank, &params, &pool);
        assert!(
            warm.counters.supersteps < 120,
            "warm start converges early, took {} supersteps",
            warm.counters.supersteps
        );
        graphalytics_core::validation::validate(&cold, &warm.output)
            .unwrap()
            .into_result()
            .unwrap();
        engine.delete(loaded);
    }

    #[test]
    fn mutated_snapshot_serves_traversals_and_is_cached() {
        let csr = Arc::new(sample(true));
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        let loaded = engine.upload(csr, &pool).unwrap();
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        let params = AlgorithmParams::with_source(0);

        let mut batch = graphalytics_core::MutationBatch::new();
        batch.insert_weighted(4, 5, 1.5).delete(0, 2);
        engine.apply_mutations(loaded.as_ref(), &batch, &mut RunContext::new(&pool)).unwrap();

        let mut ctx = RunContext::new(&pool);
        let bfs = engine.run(loaded.as_ref(), Algorithm::Bfs, &params, &mut ctx).unwrap();
        assert!(
            ctx.phases().iter().any(|p| p.name == "Materialize"),
            "first non-incremental run builds the snapshot"
        );
        let cold = cold_on_materialized(g, Algorithm::Bfs, &params, &pool);
        assert_eq!(bfs.output.values, cold.values);

        // The snapshot is cached within the mutation epoch.
        let mut ctx = RunContext::new(&pool);
        let sssp = engine.run(loaded.as_ref(), Algorithm::Sssp, &params, &mut ctx).unwrap();
        assert!(
            ctx.phases().iter().all(|p| p.name != "Materialize"),
            "second run reuses the snapshot"
        );
        let cold = cold_on_materialized(g, Algorithm::Sssp, &params, &pool);
        assert_eq!(sssp.output.values, cold.values);
        engine.delete(loaded);
    }

    #[test]
    fn mutation_rejections_and_defaults() {
        let csr = Arc::new(sample(false));
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        assert!(engine.supports_mutation());

        // Undeclared endpoints reject before anything applies.
        let loaded = engine.upload(csr.clone(), &pool).unwrap();
        let mut bad = graphalytics_core::MutationBatch::new();
        bad.insert(0, 999);
        let err = engine
            .apply_mutations(loaded.as_ref(), &bad, &mut RunContext::new(&pool))
            .unwrap_err();
        assert!(err.to_string().contains("undeclared vertex"), "{err}");
        let g = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        assert!(!g.has_mutations() || g.delta_metrics().0 == 0, "rejected batch left no log");

        // Sharded uploads refuse mutations.
        let plan = ShardPlan::new(2);
        let sharded = engine.upload_sharded(csr, &plan, &pool).unwrap();
        let mut ok = graphalytics_core::MutationBatch::new();
        ok.insert(0, 3);
        let err = engine
            .apply_mutations(sharded.as_ref(), &ok, &mut RunContext::new(&pool))
            .unwrap_err();
        assert!(err.to_string().contains("sharded"), "{err}");

        // Engines without a delta path keep the trait default.
        let gas = crate::gas::GasEngine::new();
        assert!(!gas.supports_mutation());
        let gas_loaded = gas.upload(Arc::new(sample(false)), &pool).unwrap();
        let err = gas
            .apply_mutations(gas_loaded.as_ref(), &ok, &mut RunContext::new(&pool))
            .unwrap_err();
        assert!(err.to_string().contains("no mutation path"), "{err}");
    }
}
