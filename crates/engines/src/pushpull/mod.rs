//! The push–pull engine (PGX.D-like).
//!
//! "PGX.D enables vertices to *pull* (read) data from neighbors, as
//! opposed to conventional graph analysis systems which only allow
//! vertices to *push* (write) data" (Section 3.1). The engine implements
//! the hybrid: every iteration chooses **push** (scatter from the active
//! frontier, producing messages) or **pull** (scan the in-edges of
//! undecided vertices, no messages) based on frontier density — the
//! generalization of direction-optimizing BFS.
//!
//! Profile-wise this engine mirrors PGX.D: near-linear thread scaling
//! (cooperative context switching ⇒ tiny serial fraction), a compact wire
//! format on InfiniBand, but a large memory footprint ("optimized for
//! machines with large amounts of cores and memory", Section 4.6) and —
//! like the real system — **no LCC implementation** (Figure 6 marks it
//! `NA`).

mod sharded;

use std::sync::Arc;
use std::time::Instant;

use graphalytics_core::error::Result;
use graphalytics_core::output::{AlgorithmOutput, OutputValues};
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::{Algorithm, Csr, VertexId};

use graphalytics_cluster::WorkCounters;

use crate::common::frontier::Frontier;
use crate::common::pool::WorkerPool;
use crate::platform::{unsupported, Execution, LoadedGraph, Platform, RunContext};
use crate::profile::PerfProfile;
use crate::sharded::ShardPlan;
use crate::trace::IterTimer;

pub use sharded::PushPullShardedGraph;

/// Frontier density above which iterations switch from push to pull.
pub const PULL_THRESHOLD: f64 = 0.05;

/// The uploaded representation: PGX.D's dual-direction adjacency. The
/// upload phase pins both CSR directions (push walks out-edges, pull
/// walks in-edges — the engine needs both resident, which is part of
/// PGX.D's large-memory profile) and caches the out-degree table that
/// pull iterations divide by on every traversed in-edge.
pub struct PushPullGraph {
    csr: Arc<Csr>,
    /// Cached out-degrees for the pull direction.
    out_degrees: Box<[u32]>,
}

impl PushPullGraph {
    /// The full cached degree vector.
    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
}

impl LoadedGraph for PushPullGraph {
    fn csr(&self) -> &Csr {
        &self.csr
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn resident_bytes(&self) -> u64 {
        self.csr.resident_bytes() + 4 * self.out_degrees.len() as u64
    }
}

/// Which representation a run dispatches to: the monolithic
/// dual-direction CSR on the shared pool, or the shard set with its
/// per-shard pools and queues. Both produce bit-identical output for
/// every supported algorithm.
enum Exec<'a> {
    Single(&'a PushPullGraph),
    Sharded(&'a PushPullShardedGraph),
}

impl<'a> Exec<'a> {
    fn csr(&self) -> &'a Csr {
        match self {
            Exec::Single(g) => g.csr(),
            Exec::Sharded(g) => g.set().csr(),
        }
    }

    fn bfs(&self, root: u32, c: &mut WorkCounters) -> Vec<i64> {
        match self {
            Exec::Single(g) => direction_optimizing_bfs(g.csr(), root, c),
            Exec::Sharded(g) => sharded::sharded_bfs(g, root, c),
        }
    }

    fn pagerank(
        &self,
        iterations: u32,
        damping: f64,
        pool: &WorkerPool,
        c: &mut WorkCounters,
    ) -> Vec<f64> {
        match self {
            Exec::Single(g) => pull_pagerank(g, iterations, damping, pool, c),
            Exec::Sharded(g) => sharded::sharded_pagerank(g, iterations, damping, c),
        }
    }

    fn wcc(&self, c: &mut WorkCounters) -> Vec<VertexId> {
        match self {
            Exec::Single(g) => pushpull_wcc(g.csr(), c),
            Exec::Sharded(g) => sharded::sharded_wcc(g, c),
        }
    }

    fn cdlp(&self, iterations: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<VertexId> {
        match self {
            Exec::Single(g) => pull_cdlp(g.csr(), iterations, pool, c),
            Exec::Sharded(g) => sharded::sharded_cdlp(g, iterations, c),
        }
    }

    fn sssp(&self, root: u32, c: &mut WorkCounters) -> Vec<f64> {
        match self {
            Exec::Single(g) => push_sssp(g.csr(), root, c),
            Exec::Sharded(g) => sharded::sharded_sssp(g, root, c),
        }
    }
}

/// The PGX.D-like platform.
pub struct PushPullEngine {
    profile: PerfProfile,
}

impl PushPullEngine {
    pub fn new() -> Self {
        PushPullEngine { profile: PerfProfile::pushpull() }
    }
}

impl Default for PushPullEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform for PushPullEngine {
    fn name(&self) -> &'static str {
        "pushpull"
    }

    fn profile(&self) -> &PerfProfile {
        &self.profile
    }

    fn supports(&self, algorithm: Algorithm) -> bool {
        algorithm != Algorithm::Lcc
    }

    fn upload(&self, csr: Arc<Csr>, pool: &WorkerPool) -> Result<Box<dyn LoadedGraph>> {
        let n = csr.num_vertices();
        let csr_ref = &csr;
        let degrees: Vec<u32> = pool
            .run(n, |_, range| {
                range.map(|u| csr_ref.out_degree(u as u32) as u32).collect::<Vec<u32>>()
            })
            .into_iter()
            .flatten()
            .collect();
        Ok(Box::new(PushPullGraph { csr, out_degrees: degrees.into() }))
    }

    fn supports_sharded(&self) -> bool {
        true
    }

    fn upload_sharded(
        &self,
        csr: Arc<Csr>,
        plan: &ShardPlan,
        pool: &WorkerPool,
    ) -> Result<Box<dyn LoadedGraph>> {
        if plan.shards <= 1 {
            return self.upload(csr, pool);
        }
        let set = crate::sharded::ShardSet::build(csr, plan, pool)?;
        Ok(Box::new(PushPullShardedGraph::new(set)))
    }

    fn run(
        &self,
        graph: &dyn LoadedGraph,
        algorithm: Algorithm,
        params: &AlgorithmParams,
        ctx: &mut RunContext<'_>,
    ) -> Result<Execution> {
        let exec = if let Some(g) = graph.as_any().downcast_ref::<PushPullGraph>() {
            Exec::Single(g)
        } else if let Some(g) = graph.as_any().downcast_ref::<PushPullShardedGraph>() {
            Exec::Sharded(g)
        } else {
            return Err(graphalytics_core::Error::InvalidParameters(format!(
                "graph was not uploaded through platform {}",
                self.name()
            )));
        };
        let csr = exec.csr();
        let pool = ctx.pool;
        let start = Instant::now();
        let mut c = WorkCounters::new();
        ctx.begin_trace();
        let values = (|| -> Result<OutputValues> {
            Ok(match algorithm {
                Algorithm::Bfs => {
                    let root = graphalytics_core::algorithms::resolve_root(csr, params)?;
                    OutputValues::I64(exec.bfs(root, &mut c))
                }
                Algorithm::PageRank => OutputValues::F64(exec.pagerank(
                    params.pagerank_iterations,
                    params.damping_factor,
                    pool,
                    &mut c,
                )),
                Algorithm::Wcc => OutputValues::Id(exec.wcc(&mut c)),
                Algorithm::Cdlp => {
                    OutputValues::Id(exec.cdlp(params.cdlp_iterations, pool, &mut c))
                }
                Algorithm::Lcc => return Err(unsupported(self.name(), algorithm)),
                Algorithm::Sssp => {
                    if !csr.is_weighted() {
                        return Err(graphalytics_core::Error::InvalidParameters(
                            "SSSP requires a weighted graph".into(),
                        ));
                    }
                    let root = graphalytics_core::algorithms::resolve_root(csr, params)?;
                    OutputValues::F64(exec.sssp(root, &mut c))
                }
            })
        })();
        ctx.absorb_trace();
        let values = values?;
        let wall_seconds = start.elapsed().as_secs_f64();
        ctx.record_phase("ProcessGraph", wall_seconds);
        Ok(Execution {
            output: AlgorithmOutput::from_dense(algorithm, csr, values),
            counters: c,
            wall_seconds,
        })
    }

    fn estimate(
        &self,
        vertices: u64,
        edges: u64,
        traits_: &graphalytics_core::datasets::GraphTraits,
        directed: bool,
        algorithm: Algorithm,
        params: &AlgorithmParams,
    ) -> WorkCounters {
        let s = crate::estimate::workload_shape(vertices, edges, traits_, directed, algorithm, params);
        let mut c = WorkCounters::new();
        c.supersteps = s.supersteps;
        match algorithm {
            Algorithm::Bfs => {
                // Direction optimization: sparse push phases plus
                // early-exit pull phases examine a small fraction of the
                // arcs (~20% is the classic direction-optimizing figure),
                // but every pulled edge is a pointer-chasing random read.
                c.vertices_processed = 2 * vertices;
                c.edges_scanned = (0.2 * s.arcs).min(2.0 * s.edge_traversals) as u64;
                c.random_accesses = c.edges_scanned;
                // Only the sparse push phases emit messages; their volume
                // is bounded by a couple of frontier sweeps.
                c.messages = (0.2 * s.edge_traversals).min(2.0 * vertices as f64) as u64;
            }
            Algorithm::PageRank => {
                // Pure pull: streaming reads, no message buffers.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
            }
            Algorithm::Cdlp => {
                // Pull mode with multiset counting.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
                c.random_accesses = s.edge_traversals as u64;
            }
            _ => {
                // WCC/SSSP: push relaxations emit one message per scanned
                // edge.
                c.vertices_processed = s.active_vertex_rounds as u64 + vertices;
                c.edges_scanned = s.edge_traversals as u64;
                c.messages = s.edge_traversals as u64;
            }
        }
        c.message_bytes = 8 * c.messages;
        c
    }
}

/// Direction-optimizing BFS: push while the frontier is sparse, pull
/// (scan undecided vertices' in-edges) once it is dense.
///
/// Like [`pushpull_wcc`], dispatches on the tracing state outside the
/// kernel: this is the hottest loop in the suite, and trace hooks in
/// the body cost ~35% even when disabled.
fn direction_optimizing_bfs(csr: &Csr, root: u32, c: &mut WorkCounters) -> Vec<i64> {
    if crate::trace::active() {
        bfs_kernel::<true>(csr, root, c)
    } else {
        bfs_kernel::<false>(csr, root, c)
    }
}

#[inline(never)]
fn bfs_kernel<const TRACED: bool>(csr: &Csr, root: u32, c: &mut WorkCounters) -> Vec<i64> {
    let n = csr.num_vertices();
    let mut depth = vec![i64::MAX; n];
    depth[root as usize] = 0;
    let mut frontier = Frontier::singleton(n, root);
    let mut level = 0i64;
    let mut it = TRACED.then(|| IterTimer::new("Iteration", c));
    while !frontier.is_empty() {
        let active = frontier.len();
        let pulled = frontier.density() >= PULL_THRESHOLD;
        c.supersteps += 1;
        level += 1;
        let mut next = Frontier::new(n);
        if frontier.density() < PULL_THRESHOLD {
            // Push: scatter from active vertices (messages).
            c.vertices_processed += frontier.len() as u64;
            for &u in frontier.members() {
                let out = csr.out_neighbors(u);
                c.edges_scanned += out.len() as u64;
                c.add_messages(out.len() as u64, 8);
                for &v in out {
                    if depth[v as usize] == i64::MAX {
                        depth[v as usize] = level;
                        next.insert(v);
                    }
                }
            }
        } else {
            // Pull: every undecided vertex reads its in-neighbours until
            // it finds one in the frontier (early exit — the pull win).
            c.vertices_processed += n as u64;
            for v in 0..n as u32 {
                if depth[v as usize] != i64::MAX {
                    continue;
                }
                for &u in csr.in_neighbors(v) {
                    c.edges_scanned += 1;
                    c.random_accesses += 1;
                    if frontier.contains(u) {
                        depth[v as usize] = level;
                        next.insert(v);
                        break;
                    }
                }
            }
        }
        frontier = next;
        if TRACED {
            if let Some(it) = it.as_mut() {
                it.lap(c, |s| {
                    s.with_info("active", active)
                        .with_info("mode", if pulled { "pull" } else { "push" })
                });
            }
        }
    }
    depth
}

/// Pull PageRank (PGX.D's home turf: pure reads, no message buffers),
/// dividing by the uploaded representation's cached out-degrees.
fn pull_pagerank(
    graph: &PushPullGraph,
    iterations: u32,
    damping: f64,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let csr = graph.csr();
    let degrees = graph.out_degrees();
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let rank_ref = &rank;
        let dangling: f64 =
            (0..n).filter(|&u| degrees[u] == 0).map(|u| rank_ref[u]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let (next, tallies) = crate::common::map_vertices(pool, n, |v, edges: &mut u64| {
            let inn = csr.in_neighbors(v);
            *edges += inn.len() as u64;
            let mut sum = 0.0f64;
            for &u in inn {
                sum += rank_ref[u as usize] / degrees[u as usize] as f64;
            }
            base + damping * sum
        });
        for edges in tallies {
            c.edges_scanned += edges;
        }
        rank = next;
        it.lap(c, |s| s.with_info("active", n));
    }
    rank
}

/// WCC: push rounds on the shrinking active set, with messages.
///
/// Dispatches on the tracing state *outside* the kernel: the per-edge
/// loop is sensitive enough that merely having the trace hooks in the
/// function body deoptimizes it ~2x even when they never run, so the
/// untraced instantiation must contain no trace code at all.
fn pushpull_wcc(csr: &Csr, c: &mut WorkCounters) -> Vec<VertexId> {
    if crate::trace::active() {
        wcc_kernel::<true>(csr, c)
    } else {
        wcc_kernel::<false>(csr, c)
    }
}

fn wcc_kernel<const TRACED: bool>(csr: &Csr, c: &mut WorkCounters) -> Vec<VertexId> {
    let n = csr.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut active = Frontier::new(n);
    for v in 0..n as u32 {
        active.insert(v);
    }
    let mut it = TRACED.then(|| IterTimer::new("Iteration", c));
    while !active.is_empty() {
        c.supersteps += 1;
        c.vertices_processed += active.len() as u64;
        let mut next = Frontier::new(n);
        // Accumulate the per-edge tallies in a register and flush once
        // per superstep: three counter read-modify-writes per traversed
        // edge would dominate this loop (every push is exactly one
        // 8-byte message, so one count covers all three counters).
        let mut edges = 0u64;
        for &u in active.members() {
            let lu = label[u as usize];
            let push = |v: u32, label: &mut Vec<u32>, next: &mut Frontier| {
                if lu < label[v as usize] {
                    label[v as usize] = lu;
                    next.insert(v);
                }
            };
            let out = csr.out_neighbors(u);
            edges += out.len() as u64;
            for &v in out {
                push(v, &mut label, &mut next);
            }
            if csr.is_directed() {
                let inn = csr.in_neighbors(u);
                edges += inn.len() as u64;
                for &v in inn {
                    push(v, &mut label, &mut next);
                }
            }
        }
        c.edges_scanned += edges;
        c.add_messages(edges, 8);
        let active_count = active.len();
        active = next;
        if TRACED {
            if let Some(it) = it.as_mut() {
                it.lap(c, |s| s.with_info("active", active_count));
            }
        }
    }
    label.into_iter().map(|l| csr.id_of(l)).collect()
}

/// CDLP: pull mode — each vertex reads neighbour labels directly.
fn pull_cdlp(csr: &Csr, iterations: u32, pool: &WorkerPool, c: &mut WorkCounters) -> Vec<VertexId> {
    type Tally = (u64, std::collections::HashMap<VertexId, u32>);
    let n = csr.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as u32).map(|u| csr.id_of(u)).collect();
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let labels_ref = &labels;
        let (next, tallies) = crate::common::map_vertices(pool, n, |v, tally: &mut Tally| {
            let (edges, freq) = tally;
            freq.clear();
            let outn = csr.out_neighbors(v);
            *edges += outn.len() as u64;
            for &u in outn {
                *freq.entry(labels_ref[u as usize]).or_insert(0u32) += 1;
            }
            if csr.is_directed() {
                let inn = csr.in_neighbors(v);
                *edges += inn.len() as u64;
                for &u in inn {
                    *freq.entry(labels_ref[u as usize]).or_insert(0) += 1;
                }
            }
            graphalytics_core::algorithms::cdlp::select_label(freq)
                .unwrap_or(labels_ref[v as usize])
        });
        for (edges, _) in tallies {
            c.edges_scanned += edges;
            c.random_accesses += edges;
        }
        labels = next;
        it.lap(c, |s| s.with_info("active", n));
    }
    labels
}

/// SSSP: push-based relaxation over the active set.
fn push_sssp(csr: &Csr, root: u32, c: &mut WorkCounters) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut active = Frontier::singleton(n, root);
    let mut it = IterTimer::new("Iteration", c);
    while !active.is_empty() {
        let active_count = active.len();
        c.supersteps += 1;
        c.vertices_processed += active.len() as u64;
        let mut next = Frontier::new(n);
        for &u in active.members() {
            let du = dist[u as usize];
            let out = csr.out_neighbors(u);
            let weights = csr.out_weights(u);
            c.edges_scanned += out.len() as u64;
            c.add_messages(out.len() as u64, 12);
            for (&v, &w) in out.iter().zip(weights) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    next.insert(v);
                }
            }
        }
        active = next;
        it.lap(c, |s| s.with_info("active", active_count));
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::GraphBuilder;

    fn sample(directed: bool) -> Csr {
        let mut b = GraphBuilder::new(directed);
        b.set_weighted(true);
        b.add_vertex_range(6);
        for (s, d, w) in
            [(0, 1, 1.0), (1, 2, 0.5), (0, 2, 3.0), (2, 3, 1.0), (3, 4, 2.0), (1, 4, 9.0)]
        {
            b.add_weighted_edge(s, d, w);
        }
        b.build().unwrap().to_csr()
    }

    #[test]
    fn supported_algorithms_match_reference() {
        for directed in [true, false] {
            let csr = Arc::new(sample(directed));
            let engine = PushPullEngine::new();
            let params = AlgorithmParams::with_source(0);
            let pool = WorkerPool::new(2);
            let loaded = engine.upload(csr.clone(), &pool).unwrap();
            for alg in Algorithm::ALL {
                let mut ctx = RunContext::new(&pool);
                if alg == Algorithm::Lcc {
                    assert!(engine.run(loaded.as_ref(), alg, &params, &mut ctx).is_err());
                    continue;
                }
                let run = engine.run(loaded.as_ref(), alg, &params, &mut ctx).unwrap();
                let expected =
                    graphalytics_core::algorithms::run_reference(&csr, alg, &params).unwrap();
                graphalytics_core::validation::validate(&expected, &run.output)
                    .unwrap()
                    .into_result()
                    .unwrap();
            }
            engine.delete(loaded);
        }
    }

    #[test]
    fn bfs_switches_to_pull_on_dense_frontier() {
        // A star: after one push step the frontier is the whole graph.
        let mut b = GraphBuilder::new(false);
        b.add_vertex_range(100);
        for i in 1..100u64 {
            b.add_edge(0, i);
        }
        let csr = b.build().unwrap().to_csr();
        let mut c = WorkCounters::new();
        let depths = direction_optimizing_bfs(&csr, 0, &mut c);
        assert!(depths.iter().all(|&d| d <= 2));
        // Pull iterations process all vertices; push processes frontier
        // only. The second level must have been pull (density 0.99).
        assert!(c.vertices_processed > 100);
    }

    #[test]
    fn pull_pagerank_no_messages() {
        let csr = Arc::new(sample(true));
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        let loaded = engine.upload(csr, &pool).unwrap();
        let graph = loaded.as_any().downcast_ref::<PushPullGraph>().unwrap();
        let mut c = WorkCounters::new();
        let _ = pull_pagerank(graph, 5, 0.85, &pool, &mut c);
        assert_eq!(c.messages, 0, "pull mode reads, never sends");
        assert!(c.edges_scanned > 0);
    }
}
