//! Streaming mutation support for the push–pull engine: the engine-side
//! half of `graphalytics_core::graph::delta`.
//!
//! An uploaded [`PushPullGraph`] can take [`MutationBatch`]es in place
//! (the `Mutate` lifecycle phase). The first batch attaches a
//! [`DeltaState`]: the core [`MutableGraph`] delta log plus cached
//! per-vertex algorithm state that is *maintained incrementally* instead
//! of recomputed:
//!
//! * **WCC** — labels are the minimum dense index of each component, the
//!   exact fixpoint `wcc_kernel` computes. Insertions merge components
//!   by min-label union-find; deletions run a bounded connectivity probe
//!   between the endpoints and recompute only the affected components
//!   (on the post-deletion adjacency, *before* the batch's insertions
//!   apply, so old components are still closed under the probe). Served
//!   labels are bit-identical to a cold run on the materialized graph.
//! * **PageRank** — the last converged rank vector seeds a warm
//!   restart: the exact pull update iterates from the cached ranks and
//!   stops once the contraction bound puts the iterate within a small
//!   fraction of the validator's tolerance of the fixpoint. The warm
//!   path only engages when the requested iteration count is itself
//!   large enough to be converged (otherwise a cold run is *not* near
//!   the fixpoint and "converged" would be the wrong answer) — below
//!   that threshold the engine replays the full pull schedule over the
//!   merged view, bit-identical to a cold run.
//!
//! Algorithms without incremental maintenance (BFS, SSSP, CDLP) run on a
//! lazily materialized snapshot of the merged view, built once per
//! mutation epoch and recorded as a `Materialize` phase.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use graphalytics_core::fault::{self, FaultSite};
use graphalytics_core::output::{AlgorithmOutput, OutputValues};
use graphalytics_core::params::AlgorithmParams;
use graphalytics_core::pool::WorkerPool;
use graphalytics_core::validation::DEFAULT_EPSILON;
use graphalytics_core::{Algorithm, Error, MutableGraph, MutationBatch, Result, VertexId};

use graphalytics_cluster::WorkCounters;

use crate::platform::{Execution, Mutation, RunContext};

use super::PushPullGraph;

/// Edge-scan budget of the per-deletion connectivity probe. A probe that
/// exhausts the budget is treated as "possibly disconnected" and the
/// component is recomputed — correct either way, the cap only bounds the
/// probe's work on huge components.
const RECONNECT_EDGE_CAP: u64 = 4096;

/// Per-graph mutation state attached to an uploaded [`PushPullGraph`]
/// by its first batch.
pub(super) struct DeltaState {
    /// The delta log over the resident base CSR (auto-compaction is
    /// driven here, under the engine's `Mutate` phase clock).
    pub(super) graph: MutableGraph,
    /// Cached WCC labels (min dense index per component), current with
    /// respect to `graph`; `None` until the first post-mutation WCC run.
    wcc: Option<Vec<u32>>,
    /// Cached PageRank fixpoint approximation from the last run.
    pr: Option<PrCache>,
    /// Materialized merged view for non-incremental algorithms;
    /// invalidated by every batch.
    snapshot: Option<Arc<PushPullGraph>>,
}

struct PrCache {
    ranks: Vec<f64>,
    iterations: u32,
    damping: f64,
}

/// The engine-side mutation slot: `None` until the first batch.
pub(super) type DeltaSlot = Mutex<Option<DeltaState>>;

pub(super) fn empty_slot() -> DeltaSlot {
    Mutex::new(None)
}

impl PushPullGraph {
    /// Whether this uploaded graph has taken mutations (and therefore
    /// runs must route through the delta view).
    pub fn has_mutations(&self) -> bool {
        self.delta.lock().unwrap().is_some()
    }

    /// Outstanding delta-log arcs, fill ratio, and compaction count —
    /// the counters `GET /metrics` surfaces. Zeroes when unmutated.
    pub fn delta_metrics(&self) -> (u64, f64, u64) {
        match self.delta.lock().unwrap().as_ref() {
            Some(state) => {
                let s = state.graph.stats();
                (state.graph.delta_arcs(), state.graph.fill_ratio(), s.compactions)
            }
            None => (0, 0.0, 0),
        }
    }

    /// The materialized merged view for algorithms without incremental
    /// maintenance. Returns the cached snapshot, or builds one and
    /// reports its build time (the caller records it as `Materialize`).
    pub(super) fn mutated_snapshot(
        &self,
        pool: &WorkerPool,
    ) -> Result<(Arc<PushPullGraph>, Option<f64>)> {
        let mut guard = self.delta.lock().unwrap();
        let state = guard.as_mut().expect("snapshot only requested for mutated graphs");
        if let Some(snap) = &state.snapshot {
            return Ok((snap.clone(), None));
        }
        let start = Instant::now();
        let csr = Arc::new(state.graph.materialize(pool)?);
        let snap = Arc::new(super::build_graph(csr, pool));
        state.snapshot = Some(snap.clone());
        Ok((snap, Some(start.elapsed().as_secs_f64())))
    }
}

/// Applies `batch` to an uploaded push–pull graph: validate
/// (all-or-nothing), apply deletions, maintain cached WCC labels,
/// apply insertions, merge components, auto-compact past the fill
/// ratio. Records the whole apply as a measured `Mutate` phase.
pub(super) fn apply(
    g: &PushPullGraph,
    batch: &MutationBatch,
    ctx: &mut RunContext<'_>,
) -> Result<Mutation> {
    // Before any state change: an aborted apply must leave the delta log
    // exactly as it was.
    fault::checkpoint(FaultSite::Mutate)?;
    ctx.check_cancelled()?;
    let pool = ctx.pool;
    let start = Instant::now();
    let mut guard = g.delta.lock().unwrap();
    let state = guard.get_or_insert_with(|| DeltaState {
        graph: MutableGraph::new(g.csr.clone()),
        wcc: None,
        pr: None,
        snapshot: None,
    });
    state.graph.validate_batch(batch)?;

    // Dense endpoint pairs of deletions that name a live edge — the
    // only ones whose removal can split a component.
    let base = state.graph.base().clone();
    let live_deletions: Vec<(u32, u32)> = batch
        .deletions
        .iter()
        .filter_map(|&(a, b)| {
            let u = base.index_of(a)?;
            let v = base.index_of(b)?;
            state.graph.has_out_edge(u, v).then_some((u, v))
        })
        .collect();

    let deleted = state.graph.apply_deletions(&batch.deletions);
    if state.wcc.is_some() && deleted > 0 {
        let DeltaState { graph, wcc, .. } = state;
        maintain_wcc_deletions(graph, wcc.as_mut().unwrap(), &live_deletions);
    }
    let (inserted, updated) = state.graph.apply_insertions(&batch.insertions);
    if state.wcc.is_some() && inserted > 0 {
        let DeltaState { graph, wcc, .. } = state;
        maintain_wcc_insertions(graph, wcc.as_mut().unwrap(), &batch.insertions);
    }
    state.graph.note_batch_applied();
    state.snapshot = None;

    let mut compacted = false;
    if state.graph.needs_compaction() {
        state.graph.compact(pool)?;
        compacted = true;
    }
    let delta_arcs = state.graph.delta_arcs();
    let fill_ratio = state.graph.fill_ratio();
    drop(guard);
    let wall_seconds = start.elapsed().as_secs_f64();
    ctx.record_phase("Mutate", wall_seconds);
    Ok(Mutation { inserted, deleted, updated, compacted, delta_arcs, fill_ratio, wall_seconds })
}

/// WCC and PageRank on a mutated graph: serve/maintain the incremental
/// state instead of dispatching a cold kernel. Callers guarantee
/// `g.has_mutations()` and `algorithm ∈ {Wcc, PageRank}`.
pub(super) fn run_incremental(
    g: &PushPullGraph,
    algorithm: Algorithm,
    params: &AlgorithmParams,
    ctx: &mut RunContext<'_>,
) -> Result<Execution> {
    let pool = ctx.pool;
    let mut guard = g.delta.lock().unwrap();
    let state = guard.as_mut().expect("incremental run requires mutation state");
    let start = Instant::now();
    let mut c = WorkCounters::new();
    ctx.check_cancelled()?;
    ctx.begin_trace();
    let values = fault::catch_abort(|| -> Result<OutputValues> {
        Ok(match algorithm {
            Algorithm::Wcc => {
                let DeltaState { graph, wcc, .. } = state;
                if wcc.is_none() {
                    *wcc = Some(full_wcc(graph, &mut c));
                }
                let labels = wcc.as_ref().unwrap();
                c.supersteps += 1;
                c.vertices_processed += labels.len() as u64;
                let out: Vec<VertexId> =
                    labels.iter().map(|&l| graph.base().id_of(l)).collect();
                OutputValues::Id(out)
            }
            Algorithm::PageRank => OutputValues::F64(incremental_pagerank(
                state,
                params.pagerank_iterations,
                params.damping_factor,
                pool,
                &mut c,
            )),
            other => {
                return Err(Error::InvalidParameters(format!(
                    "no incremental path for {other}"
                )))
            }
        })
    });
    ctx.absorb_trace();
    let values = values?;
    let wall_seconds = start.elapsed().as_secs_f64();
    ctx.record_phase("ProcessGraph", wall_seconds);
    Ok(Execution {
        output: AlgorithmOutput::from_dense(algorithm, &g.csr, values),
        counters: c,
        wall_seconds,
    })
}

/// Undirected-view neighbors of `u` in the merged graph (WCC ignores
/// direction; for directed graphs that is out ∪ in, with a possible
/// duplicate when both arcs exist — harmless for reachability).
fn for_each_neighbor(mg: &MutableGraph, u: u32, mut f: impl FnMut(u32)) -> u64 {
    let mut scanned = 0u64;
    for (v, _) in mg.out_edges(u) {
        scanned += 1;
        f(v);
    }
    if mg.is_directed() {
        for (v, _) in mg.in_edges(u) {
            scanned += 1;
            f(v);
        }
    }
    scanned
}

/// Full WCC over the merged view: BFS from every unlabeled vertex in
/// ascending dense order, labeling each component with its minimum
/// index — the exact fixpoint of the cold `wcc_kernel`.
fn full_wcc(mg: &MutableGraph, c: &mut WorkCounters) -> Vec<u32> {
    let n = mg.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut stack = Vec::new();
    let mut edges = 0u64;
    for s in 0..n as u32 {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        labels[s as usize] = s;
        stack.push(s);
        while let Some(u) = stack.pop() {
            edges += for_each_neighbor(mg, u, |v| {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = s;
                    stack.push(v);
                }
            });
        }
    }
    c.supersteps += 1;
    c.vertices_processed += n as u64;
    c.edges_scanned += edges;
    labels
}

/// Bounded connectivity probe on the post-deletion merged view: can `u`
/// still reach `v`? `false` means "disconnected or probe budget
/// exhausted" — either way the caller recomputes the component.
fn reconnects(mg: &MutableGraph, u: u32, v: u32, c: &mut WorkCounters) -> bool {
    let mut visited = std::collections::HashSet::new();
    visited.insert(u);
    let mut frontier = vec![u];
    let mut scanned = 0u64;
    let mut found = false;
    while !frontier.is_empty() && !found && scanned < RECONNECT_EDGE_CAP {
        let mut next = Vec::new();
        'outer: for &x in &frontier {
            scanned += for_each_neighbor(mg, x, |y| {
                if y == v {
                    found = true;
                }
                if visited.insert(y) {
                    next.push(y);
                }
            });
            if found || scanned >= RECONNECT_EDGE_CAP {
                break 'outer;
            }
        }
        frontier = next;
    }
    c.edges_scanned += scanned;
    found
}

/// Deletion half of WCC maintenance, run on the post-deletion /
/// pre-insertion view (old components are closed under it): probe each
/// severed endpoint pair, and recompute only the components that may
/// have split — members reset and relabeled by ascending-index BFS,
/// which reproduces the min-index fixpoint exactly.
fn maintain_wcc_deletions(mg: &MutableGraph, labels: &mut [u32], deleted: &[(u32, u32)]) {
    let mut probes = WorkCounters::new();
    let mut dirty: Vec<u32> = Vec::new();
    for &(u, v) in deleted {
        let l = labels[u as usize];
        debug_assert_eq!(l, labels[v as usize], "endpoints of a live edge share a component");
        if dirty.contains(&l) {
            continue; // component already scheduled for recompute
        }
        if !reconnects(mg, u, v, &mut probes) {
            dirty.push(l);
        }
    }
    if dirty.is_empty() {
        return;
    }
    dirty.sort_unstable();
    for l in labels.iter_mut() {
        if dirty.binary_search(l).is_ok() {
            *l = u32::MAX;
        }
    }
    let mut stack = Vec::new();
    for s in 0..labels.len() as u32 {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        labels[s as usize] = s;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for_each_neighbor(mg, u, |v| {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = s;
                    stack.push(v);
                }
            });
        }
    }
}

/// Insertion half of WCC maintenance: union-find over label values with
/// the minimum label as representative, then one sweep to rewrite
/// merged labels. Weight updates and re-inserts union two equal labels
/// — a no-op.
fn maintain_wcc_insertions(
    mg: &MutableGraph,
    labels: &mut [u32],
    insertions: &[graphalytics_core::Edge],
) {
    use std::collections::HashMap;
    let mut parent: HashMap<u32, u32> = HashMap::new();
    fn find(parent: &mut HashMap<u32, u32>, mut x: u32) -> u32 {
        while let Some(&p) = parent.get(&x) {
            if p == x {
                break;
            }
            let gp = parent.get(&p).copied().unwrap_or(p);
            parent.insert(x, gp);
            x = gp;
        }
        x
    }
    let base = mg.base();
    let mut merged = false;
    for e in insertions {
        let (Some(u), Some(v)) = (base.index_of(e.src), base.index_of(e.dst)) else {
            continue;
        };
        let (lu, lv) = (
            find(&mut parent, labels[u as usize]),
            find(&mut parent, labels[v as usize]),
        );
        if lu != lv {
            let (lo, hi) = (lu.min(lv), lu.max(lv));
            parent.insert(hi, lo);
            merged = true;
        }
    }
    if merged {
        for l in labels.iter_mut() {
            *l = find(&mut parent, *l);
        }
    }
}

/// Incremental PageRank over the merged view.
///
/// Cold path (no cache, changed parameters, or an iteration count too
/// small to be converged): replay the exact `pull_pagerank` schedule —
/// same initialization, same dangling handling, same in-row summation
/// order — bit-identical to a cold run on the materialized graph.
///
/// Warm path: start from the cached ranks and run the same update until
/// the L1 contraction bound `‖Δ‖₁ · d/(1−d)` drops below a quarter of
/// the validator's per-vertex tolerance at the minimum rank
/// (`ε·(1−d)/n`). Engaged only when `d^K` puts a cold K-iteration run
/// within the same slack of the fixpoint, so warm and cold land within
/// half the validation tolerance of each other.
fn incremental_pagerank(
    state: &mut DeltaState,
    iterations: u32,
    damping: f64,
    pool: &WorkerPool,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let mg = &state.graph;
    let n = mg.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let abs_tol = DEFAULT_EPSILON * (1.0 - damping) / n as f64;
    let cold_converged = 2.0 * damping.powi(iterations as i32) <= 0.25 * abs_tol;
    let warm = cold_converged
        && state
            .pr
            .as_ref()
            .is_some_and(|p| p.iterations == iterations && p.damping == damping);

    let inv_n = 1.0 / n as f64;
    let degrees = mg.degrees();
    let mut rank = if warm {
        state.pr.as_ref().unwrap().ranks.clone()
    } else {
        vec![inv_n; n]
    };
    for _ in 0..iterations {
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let rank_ref = &rank;
        let dangling: f64 = (0..n).filter(|&u| degrees[u] == 0).map(|u| rank_ref[u]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let (next, tallies) = crate::common::map_vertices(pool, n, |v, edges: &mut u64| {
            let mut sum = 0.0f64;
            for (u, _) in mg.in_edges(v) {
                *edges += 1;
                sum += rank_ref[u as usize] / degrees[u as usize] as f64;
            }
            base + damping * sum
        });
        for edges in tallies {
            c.edges_scanned += edges;
        }
        if warm {
            let l1: f64 = next.iter().zip(rank.iter()).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if l1 * damping / (1.0 - damping) <= 0.25 * abs_tol {
                break;
            }
        } else {
            rank = next;
        }
    }
    state.pr = Some(PrCache { ranks: rank.clone(), iterations, damping });
    rank
}
