//! Sharded push–pull kernels: the five supported algorithms over a
//! [`ShardSet`], bit-identical in output to the single-shard kernels in
//! the parent module.
//!
//! Why bit-identity holds per kernel:
//!
//! * **BFS** — level-synchronous: a vertex's depth is its BFS level, a
//!   property of the level *sets*, which no schedule can change. The
//!   push/pull choice comes from the same set-level α/β estimates as the
//!   single-shard kernel. Push rounds stage discoveries in per-shard
//!   queues applied at the barrier in deterministic shard/worker order;
//!   pull rounds scan each undecided vertex's in-row (a verbatim copy of
//!   the global row, so the early-exit point is identical) and write
//!   only owned slots.
//! * **PageRank** — the dangling-mass scan is the same canonical
//!   ascending loop as the single-shard kernel, and each vertex's rank
//!   sum walks its shard in-row, a verbatim copy of the global in-row:
//!   identical term order ⇒ identical f64 rounding.
//! * **WCC / SSSP** — min-label and min-plus relaxation are monotone
//!   fixpoints: the final value at each vertex is the minimum over
//!   (path-ordered) candidate values, independent of relaxation
//!   schedule, so the sharded rounds — delta-stepping buckets over the
//!   per-shard light/heavy splits for SSSP — land on bitwise the same
//!   fixpoint as the single-shard sweeps (superstep *counts*
//!   legitimately differ; outputs cannot).
//! * **CDLP** — fully synchronous: every label is a function of the
//!   previous iteration's labels and the vertex's own (verbatim-copied)
//!   adjacency rows.
//!
//! Inter-shard accounting follows the engine's semantics: only *push*
//! traffic is messages (pull is remote reads and stays message-free, as
//! in the single-shard kernels), so `inter_shard_messages` remains a
//! subset of `messages`. For SSSP both counters tally only *successful*
//! relaxations, matching the single-shard kernels' rule.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Instant;

use graphalytics_cluster::WorkCounters;
use graphalytics_core::{Csr, VertexId};
use graphalytics_core::fault::{self, FaultSite};

use crate::common::frontier::Frontier;
use crate::common::pool::{SharedSlice, WorkerPool};
use crate::platform::LoadedGraph;
use crate::sharded::{ShardLayout, ShardSet};
use crate::trace::{self, IterTimer, SpanRecord};

use super::{delta_eligible, mean_weight, split_rows, DirectionState, LightHeavy};

/// Per-shard pull-phase output: shard wall seconds plus each worker's
/// (newly found vertices, edges scanned) tallies.
type PullOutputs = Vec<(f64, Vec<(Vec<u32>, u64)>)>;

/// Times one shard driver's compute when tracing is on; `0.0` otherwise.
fn timed<T>(tracing: bool, f: impl FnOnce() -> T) -> (f64, T) {
    let t = tracing.then(Instant::now);
    let out = f();
    (t.map_or(0.0, |t| t.elapsed().as_secs_f64()), out)
}

/// Closes one sharded superstep span: per-shard compute children plus the
/// inter-shard queue depth and barrier drain time.
#[allow(clippy::too_many_arguments)]
fn lap_sharded(
    it: &mut IterTimer,
    c: &WorkCounters,
    active: usize,
    shard_secs: Vec<f64>,
    queue_depth: usize,
    drain_secs: f64,
    mode: &'static str,
) {
    it.lap(c, |mut span| {
        for (s, secs) in shard_secs.into_iter().enumerate() {
            span = span.with_child(SpanRecord::new("Shard", secs).with_info("shard", s));
        }
        span.with_info("active", active)
            .with_info("mode", mode)
            .with_info("queue_depth", queue_depth)
            .with_info("drain_secs", format!("{drain_secs:.9}"))
    });
}

/// The sharded uploaded representation: per-shard dual-direction
/// adjacency plus the global cached out-degree table (pull iterations
/// divide by degrees of *remote* vertices, so the table stays global —
/// PGX.D's replicated vertex metadata).
pub struct PushPullShardedGraph {
    set: ShardSet,
    out_degrees: Box<[u32]>,
    total_out_degree: u64,
    /// Per-shard delta-stepping splits (indexed by shard, then local
    /// vertex index) sharing one global Δ. Built on first SSSP use.
    light_heavy: OnceLock<Option<Vec<LightHeavy>>>,
}

impl PushPullShardedGraph {
    pub(crate) fn new(set: ShardSet) -> Self {
        let csr = set.csr();
        let out_degrees: Box<[u32]> =
            (0..csr.num_vertices() as u32).map(|u| csr.out_degree(u) as u32).collect();
        let total_out_degree = out_degrees.iter().map(|&d| d as u64).sum();
        PushPullShardedGraph { set, out_degrees, total_out_degree, light_heavy: OnceLock::new() }
    }

    /// The underlying shard set.
    #[inline]
    pub fn set(&self) -> &ShardSet {
        &self.set
    }

    /// The full cached degree vector.
    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// Σ out-degrees over all vertices.
    #[inline]
    pub fn total_out_degree(&self) -> u64 {
        self.total_out_degree
    }

    /// The per-shard delta-stepping splits, built on first use. Δ is the
    /// *global* mean edge weight (computed over the monolithic CSR, so
    /// it is bit-identical to the single-shard kernel's Δ); each shard's
    /// rows are then split locally. `None` under the same eligibility
    /// gate as the single-shard split.
    pub fn light_heavy(&self, pool: &WorkerPool) -> Option<&[LightHeavy]> {
        self.light_heavy
            .get_or_init(|| {
                let csr = self.set.csr();
                if !delta_eligible(csr) {
                    return None;
                }
                let n = csr.num_vertices();
                let rows = |u: u32| (csr.out_neighbors(u), csr.out_weights(u));
                let delta = mean_weight(n, csr.num_arcs() as u64, rows, pool)?;
                let sharded = self.set.sharded();
                Some(
                    (0..sharded.num_shards() as usize)
                        .map(|s| {
                            let shard = sharded.shard(s);
                            split_rows(shard.len(), delta, |li| shard.out_row(li as usize), pool)
                        })
                        .collect(),
                )
            })
            .as_ref()
            .map(|splits| splits.as_slice())
    }

    /// Whether the splits have already been built (used by `run` to
    /// decide if a `TraversalPrep` phase is still owed).
    pub fn traversal_prepared(&self) -> bool {
        self.light_heavy.get().is_some()
    }
}

impl LoadedGraph for PushPullShardedGraph {
    fn csr(&self) -> &Csr {
        self.set.csr()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn resident_bytes(&self) -> u64 {
        self.set.resident_bytes()
            + 4 * self.out_degrees.len() as u64
            + self
                .light_heavy
                .get()
                .and_then(|splits| splits.as_ref())
                .map_or(0, |splits| splits.iter().map(LightHeavy::resident_bytes).sum())
    }

    fn shard_layout(&self) -> Option<ShardLayout> {
        Some(self.set.layout())
    }
}

/// Splits a vertex list into per-shard lists by owner, preserving order.
fn route(members: &[u32], owner: &[u32], shards: usize) -> Vec<Vec<u32>> {
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for &u in members {
        owned[owner[u as usize] as usize].push(u);
    }
    owned
}

/// One worker's staged push traffic: `(target, payload)` messages plus
/// edge/cross-shard tallies.
struct PushOut<T> {
    msgs: Vec<(u32, T)>,
    edges: u64,
    inter: u64,
}

/// Sharded direction-optimizing BFS (see module docs for the identity
/// argument). Uses the same α/β switch state as the single-shard kernel
/// and a double-buffered frontier pair.
pub(super) fn sharded_bfs(g: &PushPullShardedGraph, root: u32, c: &mut WorkCounters) -> Vec<i64> {
    let set = g.set();
    let sharded = set.sharded();
    let owner = sharded.owner();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let n = set.csr().num_vertices();
    let degrees = g.out_degrees();

    let mut depth = vec![i64::MAX; n];
    depth[root as usize] = 0;
    let mut frontier = Frontier::singleton(n, root);
    let mut next = Frontier::new(n);
    let mut frontier_degree = degrees[root as usize] as u64;
    let mut dir = DirectionState::new(g.total_out_degree(), frontier_degree);
    let mut level = 0i64;
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    while !frontier.is_empty() {
        fault::tick(FaultSite::Superstep);
        let active = frontier.len();
        let pulling = dir.choose(frontier_degree, active, n);
        c.supersteps += 1;
        level += 1;
        let mut next_degree = 0u64;
        if !pulling {
            // Push: owned frontier vertices scatter through the shard
            // queues; the barrier applies discoveries in shard order.
            c.vertices_processed += active as u64;
            let owned = route(frontier.members(), owner, shards);
            let depth_ref = &depth;
            let outputs: Vec<(f64, Vec<PushOut<()>>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|s| {
                        let shard = sharded.shard(s);
                        let mine = owned[s].as_slice();
                        let pool = &pools[s];
                        scope.spawn(move || {
                            timed(tracing, || pool.run(mine.len(), |_, range| {
                                let mut out =
                                    PushOut { msgs: Vec::new(), edges: 0, inter: 0 };
                                for &u in &mine[range] {
                                    let li = sharded.local_index_of(u) as usize;
                                    let (targets, _) = shard.out_row(li);
                                    out.edges += targets.len() as u64;
                                    for &v in targets {
                                        if owner[v as usize] != s as u32 {
                                            out.inter += 1;
                                        }
                                        if depth_ref[v as usize] == i64::MAX {
                                            out.msgs.push((v, ()));
                                        }
                                    }
                                }
                                out
                            }))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
            });
            let mut shard_secs = Vec::with_capacity(shards);
            let mut queue_depth = 0usize;
            let drain_t = tracing.then(Instant::now);
            for (secs, outs) in outputs {
                shard_secs.push(secs);
                for out in outs {
                    queue_depth += out.msgs.len();
                    c.edges_scanned += out.edges;
                    c.add_messages(out.edges, 8);
                    c.inter_shard_messages += out.inter;
                    c.inter_shard_bytes += 8 * out.inter;
                    for (v, ()) in out.msgs {
                        if depth[v as usize] == i64::MAX {
                            depth[v as usize] = level;
                            next.insert(v);
                            next_degree += degrees[v as usize] as u64;
                        }
                    }
                }
            }
            let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
            lap_sharded(&mut it, c, active, shard_secs, queue_depth, drain_secs, "push");
        } else {
            // Pull: each shard scans its own undecided vertices' in-rows
            // (early exit) and writes only owned depth slots.
            c.vertices_processed += n as u64;
            let depth_ptr = SharedSlice::new(depth.as_mut_ptr());
            let frontier_ref = &frontier;
            let outputs: PullOutputs = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|s| {
                        let shard = sharded.shard(s);
                        let pool = &pools[s];
                        scope.spawn(move || {
                            timed(tracing, || pool.run(shard.len(), |_, lrange| {
                                let mut found = Vec::new();
                                let mut edges = 0u64;
                                for li in lrange {
                                    let v = shard.global(li);
                                    // SAFETY: shards own disjoint vertex
                                    // sets; only this worker touches v.
                                    let dv = unsafe { depth_ptr.at(v as usize) };
                                    if *dv != i64::MAX {
                                        continue;
                                    }
                                    let (inn, _) = shard.in_row(li);
                                    for &u in inn {
                                        edges += 1;
                                        if frontier_ref.contains(u) {
                                            *dv = level;
                                            found.push(v);
                                            break;
                                        }
                                    }
                                }
                                (found, edges)
                            }))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
            });
            let mut shard_secs = Vec::with_capacity(shards);
            let drain_t = tracing.then(Instant::now);
            for (secs, outs) in outputs {
                shard_secs.push(secs);
                for (found, edges) in outs {
                    c.edges_scanned += edges;
                    c.random_accesses += edges;
                    for v in found {
                        next.insert(v);
                        next_degree += degrees[v as usize] as u64;
                    }
                }
            }
            let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
            // Pull rounds read remotely instead of queueing messages.
            lap_sharded(&mut it, c, active, shard_secs, 0, drain_secs, "pull");
        }
        dir.discovered(next_degree);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
        frontier_degree = next_degree;
    }
    depth
}

/// Sharded pull PageRank: canonical ascending dangling scan + per-owned
/// vertex in-row sums over verbatim row copies.
pub(super) fn sharded_pagerank(
    g: &PushPullShardedGraph,
    iterations: u32,
    damping: f64,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let set = g.set();
    let sharded = set.sharded();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let degrees = g.out_degrees();
    let n = set.csr().num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        fault::tick(FaultSite::Superstep);
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let rank_ref = &rank;
        let dangling: f64 = (0..n).filter(|&u| degrees[u] == 0).map(|u| rank_ref[u]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let next_ptr = SharedSlice::new(next.as_mut_ptr());
        let edge_counts: Vec<(f64, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let shard = sharded.shard(s);
                    let pool = &pools[s];
                    scope.spawn(move || {
                        timed(tracing, || pool.run(shard.len(), |_, lrange| {
                            let mut edges = 0u64;
                            for li in lrange {
                                let v = shard.global(li) as usize;
                                let (inn, _) = shard.in_row(li);
                                edges += inn.len() as u64;
                                let mut sum = 0.0f64;
                                for &u in inn {
                                    sum += rank_ref[u as usize] / degrees[u as usize] as f64;
                                }
                                // SAFETY: v is owned by this shard; local
                                // ranges are disjoint within it.
                                unsafe { *next_ptr.at(v) = base + damping * sum };
                            }
                            edges
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
        });
        let mut shard_secs = Vec::with_capacity(shards);
        let drain_t = tracing.then(Instant::now);
        for (secs, counts) in edge_counts {
            shard_secs.push(secs);
            for edges in counts {
                c.edges_scanned += edges;
            }
        }
        std::mem::swap(&mut rank, &mut next);
        let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
        lap_sharded(&mut it, c, n, shard_secs, 0, drain_secs, "pull");
    }
    rank
}

/// Sharded WCC: synchronous min-label rounds through the shard queues,
/// over a double-buffered frontier pair.
pub(super) fn sharded_wcc(g: &PushPullShardedGraph, c: &mut WorkCounters) -> Vec<VertexId> {
    let set = g.set();
    let csr = set.csr();
    let sharded = set.sharded();
    let owner = sharded.owner();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let n = csr.num_vertices();
    let directed = csr.is_directed();

    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut active = Frontier::new(n);
    for v in 0..n as u32 {
        active.insert(v);
    }
    let mut next = Frontier::new(n);
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    while !active.is_empty() {
        fault::tick(FaultSite::Superstep);
        let active_count = active.len();
        c.supersteps += 1;
        c.vertices_processed += active_count as u64;
        let owned = route(active.members(), owner, shards);
        let label_ref = &label;
        let outputs: Vec<(f64, Vec<PushOut<u32>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let shard = sharded.shard(s);
                    let mine = owned[s].as_slice();
                    let pool = &pools[s];
                    scope.spawn(move || {
                        timed(tracing, || pool.run(mine.len(), |_, range| {
                            let mut out = PushOut { msgs: Vec::new(), edges: 0, inter: 0 };
                            for &u in &mine[range] {
                                let lu = label_ref[u as usize];
                                let li = sharded.local_index_of(u) as usize;
                                let push = |targets: &[u32], out: &mut PushOut<u32>| {
                                    out.edges += targets.len() as u64;
                                    for &v in targets {
                                        if owner[v as usize] != s as u32 {
                                            out.inter += 1;
                                        }
                                        if lu < label_ref[v as usize] {
                                            out.msgs.push((v, lu));
                                        }
                                    }
                                };
                                push(shard.out_row(li).0, &mut out);
                                if directed {
                                    push(shard.in_row(li).0, &mut out);
                                }
                            }
                            out
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
        });
        let mut shard_secs = Vec::with_capacity(shards);
        let mut queue_depth = 0usize;
        let drain_t = tracing.then(Instant::now);
        for (secs, outs) in outputs {
            shard_secs.push(secs);
            for out in outs {
                queue_depth += out.msgs.len();
                c.edges_scanned += out.edges;
                c.add_messages(out.edges, 8);
                c.inter_shard_messages += out.inter;
                c.inter_shard_bytes += 8 * out.inter;
                for (v, l) in out.msgs {
                    if l < label[v as usize] {
                        label[v as usize] = l;
                        next.insert(v);
                    }
                }
            }
        }
        std::mem::swap(&mut active, &mut next);
        next.clear();
        let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
        lap_sharded(&mut it, c, active_count, shard_secs, queue_depth, drain_secs, "push");
    }
    label.into_iter().map(|l| csr.id_of(l)).collect()
}

/// Sharded CDLP: synchronous pull over owned vertices' verbatim rows.
pub(super) fn sharded_cdlp(
    g: &PushPullShardedGraph,
    iterations: u32,
    c: &mut WorkCounters,
) -> Vec<VertexId> {
    let set = g.set();
    let csr = set.csr();
    let sharded = set.sharded();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let n = csr.num_vertices();
    let directed = csr.is_directed();

    let mut labels: Vec<VertexId> = (0..n as u32).map(|u| csr.id_of(u)).collect();
    let mut next: Vec<VertexId> = vec![0; n];
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    for _ in 0..iterations {
        fault::tick(FaultSite::Superstep);
        c.supersteps += 1;
        c.vertices_processed += n as u64;
        let labels_ref = &labels;
        let next_ptr = SharedSlice::new(next.as_mut_ptr());
        let edge_counts: Vec<(f64, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let shard = sharded.shard(s);
                    let pool = &pools[s];
                    scope.spawn(move || {
                        timed(tracing, || pool.run(shard.len(), |_, lrange| {
                            let mut freq =
                                std::collections::HashMap::<VertexId, u32>::new();
                            let mut edges = 0u64;
                            for li in lrange {
                                let v = shard.global(li) as usize;
                                freq.clear();
                                let outn = shard.out_row(li).0;
                                edges += outn.len() as u64;
                                for &u in outn {
                                    *freq.entry(labels_ref[u as usize]).or_insert(0u32) += 1;
                                }
                                if directed {
                                    let inn = shard.in_row(li).0;
                                    edges += inn.len() as u64;
                                    for &u in inn {
                                        *freq.entry(labels_ref[u as usize]).or_insert(0) += 1;
                                    }
                                }
                                let l = graphalytics_core::algorithms::cdlp::select_label(&freq)
                                    .unwrap_or(labels_ref[v]);
                                // SAFETY: v is owned by this shard; local
                                // ranges are disjoint within it.
                                unsafe { *next_ptr.at(v) = l };
                            }
                            edges
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
        });
        let mut shard_secs = Vec::with_capacity(shards);
        let drain_t = tracing.then(Instant::now);
        for (secs, counts) in edge_counts {
            shard_secs.push(secs);
            for edges in counts {
                c.edges_scanned += edges;
                c.random_accesses += edges;
            }
        }
        std::mem::swap(&mut labels, &mut next);
        let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
        lap_sharded(&mut it, c, n, shard_secs, 0, drain_secs, "pull");
    }
    labels
}

/// Sharded SSSP: delta-stepping over the per-shard light/heavy splits,
/// or the synchronous label-correcting fallback when the graph is below
/// the delta-stepping threshold.
pub(super) fn sharded_sssp(
    g: &PushPullShardedGraph,
    pool: &WorkerPool,
    root: u32,
    c: &mut WorkCounters,
) -> Vec<f64> {
    match g.light_heavy(pool) {
        Some(splits) => sharded_delta_sssp(g, splits, root, c),
        None => sharded_label_correcting_sssp(g, root, c),
    }
}

/// One synchronous sharded relaxation round over `active`, on the light
/// or heavy half of the splits. Each shard's owned vertices stage
/// improving candidates against the round's frozen distance snapshot;
/// the barrier merge applies them in shard/worker order, counting one
/// 12-byte message per successful relaxation (and one inter-shard
/// message when the producing shard does not own the target). Rounds
/// with little estimated work run inline — shard by shard on the caller
/// thread, producing the identical candidate stream — instead of paying
/// a thread spawn per shard.
#[allow(clippy::too_many_arguments)]
fn sharded_relax_round<const HEAVY: bool>(
    g: &PushPullShardedGraph,
    splits: &[LightHeavy],
    active: &[u32],
    work: u64,
    dist: &mut [f64],
    changed: &mut Frontier,
    buckets: &mut BTreeMap<u64, Vec<u32>>,
    c: &mut WorkCounters,
    tracing: bool,
    it: &mut IterTimer,
) {
    let set = g.set();
    let sharded = set.sharded();
    let owner = sharded.owner();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let delta = splits[0].delta();
    c.supersteps += 1;
    c.vertices_processed += active.len() as u64;
    let owned = route(active, owner, shards);
    let outputs: Vec<(f64, Vec<PushOut<f64>>)> = {
        let dist_ref: &[f64] = dist;
        let scan = |s: usize, mine: &[u32], range: std::ops::Range<usize>| {
            let mut out = PushOut { msgs: Vec::new(), edges: 0, inter: 0 };
            for &u in &mine[range] {
                let du = dist_ref[u as usize];
                let li = sharded.local_index_of(u);
                let (targets, weights) =
                    if HEAVY { splits[s].heavy(li) } else { splits[s].light(li) };
                out.edges += targets.len() as u64;
                for (&v, &w) in targets.iter().zip(weights) {
                    let nd = du + w;
                    if nd < dist_ref[v as usize] {
                        out.msgs.push((v, nd));
                    }
                }
            }
            out
        };
        if !super::parallel_worth(active.len(), work) {
            (0..shards)
                .map(|s| {
                    let mine = owned[s].as_slice();
                    timed(tracing, || vec![scan(s, mine, 0..mine.len())])
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let scan = &scan;
                let handles: Vec<_> = (0..shards)
                    .map(|s| {
                        let mine = owned[s].as_slice();
                        let pool = &pools[s];
                        scope.spawn(move || {
                            timed(tracing, || {
                                pool.run(mine.len(), |_, range| scan(s, mine, range))
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
            })
        }
    };
    let mut relaxed = 0u64;
    let mut inter = 0u64;
    let mut shard_secs = Vec::with_capacity(shards);
    let mut queue_depth = 0usize;
    let drain_t = tracing.then(Instant::now);
    for (s, (secs, outs)) in outputs.into_iter().enumerate() {
        shard_secs.push(secs);
        for out in outs {
            queue_depth += out.msgs.len();
            c.edges_scanned += out.edges;
            for (v, nd) in out.msgs {
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    relaxed += 1;
                    changed.insert(v);
                    if owner[v as usize] != s as u32 {
                        inter += 1;
                    }
                }
            }
        }
    }
    c.add_messages(relaxed, 12);
    c.inter_shard_messages += inter;
    c.inter_shard_bytes += 12 * inter;
    for &v in changed.members() {
        buckets.entry((dist[v as usize] / delta) as u64).or_default().push(v);
    }
    changed.clear();
    let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
    lap_sharded(
        it,
        c,
        active.len(),
        shard_secs,
        queue_depth,
        drain_secs,
        if HEAVY { "heavy" } else { "light" },
    );
}

/// Sharded delta-stepping: the same bucket driver as the single-shard
/// kernel (same global Δ, so the same bucket schedule in spirit), with
/// each round's relaxations fanned out shard-by-shard.
fn sharded_delta_sssp(
    g: &PushPullShardedGraph,
    splits: &[LightHeavy],
    root: u32,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let set = g.set();
    let sharded = set.sharded();
    let owner = sharded.owner();
    let n = set.csr().num_vertices();
    let delta = splits[0].delta();
    let degree_of = |v: u32, heavy: bool| {
        let split = &splits[owner[v as usize] as usize];
        let li = sharded.local_index_of(v);
        if heavy { split.heavy_degree(li) } else { split.light_degree(li) }
    };

    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    buckets.insert(0, vec![root]);
    let mut settled = Frontier::new(n);
    let mut seen = Frontier::new(n);
    let mut changed = Frontier::new(n);
    let mut active: Vec<u32> = Vec::new();
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    while let Some((&bucket, _)) = buckets.first_key_value() {
        fault::tick(FaultSite::Superstep);
        settled.clear();
        while let Some(current) = buckets.remove(&bucket) {
            active.clear();
            let mut light_work = 0u64;
            for &v in &current {
                if (dist[v as usize] / delta) as u64 == bucket && seen.insert(v) {
                    active.push(v);
                    light_work += degree_of(v, false);
                }
            }
            seen.clear();
            if active.is_empty() {
                continue;
            }
            for &v in &active {
                settled.insert(v);
            }
            sharded_relax_round::<false>(
                g, splits, &active, light_work, &mut dist, &mut changed, &mut buckets, c,
                tracing, &mut it,
            );
        }
        if !settled.is_empty() {
            let heavy_work: u64 =
                settled.members().iter().map(|&v| degree_of(v, true)).sum();
            if heavy_work > 0 {
                sharded_relax_round::<true>(
                    g,
                    splits,
                    settled.members(),
                    heavy_work,
                    &mut dist,
                    &mut changed,
                    &mut buckets,
                    c,
                    tracing,
                    &mut it,
                );
            }
        }
    }
    dist
}

/// Sharded label-correcting SSSP (the tiny-graph fallback): synchronous
/// min-plus relaxation through the shard queues, double-buffered
/// frontiers, messages counted per successful relaxation.
fn sharded_label_correcting_sssp(
    g: &PushPullShardedGraph,
    root: u32,
    c: &mut WorkCounters,
) -> Vec<f64> {
    let set = g.set();
    let sharded = set.sharded();
    let owner = sharded.owner();
    let pools = set.pools();
    let shards = sharded.num_shards() as usize;
    let n = set.csr().num_vertices();

    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut active = Frontier::singleton(n, root);
    let mut next = Frontier::new(n);
    let tracing = trace::active();
    let mut it = IterTimer::new("Iteration", c);
    while !active.is_empty() {
        fault::tick(FaultSite::Superstep);
        let active_count = active.len();
        c.supersteps += 1;
        c.vertices_processed += active_count as u64;
        let owned = route(active.members(), owner, shards);
        let dist_ref = &dist;
        let outputs: Vec<(f64, Vec<PushOut<f64>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let shard = sharded.shard(s);
                    let mine = owned[s].as_slice();
                    let pool = &pools[s];
                    scope.spawn(move || {
                        timed(tracing, || pool.run(mine.len(), |_, range| {
                            let mut out = PushOut { msgs: Vec::new(), edges: 0, inter: 0 };
                            for &u in &mine[range] {
                                let du = dist_ref[u as usize];
                                let li = sharded.local_index_of(u) as usize;
                                let (targets, weights) = shard.out_row(li);
                                out.edges += targets.len() as u64;
                                for (&v, &w) in targets.iter().zip(weights) {
                                    let nd = du + w;
                                    if nd < dist_ref[v as usize] {
                                        out.msgs.push((v, nd));
                                    }
                                }
                            }
                            out
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
        });
        let mut relaxed = 0u64;
        let mut inter = 0u64;
        let mut shard_secs = Vec::with_capacity(shards);
        let mut queue_depth = 0usize;
        let drain_t = tracing.then(Instant::now);
        for (s, (secs, outs)) in outputs.into_iter().enumerate() {
            shard_secs.push(secs);
            for out in outs {
                queue_depth += out.msgs.len();
                c.edges_scanned += out.edges;
                for (v, nd) in out.msgs {
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        relaxed += 1;
                        next.insert(v);
                        if owner[v as usize] != s as u32 {
                            inter += 1;
                        }
                    }
                }
            }
        }
        c.add_messages(relaxed, 12);
        c.inter_shard_messages += inter;
        c.inter_shard_bytes += 12 * inter;
        std::mem::swap(&mut active, &mut next);
        next.clear();
        let drain_secs = drain_t.map_or(0.0, |t| t.elapsed().as_secs_f64());
        lap_sharded(&mut it, c, active_count, shard_secs, queue_depth, drain_secs, "push");
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::super::*;
    use crate::sharded::ShardPlan;
    use graphalytics_core::GraphBuilder;

    fn csr() -> Arc<Csr> {
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(150);
        for v in 0..150u64 {
            b.add_weighted_edge(v, (v + 1) % 150, ((v % 7) + 1) as f64);
            b.add_weighted_edge(v, (v + 53) % 150, ((v % 5) + 1) as f64);
        }
        Arc::new(b.build().unwrap().to_csr())
    }

    /// Two out-edges per vertex, 120k arcs: above `DELTA_MIN_ARCS`, so
    /// the sharded SSSP takes the delta-stepping path.
    fn big_csr() -> Arc<Csr> {
        const N: u64 = 60_000;
        let mut b = GraphBuilder::new(true);
        b.set_weighted(true);
        b.add_vertex_range(N);
        for v in 0..N {
            b.add_weighted_edge(v, (v * 3 + 1) % N, ((v % 11) + 1) as f64);
            b.add_weighted_edge(v, (v + 158) % N, (((v % 4) + 1) as f64) * 1.75);
        }
        Arc::new(b.build().unwrap().to_csr())
    }

    #[test]
    fn all_supported_algorithms_bit_identical_across_shard_counts() {
        let csr = csr();
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(4);
        let params = AlgorithmParams::with_source(0);
        let single = engine.upload(csr.clone(), &pool).unwrap();
        for shards in [2u32, 3] {
            let plan = ShardPlan::new(shards);
            let multi = engine.upload_sharded(csr.clone(), &plan, &pool).unwrap();
            assert_eq!(multi.shard_layout().unwrap().shards, shards);
            for alg in Algorithm::ALL {
                if alg == Algorithm::Lcc {
                    continue;
                }
                let mut c1 = RunContext::new(&pool);
                let mut c2 = RunContext::new(&pool);
                let base = engine.run(single.as_ref(), alg, &params, &mut c1).unwrap();
                let run = engine.run(multi.as_ref(), alg, &params, &mut c2).unwrap();
                assert_eq!(base.output, run.output, "{alg:?} at {shards} shards");
                assert!(
                    run.counters.inter_shard_messages <= run.counters.messages,
                    "{alg:?}: inter-shard messages are a subset of messages"
                );
            }
        }
    }

    #[test]
    fn sharded_delta_sssp_matches_single_shard() {
        let csr = big_csr();
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(4);
        let params = AlgorithmParams::with_source(0);
        let single = engine.upload(csr.clone(), &pool).unwrap();
        assert!(
            single
                .as_any()
                .downcast_ref::<PushPullGraph>()
                .unwrap()
                .light_heavy(&pool)
                .is_some(),
            "graph must be delta-eligible for this test to bite"
        );
        for shards in [2u32, 4] {
            let multi =
                engine.upload_sharded(csr.clone(), &ShardPlan::new(shards), &pool).unwrap();
            let mut c1 = RunContext::new(&pool);
            let mut c2 = RunContext::new(&pool);
            let base = engine.run(single.as_ref(), Algorithm::Sssp, &params, &mut c1).unwrap();
            let run = engine.run(multi.as_ref(), Algorithm::Sssp, &params, &mut c2).unwrap();
            assert_eq!(base.output, run.output, "delta SSSP at {shards} shards");
            assert!(run.counters.inter_shard_messages <= run.counters.messages);
        }
    }

    #[test]
    fn sharded_push_rounds_report_inter_shard_traffic() {
        let csr = csr();
        let engine = PushPullEngine::new();
        let pool = WorkerPool::new(2);
        let params = AlgorithmParams::with_source(0);
        let multi = engine
            .upload_sharded(csr, &ShardPlan::new(2), &pool)
            .unwrap();
        let mut ctx = RunContext::new(&pool);
        let run = engine.run(multi.as_ref(), Algorithm::Wcc, &params, &mut ctx).unwrap();
        assert!(run.counters.inter_shard_messages > 0);
        assert!(run.counters.inter_shard_bytes > 0);
    }
}
